//! Chunk-parallel batch query engine (§3.2 at scale).
//!
//! The per-call query path (`Caesar::estimate`) is convenient but pays,
//! per flow: two heap allocations (`indices()` + the gathered counter
//! `Vec`), re-validation of the estimator parameters, and recomputation
//! of every flow-independent floating-point constant. Sweeping an
//! entire flow table — the common offline workload ("estimate all 2k
//! flows") — multiplies that overhead by the population.
//!
//! This engine evaluates CSM/MLM over a *batch* of flows with
//!
//! * **batched index generation** — one stack buffer per worker,
//!   zero allocations per flow, with a software prefetch of the `k`
//!   counter lines between index generation and the gather whenever
//!   the counter array is big enough to spill the core-private caches
//!   (on L2-resident arrays — every paper geometry — the hints are
//!   pure overhead and are compiled out, see `PREFETCH_BYTES_MIN`);
//! * **prepared estimator kernels** ([`csm::Prepared`] /
//!   [`mlm::Prepared`]) with all constants hoisted once per sweep and
//!   the batch loop monomorphized per estimator;
//! * **contiguous chunk parallelism** over [`support::par`] scoped
//!   threads.
//!
//! A double-buffered one-flow-lookahead variant (generate flow `i+1`'s
//! indices and prefetch its counters while estimating flow `i`) was
//! measured ~2× *slower* per flow at the paper geometries: the SRAM
//! array fits in L2, so the lookahead bookkeeping (buffer parity,
//! extra live state) dwarfs the memory latency it hides. The simple
//! fill → prefetch → gather → estimate loop wins; revisit only with an
//! LLC-sized `L`.
//!
//! Determinism: per-flow estimation is a *pure* function of the frozen
//! counter array (no RNG anywhere in the query phase), the prepared
//! kernels are bit-identical to the per-call estimators by
//! construction, and chunking is order-preserving — so the output is
//! **bit-identical to the sequential path at every thread count**
//! (pinned by `tests/hotpath_equivalence.rs`). Requested thread counts
//! are resolved against `available_parallelism()` so a 4-way sweep on a
//! 1-core host degrades to the batch kernel instead of paying spawn
//! latency for no concurrency.

use crate::config::Estimator;
use crate::estimator::{csm, mlm, Estimate, EstimateParams};
use hashkit::{KCounterMap, K_MAX};
use support::par::par_map_threads;

/// Read-only view of a frozen counter array — the one thing the two
/// sketch flavors ([`crate::Caesar`]'s `CounterArray`,
/// [`crate::ConcurrentCaesar`]'s `AtomicCounterArray`) must provide to
/// the batch engine.
pub trait CounterView: Sync {
    /// Read counter `idx`.
    fn get(&self, idx: usize) -> u64;
    /// Hint that counter `idx` is about to be read (default: no-op).
    fn prefetch(&self, _idx: usize) {}
}

impl CounterView for crate::sram::CounterArray {
    #[inline]
    fn get(&self, idx: usize) -> u64 {
        crate::sram::CounterArray::get(self, idx)
    }
    #[inline]
    fn prefetch(&self, idx: usize) {
        crate::sram::CounterArray::prefetch(self, idx)
    }
}

impl CounterView for crate::atomic_sram::AtomicCounterArray {
    #[inline]
    fn get(&self, idx: usize) -> u64 {
        crate::atomic_sram::AtomicCounterArray::get(self, idx)
    }
    #[inline]
    fn prefetch(&self, idx: usize) {
        crate::atomic_sram::AtomicCounterArray::prefetch(self, idx)
    }
}

/// A prepared per-flow estimator kernel. Sealed to the two prepared
/// estimators; exists so the batch loops monomorphize per estimator
/// (full inlining of the float chains) instead of branching on an enum
/// for every flow.
trait BatchKernel: Copy + Sync {
    fn eval(&self, w: &[u64]) -> Estimate;
}

impl BatchKernel for csm::Prepared {
    #[inline(always)]
    fn eval(&self, w: &[u64]) -> Estimate {
        self.estimate(w)
    }
}

impl BatchKernel for mlm::Prepared {
    #[inline(always)]
    fn eval(&self, w: &[u64]) -> Estimate {
        self.estimate(w)
    }
}

/// Resolve a requested worker count against the host: more OS threads
/// than hardware threads only adds spawn/switch latency (the work is
/// CPU-bound), so cap at the memoized
/// [`host_parallelism`](support::par::host_parallelism) — the
/// un-memoized probe re-reads sysfs/procfs per call under cgroup CPU
/// quotas (~10 µs measured), which was several ns/flow of pure
/// syscall overhead when paid per sweep. Chunking does not affect
/// results, only scheduling — outputs are bit-identical at any width.
fn resolve_threads(requested: usize) -> usize {
    requested.clamp(1, support::par::host_parallelism())
}

/// Evaluate `estimator` for every flow in `flows` against the frozen
/// counters in `view`, using up to `threads` workers (resolved against
/// the host's parallelism). Output order matches `flows`; results are
/// bit-identical to calling the per-flow estimator sequentially.
///
/// # Panics
/// Panics on invalid `params`.
pub fn estimate_all<V: CounterView>(
    kmap: &KCounterMap,
    view: &V,
    params: &EstimateParams,
    estimator: Estimator,
    flows: &[u64],
    threads: usize,
) -> Vec<Estimate> {
    // Monomorphize the whole sweep per estimator: the per-flow float
    // chains inline into the batch loop instead of dispatching through
    // an enum 2k times.
    match estimator {
        Estimator::Csm => run_all(kmap, view, csm::Prepared::new(params), params.k, flows, threads),
        Estimator::Mlm => run_all(kmap, view, mlm::Prepared::new(params), params.k, flows, threads),
    }
}

fn run_all<V: CounterView, K: BatchKernel>(
    kmap: &KCounterMap,
    view: &V,
    kernel: K,
    k: usize,
    flows: &[u64],
    threads: usize,
) -> Vec<Estimate> {
    if k > K_MAX {
        // Cold fallback for pathological geometries: no stack buffers,
        // but still one prepared kernel for the whole sweep.
        let mut idx = vec![0usize; k];
        let mut w = vec![0u64; k];
        return flows
            .iter()
            .map(|&f| {
                kmap.fill_indices(f, &mut idx);
                for (dst, &i) in w.iter_mut().zip(idx.iter()) {
                    *dst = view.get(i);
                }
                kernel.eval(&w)
            })
            .collect();
    }
    let threads = resolve_threads(threads);
    if threads <= 1 || flows.len() < 2 {
        return batch_dispatch(kmap, view, kernel, k, flows);
    }
    // Contiguous chunks, one per worker; order-preserving reassembly.
    let chunk = flows.len().div_ceil(threads);
    let chunks: Vec<&[u64]> = flows.chunks(chunk).collect();
    let per_chunk = par_map_threads(&chunks, threads, |c| {
        batch_dispatch(kmap, view, kernel, k, c)
    });
    let mut out = Vec::with_capacity(flows.len());
    for mut part in per_chunk {
        out.append(&mut part);
    }
    out
}

/// Prefetch hints only pay once the counter array spills out of the
/// core-private cache levels; at every paper geometry (`L·8` ≲ 200 KiB)
/// the array is L2-resident and the hint instructions are pure
/// overhead (~2 ns/flow at `k = 3`, measured). Issue them only when
/// the resident counter bytes exceed this threshold.
const PREFETCH_BYTES_MIN: usize = 1 << 20;

/// Route the paper's `k ∈ [1, 8]` range to const-generic loops (index
/// fill, gather and the kernel's counter sum all fully unroll — the
/// runtime-`k` form costs ~2× at `k = 3`); anything larger takes the
/// generic kernel. Prefetching is resolved once per chunk from the
/// counter array's resident size (`PREFETCH_BYTES_MIN`) and lifted
/// to a const generic so the L2-resident case carries no per-flow
/// hint instructions. Same loads and arithmetic either way, so
/// outputs are bit-identical.
fn batch_dispatch<V: CounterView, K: BatchKernel>(
    kmap: &KCounterMap,
    view: &V,
    kernel: K,
    k: usize,
    flows: &[u64],
) -> Vec<Estimate> {
    if kmap.l().saturating_mul(8) >= PREFETCH_BYTES_MIN {
        batch_dispatch_pf::<V, K, true>(kmap, view, kernel, k, flows)
    } else {
        batch_dispatch_pf::<V, K, false>(kmap, view, kernel, k, flows)
    }
}

fn batch_dispatch_pf<V: CounterView, K: BatchKernel, const PF: bool>(
    kmap: &KCounterMap,
    view: &V,
    kernel: K,
    k: usize,
    flows: &[u64],
) -> Vec<Estimate> {
    match k {
        1 => batch_fixed::<V, K, 1, PF>(kmap, view, kernel, flows),
        2 => batch_fixed::<V, K, 2, PF>(kmap, view, kernel, flows),
        3 => batch_fixed::<V, K, 3, PF>(kmap, view, kernel, flows),
        4 => batch_fixed::<V, K, 4, PF>(kmap, view, kernel, flows),
        5 => batch_fixed::<V, K, 5, PF>(kmap, view, kernel, flows),
        6 => batch_fixed::<V, K, 6, PF>(kmap, view, kernel, flows),
        7 => batch_fixed::<V, K, 7, PF>(kmap, view, kernel, flows),
        8 => batch_fixed::<V, K, 8, PF>(kmap, view, kernel, flows),
        _ => batch_kernel::<V, K, PF>(kmap, view, kernel, k, flows),
    }
}

/// [`batch_kernel`] with `k` lifted to a const generic: buffers are
/// exactly `KC` wide, so the fill/gather/sum loops unroll.
fn batch_fixed<V: CounterView, K: BatchKernel, const KC: usize, const PF: bool>(
    kmap: &KCounterMap,
    view: &V,
    kernel: K,
    flows: &[u64],
) -> Vec<Estimate> {
    debug_assert_eq!(kmap.k(), KC);
    let mut out = Vec::with_capacity(flows.len());
    let mut idx = [0usize; KC];
    let mut w = [0u64; KC];
    for &flow in flows {
        kmap.fill_indices(flow, &mut idx);
        if PF {
            // Hint all KC lines before the first dependent load so the
            // (independent) fetches overlap instead of serializing.
            for &i in &idx {
                view.prefetch(i);
            }
        }
        for (dst, &i) in w.iter_mut().zip(idx.iter()) {
            *dst = view.get(i);
        }
        out.push(kernel.eval(&w));
    }
    out
}

/// The per-worker batch kernel: stack-buffered index generation, a
/// prefetch hint per counter line between index generation and the
/// gather when the array is large enough for hints to pay, zero
/// allocations beyond the output vector.
fn batch_kernel<V: CounterView, K: BatchKernel, const PF: bool>(
    kmap: &KCounterMap,
    view: &V,
    kernel: K,
    k: usize,
    flows: &[u64],
) -> Vec<Estimate> {
    debug_assert!(k <= K_MAX);
    let mut out = Vec::with_capacity(flows.len());
    let mut idx = [0usize; K_MAX];
    let mut w = [0u64; K_MAX];
    for &flow in flows {
        kmap.fill_indices(flow, &mut idx);
        if PF {
            // Hint all k lines before the first dependent load so the
            // (independent) fetches overlap instead of serializing.
            for &i in &idx[..k] {
                view.prefetch(i);
            }
        }
        for (dst, &i) in w[..k].iter_mut().zip(idx[..k].iter()) {
            *dst = view.get(i);
        }
        out.push(kernel.eval(&w[..k]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::CounterArray;

    fn setup() -> (KCounterMap, CounterArray, EstimateParams) {
        let params = EstimateParams { k: 3, y: 54, counters: 512, total_packets: 40_000 };
        let kmap = KCounterMap::new(params.k, params.counters, 0xFEED);
        let mut sram = CounterArray::new(params.counters, 32);
        let mut x = 1u64;
        for _ in 0..40_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            sram.add((x >> 33) as usize % 512, 1);
        }
        (kmap, sram, params)
    }

    #[test]
    fn batch_matches_per_call_bit_exactly_at_any_width() {
        let (kmap, sram, params) = setup();
        let flows: Vec<u64> = (0..1000u64).map(hashkit::mix::mix64).collect();
        for estimator in [Estimator::Csm, Estimator::Mlm] {
            let reference: Vec<Estimate> = flows
                .iter()
                .map(|&f| {
                    let w: Vec<u64> =
                        kmap.indices(f).into_iter().map(|i| sram.get(i)).collect();
                    match estimator {
                        Estimator::Csm => csm::estimate(&w, &params),
                        Estimator::Mlm => mlm::estimate(&w, &params),
                    }
                })
                .collect();
            for threads in [1usize, 2, 4, 16] {
                let batch = estimate_all(&kmap, &sram, &params, estimator, &flows, threads);
                assert_eq!(batch.len(), reference.len());
                for (i, (a, b)) in reference.iter().zip(&batch).enumerate() {
                    assert_eq!(
                        a.value.to_bits(),
                        b.value.to_bits(),
                        "{estimator:?} t={threads} flow#{i}"
                    );
                    assert_eq!(a.variance.to_bits(), b.variance.to_bits());
                }
            }
        }
    }

    #[test]
    fn empty_and_single_flow_batches() {
        let (kmap, sram, params) = setup();
        assert!(estimate_all(&kmap, &sram, &params, Estimator::Csm, &[], 4).is_empty());
        let one = estimate_all(&kmap, &sram, &params, Estimator::Mlm, &[42], 4);
        assert_eq!(one.len(), 1);
    }
}
