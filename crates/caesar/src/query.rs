//! Chunk-parallel batch query engine (§3.2 at scale).
//!
//! The per-call query path (`Caesar::estimate`) is convenient but pays,
//! per flow: two heap allocations (`indices()` + the gathered counter
//! `Vec`), re-validation of the estimator parameters, and recomputation
//! of every flow-independent floating-point constant. Sweeping an
//! entire flow table — the common offline workload ("estimate all 2k
//! flows") — multiplies that overhead by the population.
//!
//! This engine evaluates CSM/MLM over a *batch* of flows with
//!
//! * **batched index generation** — one stack buffer per worker,
//!   zero allocations per flow, with a software prefetch of the `k`
//!   counter lines between index generation and the gather whenever
//!   the counter array is big enough to spill the core-private caches
//!   (on L2-resident arrays — every paper geometry — the hints are
//!   pure overhead and are compiled out, see `PREFETCH_BYTES_MIN`);
//! * **prepared estimator kernels** ([`csm::Prepared`] /
//!   [`mlm::Prepared`]) with all constants hoisted once per sweep and
//!   the batch loop monomorphized per estimator;
//! * **contiguous chunk parallelism** over [`support::par`] scoped
//!   threads.
//!
//! A double-buffered one-flow-lookahead variant (generate flow `i+1`'s
//! indices and prefetch its counters while estimating flow `i`) was
//! measured ~2× *slower* per flow at the paper geometries: the SRAM
//! array fits in L2, so the lookahead bookkeeping (buffer parity,
//! extra live state) dwarfs the memory latency it hides. The simple
//! fill → prefetch → gather → estimate loop wins; revisit only with an
//! LLC-sized `L`.
//!
//! Determinism: per-flow estimation is a *pure* function of the frozen
//! counter array (no RNG anywhere in the query phase), the prepared
//! kernels are bit-identical to the per-call estimators by
//! construction, and chunking is order-preserving — so the output is
//! **bit-identical to the sequential path at every thread count**
//! (pinned by `tests/hotpath_equivalence.rs`). Requested thread counts
//! are resolved against `available_parallelism()` so a 4-way sweep on a
//! 1-core host degrades to the batch kernel instead of paying spawn
//! latency for no concurrency.

use crate::config::Estimator;
use crate::estimator::{csm, mlm, Estimate, EstimateParams, LANES};
use hashkit::{KCounterMap, K_MAX};
use support::par::par_map_threads;

/// Read-only view of a frozen counter array — the one thing the two
/// sketch flavors ([`crate::Caesar`]'s `CounterArray`,
/// [`crate::ConcurrentCaesar`]'s `AtomicCounterArray`) must provide to
/// the batch engine.
pub trait CounterView: Sync {
    /// Read counter `idx`.
    fn get(&self, idx: usize) -> u64;
    /// Hint that counter `idx` is about to be read (default: no-op).
    fn prefetch(&self, _idx: usize) {}
}

impl CounterView for crate::sram::CounterArray {
    #[inline]
    fn get(&self, idx: usize) -> u64 {
        crate::sram::CounterArray::get(self, idx)
    }
    #[inline]
    fn prefetch(&self, idx: usize) {
        crate::sram::CounterArray::prefetch(self, idx)
    }
}

impl CounterView for crate::atomic_sram::AtomicCounterArray {
    #[inline]
    fn get(&self, idx: usize) -> u64 {
        crate::atomic_sram::AtomicCounterArray::get(self, idx)
    }
    #[inline]
    fn prefetch(&self, idx: usize) {
        crate::atomic_sram::AtomicCounterArray::prefetch(self, idx)
    }
}

impl CounterView for crate::packed::PackedCounterArray {
    #[inline]
    fn get(&self, idx: usize) -> u64 {
        crate::packed::PackedCounterArray::get(self, idx)
    }
}

/// A [`CounterView`] that can also report saturation state — what the
/// health-annotated query path needs on top of raw reads. Implemented
/// by all three counter-array flavors (plain, atomic-striped, packed).
pub trait SaturationView: CounterView {
    /// Saturating adds that lost precision over the array's lifetime.
    fn saturation_events(&self) -> u64;
    /// The clamp value a saturated counter sits at.
    fn clamp_value(&self) -> u64;
}

impl SaturationView for crate::sram::CounterArray {
    fn saturation_events(&self) -> u64 {
        self.stats().saturations
    }
    fn clamp_value(&self) -> u64 {
        self.max_value()
    }
}

impl SaturationView for crate::atomic_sram::AtomicCounterArray {
    fn saturation_events(&self) -> u64 {
        self.saturations()
    }
    fn clamp_value(&self) -> u64 {
        self.max_value()
    }
}

impl SaturationView for crate::packed::PackedCounterArray {
    fn saturation_events(&self) -> u64 {
        self.saturations()
    }
    fn clamp_value(&self) -> u64 {
        self.max_value()
    }
}

/// A health-annotated estimate: the value plus everything a consumer
/// needs to judge whether it can be trusted.
///
/// Two degradation sources are surfaced:
///
/// * **Saturation bias.** A counter stuck at its clamp value has lost
///   mass, so CSM/MLM under-estimate every flow mapped onto it.
///   `saturation_events` is the array-wide tally;
///   `saturated_counters` counts how many of *this flow's* `k`
///   counters currently sit at the clamp.
/// * **Ingest loss.** Packets shed by backpressure or quarantined by a
///   worker fault never reached the sketch. `loss_fraction` is the
///   exact per-shard loss ratio the online runtime accounts
///   (`(dropped + quarantined) / offered`), `0.0` for offline sketches.
///
/// `confidence = (1 − loss_fraction) · (1 − saturated_counters / k)`
/// — a [0, 1] heuristic that is 1.0 exactly when neither source is
/// present (not a calibrated probability; see DESIGN §4f).
#[derive(Debug, Clone, Copy)]
pub struct QueryHealth {
    /// The estimate itself (value + variance).
    pub estimate: Estimate,
    /// Array-wide saturating-add events.
    pub saturation_events: u64,
    /// How many of the flow's `k` counters sit at the clamp value.
    pub saturated_counters: usize,
    /// Exact ingest-loss ratio for the flow's shard (0.0 offline).
    pub loss_fraction: f64,
    /// Combined [0, 1] trust score (see above).
    pub confidence: f64,
}

impl QueryHealth {
    /// True when either degradation source is present — the estimate
    /// should be consumed with its `confidence`, not at face value.
    pub fn is_degraded(&self) -> bool {
        self.saturated_counters > 0 || self.saturation_events > 0 || self.loss_fraction > 0.0
    }
}

/// Health-annotated single-flow query against any saturation-aware
/// counter array. `loss_fraction` is the caller's exact ingest-loss
/// ratio for this flow's shard (pass `0.0` for loss-free sketches).
///
/// # Panics
/// Panics on invalid `params` or `loss_fraction` outside `[0, 1]`.
pub fn query_health<V: SaturationView>(
    kmap: &KCounterMap,
    view: &V,
    params: &EstimateParams,
    estimator: Estimator,
    flow: u64,
    loss_fraction: f64,
) -> QueryHealth {
    assert!(
        (0.0..=1.0).contains(&loss_fraction),
        "loss_fraction must be in [0, 1]"
    );
    let clamp = view.clamp_value();
    let w: Vec<u64> = kmap.indices(flow).into_iter().map(|i| view.get(i)).collect();
    let saturated_counters = w.iter().filter(|&&v| v >= clamp).count();
    let estimate = match estimator {
        Estimator::Csm => csm::estimate(&w, params),
        Estimator::Mlm => mlm::estimate(&w, params),
    };
    let k = w.len().max(1);
    let confidence =
        (1.0 - loss_fraction) * (1.0 - saturated_counters as f64 / k as f64);
    QueryHealth {
        estimate,
        saturation_events: view.saturation_events(),
        saturated_counters,
        loss_fraction,
        confidence,
    }
}

/// A prepared per-flow estimator kernel. Sealed to the two prepared
/// estimators; exists so the batch loops monomorphize per estimator
/// (full inlining of the float chains) instead of branching on an enum
/// for every flow.
trait BatchKernel: Copy + Sync {
    fn eval(&self, w: &[u64]) -> Estimate;

    /// Lane form: evaluate [`LANES`] flows at once from their gathered
    /// counter rows, `w[r][lane]` = counter `r` of the chunk's flow
    /// `lane`. The per-flow reduction (sum / Σw²) runs round-major so
    /// each lane accumulates in the exact scalar order; the float tail
    /// is the estimator's `estimate_lanes` kernel. Lane `i` of the
    /// output is bit-identical to `eval` on flow `i`'s row.
    fn eval_lanes<const KC: usize>(&self, w: &[[u64; LANES]; KC]) -> [Estimate; LANES];
}

impl BatchKernel for csm::Prepared {
    #[inline(always)]
    fn eval(&self, w: &[u64]) -> Estimate {
        self.estimate(w)
    }

    #[inline(always)]
    fn eval_lanes<const KC: usize>(&self, w: &[[u64; LANES]; KC]) -> [Estimate; LANES] {
        let mut sums = [0u64; LANES];
        for row in w {
            for lane in 0..LANES {
                sums[lane] += row[lane];
            }
        }
        // Exact convert of the scalar kernel's u64 sum; done here so
        // the kernel proper is a pure float chain (see estimate_lanes).
        let mut sums_f = [0f64; LANES];
        for lane in 0..LANES {
            sums_f[lane] = sums[lane] as f64;
        }
        let (value, variance) = self.estimate_lanes(&sums_f);
        let mut out = [Estimate { value: 0.0, variance: 0.0 }; LANES];
        for lane in 0..LANES {
            out[lane] = Estimate { value: value[lane], variance: variance[lane] };
        }
        out
    }
}

impl BatchKernel for mlm::Prepared {
    #[inline(always)]
    fn eval(&self, w: &[u64]) -> Estimate {
        self.estimate(w)
    }

    #[inline(always)]
    fn eval_lanes<const KC: usize>(&self, w: &[[u64; LANES]; KC]) -> [Estimate; LANES] {
        let mut sum_sq = [0f64; LANES];
        for row in w {
            for lane in 0..LANES {
                let wf = row[lane] as f64;
                sum_sq[lane] += wf * wf;
            }
        }
        self.estimate_lanes(&sum_sq)
    }
}

/// Resolve a requested worker count against the host: more OS threads
/// than hardware threads only adds spawn/switch latency (the work is
/// CPU-bound), so cap at the memoized
/// [`host_parallelism`](support::par::host_parallelism) — the
/// un-memoized probe re-reads sysfs/procfs per call under cgroup CPU
/// quotas (~10 µs measured), which was several ns/flow of pure
/// syscall overhead when paid per sweep. Chunking does not affect
/// results, only scheduling — outputs are bit-identical at any width.
fn resolve_threads(requested: usize) -> usize {
    requested.clamp(1, support::par::host_parallelism())
}

/// Default batch-query chunk width: `0` means *auto* — one contiguous
/// chunk per worker (`flows.len() / threads`, rounded up), the
/// best-throughput split on every geometry measured so far.
const QUERY_CHUNK_WIDTH_AUTO: usize = 0;

/// The batch-query chunk width in flows, unless overridden through the
/// `CAESAR_QUERY_CHUNK_WIDTH` environment variable (a flow count, read
/// **once** per process). `0` — the default — means *auto*: one chunk
/// per worker. A positive value forces that fixed width, so benches
/// and cross-host tuning can sweep gather widths (finer chunks trade
/// scheduling overhead for tail balance) without recompiling —
/// chunking is order-preserving, so outputs are bit-identical at any
/// width. Unparsable values warn on stderr and keep the default.
pub fn query_batch_chunk_width() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        parse_chunk_width(std::env::var("CAESAR_QUERY_CHUNK_WIDTH").ok().as_deref())
    })
}

/// Parse the env override; `None`/empty means "use the default".
fn parse_chunk_width(raw: Option<&str>) -> usize {
    match raw.map(str::trim) {
        None | Some("") => QUERY_CHUNK_WIDTH_AUTO,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!(
                "caesar: ignoring unparsable CAESAR_QUERY_CHUNK_WIDTH={s:?} \
                 (want a flow count, 0 = auto); using auto"
            );
            QUERY_CHUNK_WIDTH_AUTO
        }),
    }
}

/// Evaluate `estimator` for every flow in `flows` against the frozen
/// counters in `view`, using up to `threads` workers (resolved against
/// the host's parallelism). Output order matches `flows`; results are
/// bit-identical to calling the per-flow estimator sequentially.
///
/// # Panics
/// Panics on invalid `params`.
pub fn estimate_all<V: CounterView>(
    kmap: &KCounterMap,
    view: &V,
    params: &EstimateParams,
    estimator: Estimator,
    flows: &[u64],
    threads: usize,
) -> Vec<Estimate> {
    // Monomorphize the whole sweep per estimator: the per-flow float
    // chains inline into the batch loop instead of dispatching through
    // an enum 2k times.
    match estimator {
        Estimator::Csm => run_all(kmap, view, csm::Prepared::new(params), params.k, flows, threads),
        Estimator::Mlm => run_all(kmap, view, mlm::Prepared::new(params), params.k, flows, threads),
    }
}

fn run_all<V: CounterView, K: BatchKernel>(
    kmap: &KCounterMap,
    view: &V,
    kernel: K,
    k: usize,
    flows: &[u64],
    threads: usize,
) -> Vec<Estimate> {
    if k > K_MAX {
        // Cold fallback for pathological geometries: no stack buffers,
        // but still one prepared kernel for the whole sweep.
        let mut idx = vec![0usize; k];
        let mut w = vec![0u64; k];
        return flows
            .iter()
            .map(|&f| {
                kmap.fill_indices(f, &mut idx);
                for (dst, &i) in w.iter_mut().zip(idx.iter()) {
                    *dst = view.get(i);
                }
                kernel.eval(&w)
            })
            .collect();
    }
    let threads = resolve_threads(threads);
    if threads <= 1 || flows.len() < 2 {
        return batch_dispatch(kmap, view, kernel, k, flows);
    }
    // Contiguous chunks, one per worker by default; order-preserving
    // reassembly keeps the output bit-identical at any width.
    let chunk = match query_batch_chunk_width() {
        0 => flows.len().div_ceil(threads),
        w => w,
    };
    let chunks: Vec<&[u64]> = flows.chunks(chunk).collect();
    let per_chunk = par_map_threads(&chunks, threads, |c| {
        batch_dispatch(kmap, view, kernel, k, c)
    });
    let mut out = Vec::with_capacity(flows.len());
    for mut part in per_chunk {
        out.append(&mut part);
    }
    out
}

/// Prefetch hints only pay once the counter array spills out of the
/// core-private cache levels; at every paper geometry (`L·8` ≲ 200 KiB)
/// the array is L2-resident and the hint instructions are pure
/// overhead (~2 ns/flow at `k = 3`, measured). Issue them only when
/// the resident counter bytes exceed this threshold.
const PREFETCH_BYTES_MIN: usize = 1 << 20;

/// Route the paper's `k ∈ [1, 8]` range to const-generic loops (index
/// fill, gather and the kernel's counter sum all fully unroll — the
/// runtime-`k` form costs ~2× at `k = 3`); anything larger takes the
/// generic kernel. Prefetching is resolved once per chunk from the
/// counter array's resident size (`PREFETCH_BYTES_MIN`) and lifted
/// to a const generic so the L2-resident case carries no per-flow
/// hint instructions. Same loads and arithmetic either way, so
/// outputs are bit-identical.
fn batch_dispatch<V: CounterView, K: BatchKernel>(
    kmap: &KCounterMap,
    view: &V,
    kernel: K,
    k: usize,
    flows: &[u64],
) -> Vec<Estimate> {
    if kmap.l().saturating_mul(8) >= PREFETCH_BYTES_MIN {
        batch_dispatch_pf::<V, K, true>(kmap, view, kernel, k, flows)
    } else {
        batch_dispatch_pf::<V, K, false>(kmap, view, kernel, k, flows)
    }
}

fn batch_dispatch_pf<V: CounterView, K: BatchKernel, const PF: bool>(
    kmap: &KCounterMap,
    view: &V,
    kernel: K,
    k: usize,
    flows: &[u64],
) -> Vec<Estimate> {
    match k {
        1 => batch_fixed::<V, K, 1, PF>(kmap, view, kernel, flows),
        2 => batch_fixed::<V, K, 2, PF>(kmap, view, kernel, flows),
        3 => batch_fixed::<V, K, 3, PF>(kmap, view, kernel, flows),
        4 => batch_fixed::<V, K, 4, PF>(kmap, view, kernel, flows),
        5 => batch_fixed::<V, K, 5, PF>(kmap, view, kernel, flows),
        6 => batch_fixed::<V, K, 6, PF>(kmap, view, kernel, flows),
        7 => batch_fixed::<V, K, 7, PF>(kmap, view, kernel, flows),
        8 => batch_fixed::<V, K, 8, PF>(kmap, view, kernel, flows),
        _ => batch_kernel::<V, K, PF>(kmap, view, kernel, k, flows),
    }
}

/// [`batch_kernel`] with `k` lifted to a const generic, restructured
/// into [`LANES`]-wide chunks: one batch index fill per chunk
/// ([`KCounterMap::fill_indices_batch`] — four independent hash
/// chains), a round-major gather into the `[[u64; LANES]; KC]` SoA
/// rows, and the estimator's lane kernel over the chunk. The `< LANES`
/// tail takes the scalar fill → gather → eval loop. Both paths are
/// bit-identical per flow (the lane kernels pin this), so chunking is
/// unobservable in the output.
fn batch_fixed<V: CounterView, K: BatchKernel, const KC: usize, const PF: bool>(
    kmap: &KCounterMap,
    view: &V,
    kernel: K,
    flows: &[u64],
) -> Vec<Estimate> {
    debug_assert_eq!(kmap.k(), KC);
    let mut out = Vec::with_capacity(flows.len());
    let mut chunks = flows.chunks_exact(LANES);
    for chunk in chunks.by_ref() {
        let mut bases = [0u64; LANES];
        for lane in 0..LANES {
            bases[lane] = kmap.base_hash(chunk[lane]);
        }
        // Fused candidate + gather rounds: round r's four counter loads
        // issue while round r+1's hash multiplies run, so the (L2)
        // load latency overlaps the arithmetic instead of serializing
        // behind the full index fill.
        let mut rows = [[0usize; KC]; LANES];
        let mut w = [[0u64; LANES]; KC];
        for r in 0..KC {
            let mut idx = [0usize; LANES];
            for lane in 0..LANES {
                idx[lane] = kmap.candidate(bases[lane], r as u64);
            }
            if PF {
                for &i in &idx {
                    view.prefetch(i);
                }
            }
            for lane in 0..LANES {
                rows[lane][r] = idx[lane];
                w[r][lane] = view.get(idx[lane]);
            }
        }
        // Rare repair: a lane whose first KC candidates collided gets
        // the canonical duplicate-skip row (bit-identical to the
        // scalar path) and a re-gather of its column.
        for lane in 0..LANES {
            if has_lane_duplicate(&rows[lane]) {
                kmap.fill_indices_from_base(bases[lane], &mut rows[lane]);
                for r in 0..KC {
                    w[r][lane] = view.get(rows[lane][r]);
                }
            }
        }
        out.extend_from_slice(&kernel.eval_lanes(&w));
    }
    let mut idx = [0usize; KC];
    let mut w = [0u64; KC];
    for &flow in chunks.remainder() {
        kmap.fill_indices(flow, &mut idx);
        if PF {
            for &i in &idx {
                view.prefetch(i);
            }
        }
        for (dst, &i) in w.iter_mut().zip(idx.iter()) {
            *dst = view.get(i);
        }
        out.push(kernel.eval(&w));
    }
    out
}

/// The per-worker batch kernel: stack-buffered index generation, a
/// prefetch hint per counter line between index generation and the
/// gather when the array is large enough for hints to pay, zero
/// allocations beyond the output vector.
fn batch_kernel<V: CounterView, K: BatchKernel, const PF: bool>(
    kmap: &KCounterMap,
    view: &V,
    kernel: K,
    k: usize,
    flows: &[u64],
) -> Vec<Estimate> {
    debug_assert!(k <= K_MAX);
    let mut out = Vec::with_capacity(flows.len());
    let mut idx = [0usize; K_MAX];
    let mut w = [0u64; K_MAX];
    for &flow in flows {
        kmap.fill_indices(flow, &mut idx);
        if PF {
            // Hint all k lines before the first dependent load so the
            // (independent) fetches overlap instead of serializing.
            for &i in &idx[..k] {
                view.prefetch(i);
            }
        }
        for (dst, &i) in w[..k].iter_mut().zip(idx[..k].iter()) {
            *dst = view.get(i);
        }
        out.push(kernel.eval(&w[..k]));
    }
    out
}

/// Pairwise duplicate scan over one candidate row (`KC <= 8`, fully
/// unrolled, branch-free).
#[inline(always)]
fn has_lane_duplicate<const KC: usize>(row: &[usize; KC]) -> bool {
    let mut dup = false;
    for i in 1..KC {
        for j in 0..i {
            dup |= row[i] == row[j];
        }
    }
    dup
}

/// Asm-shape anchor for the CSM lane kernel: a standalone, non-inlined
/// instantiation of [`csm::Prepared::estimate_lanes`] that
/// `scripts/check.sh --simd-smoke` disassembles (`--emit=asm`) and
/// greps for packed-double instructions, so a toolchain bump that
/// silently de-vectorizes the lane kernels fails the check instead of
/// shipping. Not used by the hot path (which inlines the kernel); kept
/// `pub` so the symbol always reaches the object file.
#[inline(never)]
pub fn asm_probe_csm_lanes(
    prep: &csm::Prepared,
    sums_f: &[f64; LANES],
) -> ([f64; LANES], [f64; LANES]) {
    prep.estimate_lanes(sums_f)
}

/// Asm-shape anchor for the MLM lane kernel (packed `sqrtpd` et al.);
/// see [`asm_probe_csm_lanes`].
#[inline(never)]
pub fn asm_probe_mlm_lanes(prep: &mlm::Prepared, sum_sq: &[f64; LANES]) -> [Estimate; LANES] {
    prep.estimate_lanes(sum_sq)
}

/// Asm-shape anchor for the batch-hash candidate pass
/// ([`KCounterMap::fill_indices_lanes`] at the paper's default `k = 3`):
/// the guard greps for packed 64-bit lane arithmetic in the mix chains.
#[inline(never)]
pub fn asm_probe_fill_lanes_k3(
    kmap: &KCounterMap,
    flows: &[u64; LANES],
    out: &mut [[usize; 3]; LANES],
) {
    kmap.fill_indices_lanes(flows, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::CounterArray;

    fn setup() -> (KCounterMap, CounterArray, EstimateParams) {
        let params = EstimateParams { k: 3, y: 54, counters: 512, total_packets: 40_000 };
        let kmap = KCounterMap::new(params.k, params.counters, 0xFEED);
        let mut sram = CounterArray::new(params.counters, 32);
        let mut x = 1u64;
        for _ in 0..40_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            sram.add((x >> 33) as usize % 512, 1);
        }
        (kmap, sram, params)
    }

    #[test]
    fn batch_matches_per_call_bit_exactly_at_any_width() {
        let (kmap, sram, params) = setup();
        let flows: Vec<u64> = (0..1000u64).map(hashkit::mix::mix64).collect();
        for estimator in [Estimator::Csm, Estimator::Mlm] {
            let reference: Vec<Estimate> = flows
                .iter()
                .map(|&f| {
                    let w: Vec<u64> =
                        kmap.indices(f).into_iter().map(|i| sram.get(i)).collect();
                    match estimator {
                        Estimator::Csm => csm::estimate(&w, &params),
                        Estimator::Mlm => mlm::estimate(&w, &params),
                    }
                })
                .collect();
            for threads in [1usize, 2, 4, 16] {
                let batch = estimate_all(&kmap, &sram, &params, estimator, &flows, threads);
                assert_eq!(batch.len(), reference.len());
                for (i, (a, b)) in reference.iter().zip(&batch).enumerate() {
                    assert_eq!(
                        a.value.to_bits(),
                        b.value.to_bits(),
                        "{estimator:?} t={threads} flow#{i}"
                    );
                    assert_eq!(a.variance.to_bits(), b.variance.to_bits());
                }
            }
        }
    }

    #[test]
    fn chunk_width_override_parses_defensively() {
        assert_eq!(parse_chunk_width(None), QUERY_CHUNK_WIDTH_AUTO);
        assert_eq!(parse_chunk_width(Some("")), QUERY_CHUNK_WIDTH_AUTO);
        assert_eq!(parse_chunk_width(Some("  256 ")), 256);
        assert_eq!(parse_chunk_width(Some("0")), QUERY_CHUNK_WIDTH_AUTO);
        assert_eq!(parse_chunk_width(Some("not-a-number")), QUERY_CHUNK_WIDTH_AUTO);
    }

    #[test]
    fn query_health_flags_saturation_on_all_array_flavors() {
        let params = EstimateParams { k: 3, y: 8, counters: 64, total_packets: 3_000 };
        let kmap = KCounterMap::new(params.k, params.counters, 0xFEED);
        let flow = 0xABCDu64;
        let idx = kmap.indices(flow);

        // Plain array: saturate one of the flow's counters (4-bit).
        let mut plain = CounterArray::new(params.counters, 4);
        plain.add(idx[0], 1_000);
        let h = query_health(&kmap, &plain, &params, Estimator::Csm, flow, 0.0);
        assert!(h.saturation_events > 0);
        assert_eq!(h.saturated_counters, 1);
        assert!(h.is_degraded());
        assert!((h.confidence - (1.0 - 1.0 / 3.0)).abs() < 1e-12);

        // Atomic-striped array.
        let atomic = crate::atomic_sram::AtomicCounterArray::new(params.counters, 4);
        atomic.add(idx[0], 1_000);
        let h = query_health(&kmap, &atomic, &params, Estimator::Mlm, flow, 0.0);
        assert!(h.saturation_events > 0);
        assert_eq!(h.saturated_counters, 1);

        // Packed array.
        let mut packed = crate::packed::PackedCounterArray::new(params.counters, 4);
        packed.add(idx[0], 1_000);
        let h = query_health(&kmap, &packed, &params, Estimator::Csm, flow, 0.0);
        assert!(h.saturation_events > 0);
        assert_eq!(h.saturated_counters, 1);
    }

    #[test]
    fn query_health_clean_sketch_has_full_confidence() {
        let (kmap, sram, params) = setup();
        let h = query_health(&kmap, &sram, &params, Estimator::Csm, 42, 0.0);
        assert_eq!(h.saturated_counters, 0);
        assert_eq!(h.saturation_events, 0);
        assert!(!h.is_degraded());
        assert_eq!(h.confidence, 1.0);
        // The annotated estimate is bit-identical to the plain query.
        let w: Vec<u64> = kmap.indices(42).into_iter().map(|i| sram.get(i)).collect();
        let reference = csm::estimate(&w, &params);
        assert_eq!(h.estimate.value.to_bits(), reference.value.to_bits());
        // Loss folds in multiplicatively.
        let lossy = query_health(&kmap, &sram, &params, Estimator::Csm, 42, 0.25);
        assert!((lossy.confidence - 0.75).abs() < 1e-12);
        assert!(lossy.is_degraded());
    }

    #[test]
    fn empty_and_single_flow_batches() {
        let (kmap, sram, params) = setup();
        assert!(estimate_all(&kmap, &sram, &params, Estimator::Csm, &[], 4).is_empty());
        let one = estimate_all(&kmap, &sram, &params, Estimator::Mlm, &[42], 4);
        assert_eq!(one.len(), 1);
    }
}
