//! Gaussian helpers for the confidence intervals (Eqs. 26 and 32).

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + support::mathx::erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`, by bisection on
/// the CDF (fast enough for a query-phase constant and immune to the
/// usual rational-approximation edge cases).
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
    let (mut lo, mut hi) = (-10.0f64, 10.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The `Z_α` factor of the paper's confidence intervals: the two-sided
/// critical value at reliability `alpha` (e.g. `z_alpha(0.95) ≈ 1.96`).
///
/// ```
/// assert!((caesar::gaussian::z_alpha(0.95) - 1.959964).abs() < 1e-4);
/// ```
pub fn z_alpha(alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "reliability must be in (0,1)");
    normal_quantile(0.5 + alpha / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-6);
        assert!((normal_cdf(-1.96) - 0.0249978).abs() < 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn common_critical_values() {
        assert!((z_alpha(0.90) - 1.644854).abs() < 1e-4);
        assert!((z_alpha(0.95) - 1.959964).abs() < 1e-4);
        assert!((z_alpha(0.99) - 2.575829).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "reliability")]
    fn z_alpha_rejects_one() {
        z_alpha(1.0);
    }
}
