//! The full CAESAR pipeline: cache → split-`k` eviction → SRAM →
//! estimator.

use crate::config::{CaesarConfig, Estimator};
use crate::estimator::{csm, mlm, Estimate, EstimateParams};
use crate::packed::PackedCounterArray;
use crate::query::CounterView;
use crate::sram::{CounterArray, CounterArrayStats, SramBacking};
use crate::update::spread_eviction;
use cachesim::{CacheConfig, CacheStats, CacheTable};
use hashkit::KCounterMap;
use support::rand::{rngs::StdRng, SeedableRng};

/// Smallest SRAM footprint (bytes) for which the batch paths issue
/// software prefetches of predicted counter rows. Below this the
/// counter array is comfortably cache-resident and the prefetch
/// instructions are pure front-end overhead — BENCH_PR3 measured the
/// hinted batch path *slower* than scalar `record` on the 2048-counter
/// (16 KiB) micro-trace geometry precisely because every prefetch was
/// wasted. 256 KiB ≈ typical per-core L2 size: arrays at least this
/// big miss often enough for the one-ahead hint to pay.
pub(crate) const SRAM_PREFETCH_MIN_BYTES: usize = 256 * 1024;

/// The prefetch gate actually in effect: [`SRAM_PREFETCH_MIN_BYTES`]
/// unless overridden through the `CAESAR_SRAM_PREFETCH_MIN_BYTES`
/// environment variable (a byte count, read **once** per process).
/// The override exists so benches and cross-host tuning can force
/// either batch path on any geometry — `0` turns prefetching on
/// everywhere, a huge value turns it off — without recompiling.
/// Unparsable values warn on stderr and keep the built-in default.
pub fn sram_prefetch_min_bytes() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        parse_prefetch_min(std::env::var("CAESAR_SRAM_PREFETCH_MIN_BYTES").ok().as_deref())
    })
}

/// Parse the env override; `None`/empty means "use the default".
fn parse_prefetch_min(raw: Option<&str>) -> usize {
    match raw.map(str::trim) {
        None | Some("") => SRAM_PREFETCH_MIN_BYTES,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!(
                "caesar: ignoring unparsable CAESAR_SRAM_PREFETCH_MIN_BYTES={s:?} \
                 (want a byte count); using default {SRAM_PREFETCH_MIN_BYTES}"
            );
            SRAM_PREFETCH_MIN_BYTES
        }),
    }
}

/// Aggregate statistics of a CAESAR run.
#[derive(Debug, Clone, Copy)]
pub struct CaesarStats {
    /// Cache-side counters (hits, misses, evictions by kind).
    pub cache: CacheStats,
    /// SRAM-side counters (accesses, saturations, totals).
    pub sram: CounterArrayStats,
    /// Eviction events pushed off-chip.
    pub evictions: u64,
    /// Coalesced SRAM counter writes performed.
    pub sram_writes: u64,
}

/// Cache Assisted randomizEd ShAring counteRs (see crate docs),
/// generic over the off-chip counter storage.
///
/// `B` is the [`SramBacking`] seam: [`Caesar`] (the default, a
/// word-per-counter [`CounterArray`]) is the simulation hot path;
/// [`PackedCaesar`] runs the identical ingest against the
/// hardware-faithful bit-packed layout, and the two produce
/// byte-identical sketches (pinned by the packed-parity suite). The
/// `ablations/ingest_backing` bench group prices the difference.
#[derive(Debug)]
pub struct CaesarCore<B: SramBacking = CounterArray> {
    cfg: CaesarConfig,
    cache: CacheTable,
    sram: B,
    kmap: KCounterMap,
    rng: StdRng,
    /// Memoized per-slot counter indices (row `slot` is
    /// `memo[slot·k .. slot·k + k]`): each resident flow's `k` mapped
    /// SRAM indices are computed **once at insert time** and reused by
    /// every Overflow / Replacement / FinalDump eviction of that
    /// occupancy, eliminating the per-eviction re-hash. Rows are
    /// refreshed whenever the cache rebinds a slot
    /// ([`cachesim::Recorded::inserted`]), *after* the replacement
    /// eviction of the previous occupant consumed its row.
    memo: Vec<usize>,
    ev_buf: Vec<cachesim::Eviction>,
    /// Reusable per-batch base-hash row ([`KCounterMap::base_hashes`]):
    /// `record_batch` hashes the whole drain batch up front in
    /// lane-width chunks, and inserted flows derive their `k` counter
    /// indices from the memoized base.
    base_buf: Vec<u64>,
    finished: bool,
    evictions: u64,
    sram_writes: u64,
}

/// The word-per-counter CAESAR sketch — the default, fastest layout.
pub type Caesar = CaesarCore<CounterArray>;

/// CAESAR ingesting directly into the bit-packed
/// [`PackedCounterArray`] — the paper's exact `L·log2(l)`-bit SRAM
/// budget on the real construction path.
pub type PackedCaesar = CaesarCore<PackedCounterArray>;

impl<B: SramBacking> CaesarCore<B> {
    /// Build the two-level structure for `cfg`.
    ///
    /// # Panics
    /// Panics on invalid configurations (see
    /// [`CaesarConfig::validate`]).
    pub fn new(cfg: CaesarConfig) -> Self {
        cfg.validate();
        let cache = CacheTable::new(CacheConfig {
            entries: cfg.cache_entries,
            entry_capacity: cfg.entry_capacity,
            policy: cfg.policy,
            seed: cfg.seed ^ 0xA11C_E5ED,
        });
        Self {
            cache,
            sram: B::new_backing(cfg.counters, cfg.counter_bits),
            kmap: KCounterMap::new(cfg.k, cfg.counters, cfg.seed ^ 0x5EED_5EED),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x0D15_EA5E),
            memo: vec![0usize; cfg.cache_entries * cfg.k],
            ev_buf: Vec::new(),
            base_buf: Vec::new(),
            finished: false,
            evictions: 0,
            sram_writes: 0,
            cfg,
        }
    }

    /// Assemble a **finished**, query-only sketch around an externally
    /// constructed backing — the hand-off at the end of the sharded
    /// packed build ([`crate::ConcurrentCaesar::try_build_packed`]).
    /// The cache is empty (the shard caches were already drained into
    /// `sram`), so cache-side stats read zero; eviction and write
    /// tallies come from the build that produced the backing.
    pub(crate) fn from_finished_parts(
        cfg: CaesarConfig,
        sram: B,
        evictions: u64,
        sram_writes: u64,
    ) -> Self {
        let mut core = Self::new(cfg);
        core.sram = sram;
        core.evictions = evictions;
        core.sram_writes = sram_writes;
        core.finished = true;
        core
    }

    /// The configuration in use.
    pub fn config(&self) -> &CaesarConfig {
        &self.cfg
    }

    /// Construction phase: process one packet of `flow` (§3.1).
    ///
    /// # Panics
    /// Panics if called after [`Caesar::finish`]; a finished sketch is
    /// read-only.
    pub fn record(&mut self, flow: u64) {
        assert!(!self.finished, "record() after finish(): the sketch is read-only");
        self.record_inner(flow);
    }

    /// The memoized per-packet hot path. The resulting sketch is
    /// byte-identical to recomputing `kmap.indices(ev.flow)` per
    /// eviction: the memo row at the recorded slot is exactly the
    /// evicted flow's index vector (its own on Overflow, the previous
    /// occupant's on Replacement — the row is only refreshed *after*
    /// the replacement eviction is spread), and the eviction/RNG order
    /// is untouched.
    #[inline]
    fn record_inner(&mut self, flow: u64) {
        let r = self.cache.record_slotted(flow);
        self.apply_recorded(flow, r);
    }

    /// Memo/spread bookkeeping for one recorded packet, shared by the
    /// per-call and batch paths.
    #[inline]
    fn apply_recorded(&mut self, flow: u64, r: cachesim::Recorded) {
        let k = self.cfg.k;
        let start = r.slot as usize * k;
        if let Some(ev) = r.eviction {
            debug_assert_eq!(self.memo[start..start + k], self.kmap.indices(ev.flow)[..]);
            self.spread_row(start, ev.value);
        }
        if r.inserted {
            self.kmap.fill_indices(flow, &mut self.memo[start..start + k]);
        }
    }

    /// [`CaesarCore::apply_recorded`] with the flow's precomputed base
    /// hash (the batch path): identical bookkeeping, but an insert
    /// fills the memo row from the base instead of re-mixing the key.
    #[inline]
    fn apply_recorded_base(&mut self, flow: u64, base: u64, r: cachesim::Recorded) {
        debug_assert_eq!(base, self.kmap.base_hash(flow));
        let k = self.cfg.k;
        let start = r.slot as usize * k;
        if let Some(ev) = r.eviction {
            debug_assert_eq!(self.memo[start..start + k], self.kmap.indices(ev.flow)[..]);
            self.spread_row(start, ev.value);
        }
        if r.inserted {
            self.kmap.fill_indices_from_base(base, &mut self.memo[start..start + k]);
        }
    }

    /// Spread `value` over the memoized index row starting at `start`.
    #[inline]
    fn spread_row(&mut self, start: usize, value: u64) {
        // The borrow checker will not let `spread_eviction` borrow both
        // `self.sram` and `self.memo` through `self`, so split them.
        let Self { sram, memo, rng, cfg, .. } = self;
        self.sram_writes += spread_eviction(sram, &memo[start..start + cfg.k], value, rng);
        self.evictions += 1;
    }

    /// Process a whole slice of packets.
    pub fn record_all(&mut self, flows: impl IntoIterator<Item = u64>) {
        for f in flows {
            self.record(f);
        }
    }

    /// Batch construction: record `flows` in order while probing the
    /// cache state — and, when the next packet will overflow its entry
    /// *and* the counter array is large enough that a miss is likely
    /// ([`SRAM_PREFETCH_MIN_BYTES`]), software-prefetching the flow's
    /// `k` SRAM counter words — **one batch element ahead**,
    /// overlapping the lookup/RMW latency of packet `i + 1` with the
    /// processing of packet `i`.
    ///
    /// The probe result is then carried forward as a **slot hint** into
    /// packet `i + 1`'s record, so a cache hit costs one index lookup
    /// per packet instead of two (the hint is re-validated against the
    /// slot's flow tag, see
    /// [`record_slotted_hinted`](cachesim::CacheTable::record_slotted_hinted)).
    ///
    /// Strictly equivalent to `for f in flows { self.record(f) }`
    /// (the probe is read-only and the hint only short-circuits the
    /// lookup); the recorded sketch is byte-identical.
    ///
    /// # Panics
    /// Panics if called after [`Caesar::finish`].
    pub fn record_batch(&mut self, flows: &[u64]) {
        assert!(!self.finished, "record_batch() after finish(): the sketch is read-only");
        let k = self.cfg.k;
        // Hash the whole batch up front: `base_hashes` mixes the flow
        // keys in lane-width chunks (the vectorized pass), and every
        // inserted flow then derives its `k` counter indices from the
        // memoized base via `fill_indices_from_base` — bit-identical to
        // the per-flow `fill_indices` (pinned in hashkit).
        let mut bases = std::mem::take(&mut self.base_buf);
        bases.clear();
        bases.resize(flows.len(), 0);
        self.kmap.base_hashes(flows, &mut bases);
        let prefetch_sram = self.cfg.counters * 8 >= sram_prefetch_min_bytes();
        if !prefetch_sram {
            // Cache-resident counter array: there is no miss latency to
            // hide, so the probe-one-ahead pipeline below is pure
            // bookkeeping overhead (the BENCH_PR3 `caesar_trace_batch`
            // regression). The plain loop is the fast path here and is
            // trivially the same sketch.
            for (&flow, &base) in flows.iter().zip(&bases) {
                // Pure-hit fast path: >90% of packets in the cache-
                // friendly regime are absorbed on-chip with no memo or
                // spread bookkeeping; fall through to the full record
                // only on miss/overflow (record_absorbed recorded
                // nothing in that case).
                if self.cache.record_absorbed(flow) {
                    continue;
                }
                let r = self.cache.record_slotted(flow);
                self.apply_recorded_base(flow, base, r);
            }
            self.base_buf = bases;
            return;
        }
        let mut hint = flows.first().and_then(|&f| self.cache.prefetch(f));
        for (i, &flow) in flows.iter().enumerate() {
            let r = self
                .cache
                .record_slotted_hinted(flow, hint.map(|(slot, _)| slot));
            self.apply_recorded_base(flow, bases[i], r);
            hint = flows.get(i + 1).and_then(|&next| {
                let probe = self.cache.prefetch(next);
                if let Some((slot, true)) = probe {
                    let start = slot as usize * k;
                    for &idx in &self.memo[start..start + k] {
                        self.sram.prefetch(idx);
                    }
                }
                probe
            });
        }
        self.base_buf = bases;
    }

    /// Construction phase for **flow volume**: one packet of `flow`
    /// carrying `units` (typically its byte length). The paper counts
    /// "either packets or bytes" in the same structure (§3.1); queries
    /// then estimate total units instead of packet counts.
    ///
    /// # Panics
    /// Panics if called after [`Caesar::finish`].
    pub fn record_weighted(&mut self, flow: u64, units: u64) {
        assert!(!self.finished, "record_weighted() after finish(): the sketch is read-only");
        // Reuse the eviction buffer; a single weighted packet can spill
        // several entry-capacity chunks.
        let mut evs = std::mem::take(&mut self.ev_buf);
        evs.clear();
        let k = self.cfg.k;
        if let Some(r) = self.cache.record_weighted_slotted(flow, units, &mut evs) {
            let start = r.slot as usize * k;
            // A replacement eviction (previous occupant, emitted first)
            // consumes the slot's old memo row; the new flow's row is
            // written before its own overflow evictions are spread.
            let mut refreshed = !r.inserted;
            for &ev in &evs {
                if !refreshed && ev.flow == flow {
                    self.kmap.fill_indices(flow, &mut self.memo[start..start + k]);
                    refreshed = true;
                }
                debug_assert_eq!(self.memo[start..start + k], self.kmap.indices(ev.flow)[..]);
                self.spread_row(start, ev.value);
            }
            if !refreshed {
                self.kmap.fill_indices(flow, &mut self.memo[start..start + k]);
            }
        }
        self.ev_buf = evs;
    }

    /// End of measurement: dump all cache entries to SRAM (§3.1). Safe
    /// to call more than once; only the first call does work.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        // Streaming drain: each dumped entry's memoized row replaces
        // the per-eviction re-hash; emission order (and hence the RNG
        // draw order) is identical to `cache.drain()`.
        let Self { cache, sram, memo, rng, kmap, cfg, evictions, sram_writes, .. } = self;
        let k = cfg.k;
        cache.drain_with(|slot, ev| {
            let start = slot as usize * k;
            let row = &memo[start..start + k];
            debug_assert_eq!(row, &kmap.indices(ev.flow)[..]);
            *sram_writes += spread_eviction(sram, row, ev.value, rng);
            *evictions += 1;
        });
        self.finished = true;
    }

    /// True once [`Caesar::finish`] ran.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The estimator parameters at the current state.
    pub fn params(&self) -> EstimateParams {
        EstimateParams {
            k: self.cfg.k,
            y: self.cfg.entry_capacity,
            counters: self.cfg.counters,
            total_packets: self.sram.total_added(),
        }
    }

    /// The raw values of `flow`'s `k` mapped counters.
    pub fn counters_of(&self, flow: u64) -> Vec<u64> {
        self.kmap
            .indices(flow)
            .into_iter()
            .map(|i| self.sram.get(i))
            .collect()
    }

    /// Query phase (§3.2) with an explicit estimator choice. Call
    /// [`Caesar::finish`] first or residual cache contents will be
    /// missing from the estimate.
    pub fn estimate(&self, flow: u64, estimator: Estimator) -> Estimate {
        let w = self.counters_of(flow);
        let params = self.params();
        match estimator {
            Estimator::Csm => csm::estimate(&w, &params),
            Estimator::Mlm => mlm::estimate(&w, &params),
        }
    }

    /// Estimated size of `flow` using the configured default estimator,
    /// clamped to physically possible (non-negative) sizes.
    pub fn query(&self, flow: u64) -> f64 {
        self.estimate(flow, self.cfg.estimator).clamped()
    }

    /// Estimate plus the `alpha`-reliability confidence interval
    /// (Eqs. 26/32).
    ///
    /// **Caveat** (erratum E2, DESIGN.md): the paper's model variance
    /// omits the counter-selection noise, so these intervals are far
    /// too narrow under heavy-tailed traffic. Use
    /// [`Caesar::query_with_empirical_ci`] for intervals calibrated
    /// from the observed counter distribution.
    pub fn query_with_ci(&self, flow: u64, alpha: f64) -> (f64, (f64, f64)) {
        let e = self.estimate(flow, self.cfg.estimator);
        (e.clamped(), e.confidence_interval(alpha))
    }

    /// Sample variance of the SRAM counter values — an empirical
    /// stand-in for the per-counter noise variance that the paper's
    /// model (Eq. 16) understates: a random counter's value *is* a
    /// draw from the marginal noise-plus-share distribution, selection
    /// term included.
    pub fn empirical_counter_variance(&self) -> f64 {
        let len = self.sram.len();
        let n = len as f64;
        let mean = (0..len).map(|i| self.sram.get(i) as f64).sum::<f64>() / n;
        (0..len)
            .map(|i| {
                let d = self.sram.get(i) as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n
    }

    /// CSM estimate with an **empirically calibrated** confidence
    /// interval: the variance of the counter sum is taken as `k` times
    /// the observed per-counter variance instead of the paper's model
    /// value. For mice (whose own share is negligible next to the
    /// noise) the coverage is close to nominal; for elephants the
    /// interval is conservative (their own mass inflates the pooled
    /// variance).
    pub fn query_with_empirical_ci(&self, flow: u64, alpha: f64) -> (f64, (f64, f64)) {
        let mut e = self.estimate(flow, Estimator::Csm);
        e.variance = self.cfg.k as f64 * self.empirical_counter_variance();
        (e.clamped(), e.confidence_interval(alpha))
    }

    /// Run statistics.
    pub fn stats(&self) -> CaesarStats {
        CaesarStats {
            cache: self.cache.stats(),
            sram: self.sram.stats(),
            evictions: self.evictions,
            sram_writes: self.sram_writes,
        }
    }

    /// Borrow the SRAM backing (read-only diagnostics / sweeps).
    pub fn sram(&self) -> &B {
        &self.sram
    }
}

impl<B: SramBacking + CounterView> CaesarCore<B> {
    /// Batch query (§3.2 at scale): evaluate `estimator` for every
    /// flow in `flows` with the zero-alloc batch engine
    /// ([`crate::query::estimate_all`]), sequentially. Results are
    /// bit-identical to calling [`CaesarCore::estimate`] per flow.
    pub fn estimate_all(&self, flows: &[u64], estimator: Estimator) -> Vec<Estimate> {
        self.estimate_all_threads(flows, estimator, 1)
    }

    /// [`CaesarCore::estimate_all`] with up to `threads` workers
    /// (resolved against the host's available parallelism). Output
    /// order matches `flows` and is bit-identical at every thread
    /// count.
    pub fn estimate_all_threads(
        &self,
        flows: &[u64],
        estimator: Estimator,
        threads: usize,
    ) -> Vec<Estimate> {
        crate::query::estimate_all(&self.kmap, &self.sram, &self.params(), estimator, flows, threads)
    }

    /// Clamped default-estimator sizes for a whole flow table — the
    /// batch counterpart of [`CaesarCore::query`].
    pub fn query_all(&self, flows: &[u64]) -> Vec<f64> {
        self.estimate_all(flows, self.cfg.estimator)
            .into_iter()
            .map(|e| e.clamped())
            .collect()
    }
}

impl Caesar {
    /// Merge another **finished** sketch with the **same configuration
    /// and seed** into this one — the distributed-collector operation:
    /// several taps measure disjoint packet streams with identical
    /// hash mappings, then the counter arrays are summed and queried
    /// as one.
    ///
    /// # Panics
    /// Panics if either sketch is unfinished or the configurations
    /// (including seeds — the hash mappings must match) differ.
    pub fn merge(&mut self, other: &Caesar) {
        assert!(
            self.finished && other.finished,
            "merge requires both sketches to be finished"
        );
        let a = self.cfg;
        let b = other.cfg;
        assert!(
            a.counters == b.counters
                && a.k == b.k
                && a.entry_capacity == b.entry_capacity
                && a.counter_bits == b.counter_bits
                && a.seed == b.seed,
            "merge requires identical geometry and seed"
        );
        self.sram.merge(&other.sram);
        self.evictions += other.evictions;
        self.sram_writes += other.sram_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::CachePolicy;

    fn small_cfg() -> CaesarConfig {
        CaesarConfig {
            cache_entries: 64,
            entry_capacity: 8,
            counters: 4096,
            k: 3,
            ..CaesarConfig::default()
        }
    }

    #[test]
    fn single_flow_exact_recovery() {
        // One flow, no sharing noise: CSM must recover the size almost
        // exactly (the only "noise" subtracted is the flow itself).
        let mut c = Caesar::new(small_cfg());
        for _ in 0..1000 {
            c.record(7);
        }
        c.finish();
        // n == x: noise subtraction removes k·x/L ≈ 0.7.
        let est = c.query(7);
        assert!((est - 1000.0).abs() < 5.0, "est = {est}");
    }

    #[test]
    fn conservation_into_sram() {
        let mut c = Caesar::new(small_cfg());
        for i in 0..5000u64 {
            c.record(i % 97);
        }
        c.finish();
        assert_eq!(c.sram().total_added(), 5000);
        assert_eq!(c.sram().sum(), 5000);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut c = Caesar::new(small_cfg());
        c.record(1);
        c.finish();
        let n1 = c.sram().total_added();
        c.finish();
        assert_eq!(c.sram().total_added(), n1);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn record_after_finish_panics() {
        let mut c = Caesar::new(small_cfg());
        c.finish();
        c.record(1);
    }

    #[test]
    fn unseen_flow_estimates_near_zero() {
        let mut c = Caesar::new(small_cfg());
        for i in 0..2000u64 {
            c.record(i % 50);
        }
        c.finish();
        // A flow that never appeared reads only sharing noise.
        let est = c.query(0xFFFF_FFFF);
        assert!(est < 40.0, "est = {est}");
    }

    #[test]
    fn estimates_unbiased_over_many_flows() {
        // 200 flows of 64 packets each; the mean signed error of CSM
        // must be near zero (unbiasedness, Eq. 21).
        let mut c = Caesar::new(CaesarConfig {
            cache_entries: 32, // force heavy replacement churn
            ..small_cfg()
        });
        let flows: Vec<u64> = (0..200).collect();
        for _round in 0..64 {
            for &f in &flows {
                c.record(f);
            }
        }
        c.finish();
        let mean_err: f64 = flows
            .iter()
            .map(|&f| c.estimate(f, Estimator::Csm).value - 64.0)
            .sum::<f64>()
            / flows.len() as f64;
        assert!(mean_err.abs() < 2.0, "mean signed error = {mean_err}");
    }

    #[test]
    fn csm_and_mlm_agree_on_large_flows() {
        let mut c = Caesar::new(small_cfg());
        for _ in 0..10_000 {
            c.record(1);
        }
        for i in 0..2000u64 {
            c.record(100 + i % 40);
        }
        c.finish();
        let csm = c.estimate(1, Estimator::Csm).value;
        let mlm = c.estimate(1, Estimator::Mlm).value;
        assert!(
            (csm - mlm).abs() / csm < 0.05,
            "CSM {csm} vs MLM {mlm} diverge"
        );
    }

    #[test]
    fn empirical_ci_is_wider_than_model_ci_under_sharing() {
        // Many flows with a heavy spread: the empirical interval must
        // dominate the paper's model interval (erratum E2).
        let mut c = Caesar::new(CaesarConfig {
            cache_entries: 64,
            entry_capacity: 8,
            counters: 512,
            k: 3,
            ..CaesarConfig::default()
        });
        for f in 0..200u64 {
            let size = if f % 20 == 0 { 2000 } else { 5 };
            for _ in 0..size {
                c.record(f);
            }
        }
        c.finish();
        let (_, (mlo, mhi)) = c.query_with_ci(3, 0.95);
        let (_, (elo, ehi)) = c.query_with_empirical_ci(3, 0.95);
        assert!(ehi - elo > mhi - mlo, "empirical {} vs model {}", ehi - elo, mhi - mlo);
        assert!(c.empirical_counter_variance() > 0.0);
    }

    #[test]
    fn ci_brackets_point_estimate() {
        let mut c = Caesar::new(small_cfg());
        for _ in 0..500 {
            c.record(3);
        }
        c.finish();
        let (est, (lo, hi)) = c.query_with_ci(3, 0.95);
        assert!(lo <= est && est <= hi);
    }

    #[test]
    fn random_policy_also_works() {
        let mut c = Caesar::new(CaesarConfig {
            policy: CachePolicy::Random,
            cache_entries: 16,
            ..small_cfg()
        });
        for i in 0..3000u64 {
            c.record(i % 40);
        }
        c.finish();
        let est = c.query(0);
        assert!((est - 75.0).abs() < 40.0, "est = {est}");
    }

    #[test]
    fn merge_of_disjoint_streams_queries_as_one() {
        // Two taps each see half of each flow's packets; the merged
        // sketch must estimate the totals.
        let mut a = Caesar::new(small_cfg());
        let mut b = Caesar::new(small_cfg());
        for i in 0..4000u64 {
            let flow = i % 20;
            if i % 2 == 0 {
                a.record(flow);
            } else {
                b.record(flow);
            }
        }
        a.finish();
        b.finish();
        a.merge(&b);
        assert_eq!(a.sram().total_added(), 4000);
        let est = a.query(3);
        assert!((est - 200.0).abs() < 30.0, "est = {est}");
    }

    #[test]
    #[should_panic(expected = "finished")]
    fn merge_requires_finish() {
        let mut a = Caesar::new(small_cfg());
        let b = Caesar::new(small_cfg());
        a.finish();
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "identical geometry")]
    fn merge_rejects_mismatched_seed() {
        let mut a = Caesar::new(small_cfg());
        let mut b = Caesar::new(CaesarConfig { seed: 999, ..small_cfg() });
        a.finish();
        b.finish();
        a.merge(&b);
    }

    #[test]
    fn weighted_volume_recovery() {
        // Flow-volume mode: one flow sends 500 packets of 1000 bytes.
        let mut c = Caesar::new(CaesarConfig {
            entry_capacity: 2 * 27_000, // y scaled to byte units
            ..small_cfg()
        });
        for _ in 0..500 {
            c.record_weighted(7, 1000);
        }
        for i in 0..100u64 {
            c.record_weighted(100 + i, 300);
        }
        c.finish();
        let est = c.query(7);
        assert!(
            (est - 500_000.0).abs() / 500_000.0 < 0.02,
            "volume estimate = {est}"
        );
    }

    #[test]
    fn weighted_conserves_units() {
        let mut c = Caesar::new(small_cfg());
        let mut total = 0u64;
        for i in 0..2_000u64 {
            let w = i % 97 + 1;
            total += w;
            c.record_weighted(i % 31, w);
        }
        c.finish();
        assert_eq!(c.sram().total_added(), total);
    }

    #[test]
    fn stats_report_consistent_accounting() {
        let mut c = Caesar::new(small_cfg());
        for i in 0..1000u64 {
            c.record(i % 10);
        }
        c.finish();
        let st = c.stats();
        assert_eq!(st.cache.packets(), 1000);
        assert_eq!(st.evictions, st.cache.total_evictions());
        assert!(st.sram_writes <= st.evictions * 3);
        assert_eq!(st.sram.total_added, 1000);
    }
}
