//! Bit-packed counter storage.
//!
//! The paper's memory accounting (`SRAM = L·log2(l)/8192` KB) assumes
//! counters are packed back-to-back at exactly `log2(l)` bits. The
//! simulator's hot path uses one machine word per counter
//! ([`crate::CounterArray`]) for speed; this module provides the
//! hardware-faithful packed layout with the same semantics, so the
//! byte-for-byte memory claims can be verified and the two layouts can
//! be property-tested against each other.

/// A counter array storing `len` counters of exactly `bits` bits each,
/// packed contiguously into 64-bit words (counters may straddle word
/// boundaries).
/// ```
/// use caesar::PackedCounterArray;
/// let mut a = PackedCounterArray::new(100, 13); // 13-bit counters
/// a.add(7, 1000);
/// assert_eq!(a.get(7), 1000);
/// assert_eq!(a.memory_bytes(), (100 * 13 + 7) / 8);
/// ```
#[derive(Debug, Clone)]
pub struct PackedCounterArray {
    words: Vec<u64>,
    len: usize,
    bits: u32,
    max_value: u64,
    saturations: u64,
    total_added: u64,
    /// Write accesses performed — same tally as
    /// [`crate::CounterArray`]'s, so a packed-backed build reports
    /// identical [`CounterArrayStats`](crate::sram::CounterArrayStats)
    /// to a word-backed one (the parity suite pins it).
    accesses: u64,
    /// Dirty-block bitmap, same layout and semantics as
    /// [`crate::CounterArray`]'s (one bit per
    /// [`DIRTY_BLOCK_COUNTERS`](crate::sram::DIRTY_BLOCK_COUNTERS)
    /// counters, independent of the packed word layout).
    dirty: Vec<u64>,
}

impl PackedCounterArray {
    /// `len` counters of `bits` bits, all zero.
    ///
    /// # Panics
    /// Panics if `len == 0` or `bits` is outside `1..=63`.
    pub fn new(len: usize, bits: u32) -> Self {
        assert!(len > 0, "counter array cannot be empty");
        assert!((1..=63).contains(&bits), "counter bits must be in 1..=63");
        let total_bits = len as u64 * bits as u64;
        let words = total_bits.div_ceil(64) as usize;
        Self {
            words: vec![0; words],
            len,
            bits,
            max_value: (1u64 << bits) - 1,
            saturations: 0,
            total_added: 0,
            accesses: 0,
            dirty: vec![0; crate::sram::dirty_words_for(len)],
        }
    }

    /// Mark the block holding counter `idx` dirty.
    #[inline(always)]
    fn mark_dirty(&mut self, idx: usize) {
        let block = idx >> crate::sram::DIRTY_BLOCK_SHIFT;
        let bit = 1u64 << (block & 63);
        let word = &mut self.dirty[block >> 6];
        if *word & bit == 0 {
            *word |= bit;
        }
    }

    /// Drain the dirty-block bitmap — see
    /// [`crate::CounterArray::take_dirty_blocks`] for the contract.
    pub fn take_dirty_blocks(&mut self) -> Vec<usize> {
        crate::sram::drain_dirty_words(&mut self.dirty)
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array has no counters (never: `new` forbids it).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per counter.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Maximum storable value `l`.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// Exact storage footprint in bytes (the paper's SRAM size).
    pub fn memory_bytes(&self) -> usize {
        // Count the packed bits, not the Vec<u64> slack.
        (self.len * self.bits as usize).div_ceil(8)
    }

    /// Read counter `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> u64 {
        assert!(idx < self.len, "counter index {idx} out of range {}", self.len);
        let bit = idx as u64 * self.bits as u64;
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        let lo = self.words[word] >> off;
        let have = 64 - off;
        let v = if have >= self.bits {
            lo
        } else {
            lo | (self.words[word + 1] << have)
        };
        v & self.max_value
    }

    fn set(&mut self, idx: usize, v: u64) {
        debug_assert!(v <= self.max_value);
        let bit = idx as u64 * self.bits as u64;
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        let mask = self.max_value;
        self.words[word] &= !(mask << off);
        self.words[word] |= v << off;
        let have = 64 - off;
        if have < self.bits {
            let hi_bits = self.bits - have;
            let hi_mask = (1u64 << hi_bits) - 1;
            self.words[word + 1] &= !hi_mask;
            self.words[word + 1] |= v >> have;
        }
    }

    /// Add `v` to counter `idx`, saturating at the counter capacity.
    /// The offered-units total is a wrapping tally (the same semantics
    /// as [`crate::AtomicCounterArray::add`]).
    pub fn add(&mut self, idx: usize, v: u64) {
        self.accesses += 1;
        self.total_added = self.total_added.wrapping_add(v);
        self.mark_dirty(idx);
        let cur = self.get(idx);
        let room = self.max_value - cur;
        if v > room {
            self.set(idx, self.max_value);
            self.saturations += 1;
        } else {
            self.set(idx, cur + v);
        }
    }

    /// Apply a batch of `(index, increment)` updates — the packed
    /// mirror of [`crate::AtomicCounterArray::add_batch`]: the
    /// offered-units total is accumulated once for the whole batch
    /// (wrapping, exactly like repeated [`PackedCounterArray::add`]
    /// tallies would), zero increments are skipped, and duplicate
    /// indices are legal. Equivalent to
    /// `for &(i, v) in updates { self.add(i, v) }` for every
    /// observable value (pinned against the plain word-per-counter
    /// [`crate::CounterArray`] by property test).
    pub fn add_batch(&mut self, updates: &[(usize, u64)]) {
        let mut batch_total = 0u64;
        for &(_, v) in updates {
            batch_total = batch_total.wrapping_add(v);
        }
        self.total_added = self.total_added.wrapping_add(batch_total);
        self.accesses += updates.len() as u64;
        for &(idx, v) in updates {
            // A zero add still marks its block, exactly like the word
            // array's `add_batch` (dirtiness over-approximates).
            self.mark_dirty(idx);
            if v == 0 {
                continue;
            }
            let cur = self.get(idx);
            let room = self.max_value - cur;
            if v > room {
                self.set(idx, self.max_value);
                self.saturations += 1;
            } else {
                self.set(idx, cur + v);
            }
        }
    }

    /// Apply one eviction's coalesced per-counter increments — the
    /// packed mirror of [`crate::CounterArray::add_spread`]: every
    /// **nonzero** `incs[slot]` is added (one access tallied) to
    /// counter `indices[slot]` in slot order; returns the number of
    /// counters written.
    ///
    /// # Panics
    /// Panics if `incs` is shorter than `indices` or an index is out
    /// of bounds.
    #[inline]
    pub fn add_spread(&mut self, indices: &[usize], incs: &[u64]) -> u64 {
        let mut writes = 0u64;
        for (&idx, &inc) in indices.iter().zip(&incs[..indices.len()]) {
            if inc > 0 {
                self.add(idx, inc);
                writes += 1;
            }
        }
        writes
    }

    /// Software-prefetch the word holding counter `idx`'s low bits
    /// (no-op when out of bounds or on non-x86 targets).
    #[inline]
    pub fn prefetch(&self, idx: usize) {
        if idx < self.len {
            let word = (idx as u64 * self.bits as u64 / 64) as usize;
            support::mem::prefetch_index(&self.words, word);
        }
    }

    /// Sum over all counters.
    pub fn sum(&self) -> u64 {
        (0..self.len).map(|i| self.get(i)).sum()
    }

    /// Total units offered.
    pub fn total_added(&self) -> u64 {
        self.total_added
    }

    /// Saturating adds that lost precision.
    pub fn saturations(&self) -> u64 {
        self.saturations
    }

    /// Write accesses performed (one per [`PackedCounterArray::add`],
    /// one per batch entry).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Fraction of counters pinned at the capacity `l` (see
    /// [`crate::CounterArray::saturated_fraction`]).
    pub fn saturated_fraction(&self) -> f64 {
        let sat = (0..self.len)
            .filter(|&i| self.get(i) >= self.max_value)
            .count();
        sat as f64 / self.len as f64
    }

    /// Array statistics in the common
    /// [`CounterArrayStats`](crate::sram::CounterArrayStats) shape.
    pub fn stats(&self) -> crate::sram::CounterArrayStats {
        crate::sram::CounterArrayStats {
            len: self.len,
            bits: self.bits,
            saturations: self.saturations,
            total_added: self.total_added,
            accesses: self.accesses,
            zeros: (0..self.len).filter(|&i| self.get(i) == 0).count(),
        }
    }
}

impl crate::sram::SramBacking for PackedCounterArray {
    fn new_backing(len: usize, bits: u32) -> Self {
        PackedCounterArray::new(len, bits)
    }

    #[inline]
    fn add(&mut self, idx: usize, v: u64) {
        PackedCounterArray::add(self, idx, v);
    }

    #[inline]
    fn add_spread(&mut self, indices: &[usize], incs: &[u64]) -> u64 {
        PackedCounterArray::add_spread(self, indices, incs)
    }

    fn add_batch(&mut self, updates: &[(usize, u64)]) {
        PackedCounterArray::add_batch(self, updates);
    }

    #[inline]
    fn get(&self, idx: usize) -> u64 {
        PackedCounterArray::get(self, idx)
    }

    #[inline]
    fn prefetch(&self, idx: usize) {
        PackedCounterArray::prefetch(self, idx);
    }

    fn len(&self) -> usize {
        PackedCounterArray::len(self)
    }

    fn max_value(&self) -> u64 {
        PackedCounterArray::max_value(self)
    }

    fn sum(&self) -> u64 {
        PackedCounterArray::sum(self)
    }

    fn total_added(&self) -> u64 {
        PackedCounterArray::total_added(self)
    }

    fn stats(&self) -> crate::sram::CounterArrayStats {
        PackedCounterArray::stats(self)
    }

    fn saturated_fraction(&self) -> f64 {
        PackedCounterArray::saturated_fraction(self)
    }

    fn take_dirty_blocks(&mut self) -> Vec<usize> {
        PackedCounterArray::take_dirty_blocks(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::CounterArray;

    #[test]
    fn straddling_counters_roundtrip() {
        // 13-bit counters guarantee word straddles.
        let mut a = PackedCounterArray::new(100, 13);
        for i in 0..100 {
            a.add(i, (i as u64 * 37) % 8192);
        }
        for i in 0..100 {
            assert_eq!(a.get(i), (i as u64 * 37) % 8192, "counter {i}");
        }
    }

    #[test]
    fn neighbours_do_not_clobber() {
        let mut a = PackedCounterArray::new(10, 7);
        a.add(3, 100);
        a.add(4, 27);
        a.add(2, 1);
        assert_eq!(a.get(3), 100);
        assert_eq!(a.get(4), 27);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(5), 0);
    }

    #[test]
    fn saturation() {
        let mut a = PackedCounterArray::new(3, 4);
        a.add(1, 20);
        assert_eq!(a.get(1), 15);
        assert_eq!(a.saturations(), 1);
        assert_eq!(a.total_added(), 20);
    }

    #[test]
    fn memory_accounting_is_exact() {
        // 23,437 counters × 32 bits = 91.55 KB (the paper's Fig. 4 budget).
        let a = PackedCounterArray::new(23_437, 32);
        let kb = a.memory_bytes() as f64 / 1024.0;
        assert!((kb - 91.55).abs() < 0.01, "kb = {kb}");
        // 5-bit counters actually take 5/8 byte each.
        let b = PackedCounterArray::new(8, 5);
        assert_eq!(b.memory_bytes(), 5);
    }

    #[test]
    fn equivalent_to_word_array() {
        // Same operation stream against both layouts.
        let mut packed = PackedCounterArray::new(57, 11);
        let mut plain = CounterArray::new(57, 11);
        let mut x = 5u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let idx = (x % 57) as usize;
            let v = (x >> 32) % 40;
            packed.add(idx, v);
            plain.add(idx, v);
        }
        for i in 0..57 {
            assert_eq!(packed.get(i), plain.get(i), "counter {i}");
        }
        assert_eq!(packed.sum(), plain.sum());
        assert_eq!(packed.total_added(), plain.total_added());
    }

    #[test]
    fn one_bit_counters() {
        let mut a = PackedCounterArray::new(130, 1);
        a.add(0, 1);
        a.add(64, 1);
        a.add(129, 5); // saturates at 1
        assert_eq!(a.get(0), 1);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(64), 1);
        assert_eq!(a.get(129), 1);
        assert_eq!(a.sum(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        PackedCounterArray::new(4, 8).get(4);
    }

    #[test]
    fn dirty_blocks_match_word_array_semantics() {
        use crate::sram::DIRTY_BLOCK_COUNTERS;
        let mut a = PackedCounterArray::new(DIRTY_BLOCK_COUNTERS * 3, 11);
        assert!(a.take_dirty_blocks().is_empty());
        a.add(1, 7);
        a.add(DIRTY_BLOCK_COUNTERS * 2 + 5, 9);
        assert_eq!(a.take_dirty_blocks(), vec![0, 2]);
        a.add_batch(&[(DIRTY_BLOCK_COUNTERS, 0), (2, 4)]);
        assert_eq!(a.take_dirty_blocks(), vec![0, 1]);
        assert!(a.take_dirty_blocks().is_empty());
    }

    #[test]
    fn add_batch_matches_repeated_add() {
        let mut batched = PackedCounterArray::new(8, 10);
        let mut looped = PackedCounterArray::new(8, 10);
        let updates: Vec<(usize, u64)> =
            vec![(0, 3), (1, 0), (7, 2000), (0, 5), (7, 200), (3, 1), (0, 2)];
        batched.add_batch(&updates);
        for &(i, v) in &updates {
            looped.add(i, v);
        }
        for i in 0..8 {
            assert_eq!(batched.get(i), looped.get(i), "counter {i}");
        }
        assert_eq!(batched.total_added(), looped.total_added());
        assert_eq!(batched.saturations(), looped.saturations());
        assert_eq!(batched.sum(), looped.sum());
    }

    #[test]
    fn add_batch_empty_and_zeroes_are_noops() {
        let mut a = PackedCounterArray::new(4, 8);
        a.add_batch(&[]);
        a.add_batch(&[(0, 0), (3, 0)]);
        assert_eq!(a.total_added(), 0);
        assert_eq!(a.sum(), 0);
        assert_eq!(a.saturations(), 0);
    }

    #[test]
    fn batched_adds_match_plain_counter_array_under_saturation() {
        // Property pin (randomized): packed batched adds ≡ plain
        // word-per-counter adds for every observable value, across
        // straddling widths and narrow saturating counters.
        use support::rand::Rng;
        use support::testkit::for_each_seed_n;
        for_each_seed_n(32, |rng| {
            let len = rng.gen_range(1..97usize);
            // Narrow widths force frequent saturation; odd widths force
            // word straddles.
            let bits = rng.gen_range(1..17u32);
            let mut packed = PackedCounterArray::new(len, bits);
            let mut plain = CounterArray::new(len, bits);
            for _batch in 0..rng.gen_range(1..8usize) {
                let updates: Vec<(usize, u64)> = (0..rng.gen_range(0..64usize))
                    .map(|_| {
                        (
                            rng.gen_range(0..len),
                            rng.gen_range(0..(3u64 << bits.min(32))),
                        )
                    })
                    .collect();
                packed.add_batch(&updates);
                for &(i, v) in &updates {
                    plain.add(i, v);
                }
            }
            for i in 0..len {
                assert_eq!(
                    packed.get(i),
                    plain.get(i),
                    "len {len} bits {bits} counter {i}"
                );
            }
            assert_eq!(packed.sum(), plain.sum());
            assert_eq!(packed.total_added(), plain.total_added());
        });
    }
}
