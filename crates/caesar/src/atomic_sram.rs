//! Lock-free shared SRAM counter array.
//!
//! The off-chip counter array is the only state the sharded
//! construction phase shares, and its one operation — saturating add —
//! commutes, so plain relaxed atomics suffice: no ordering is needed
//! between adds, and the `crossbeam::scope` join provides the
//! happens-before edge that makes the final values visible to the
//! query phase. (See the "Rust Atomics and Locks" guidance: use the
//! weakest ordering the algorithm admits.)

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-width saturating counter array with interior mutability.
#[derive(Debug)]
pub struct AtomicCounterArray {
    counters: Vec<AtomicU64>,
    max_value: u64,
    bits: u32,
    total_added: AtomicU64,
    saturations: AtomicU64,
}

impl AtomicCounterArray {
    /// `len` counters of `bits` bits, all zero.
    ///
    /// # Panics
    /// Panics if `len == 0` or `bits` is outside `1..=63`.
    pub fn new(len: usize, bits: u32) -> Self {
        assert!(len > 0, "counter array cannot be empty");
        assert!((1..=63).contains(&bits), "counter bits must be in 1..=63");
        Self {
            counters: (0..len).map(|_| AtomicU64::new(0)).collect(),
            max_value: (1u64 << bits) - 1,
            bits,
            total_added: AtomicU64::new(0),
            saturations: AtomicU64::new(0),
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when the array has no counters (never: `new` forbids it).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Bits per counter.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Maximum storable value `l`.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// Saturating add of `v` to counter `idx`, callable from any
    /// thread concurrently.
    pub fn add(&self, idx: usize, v: u64) {
        if v == 0 {
            return;
        }
        self.total_added.fetch_add(v, Ordering::Relaxed);
        let c = &self.counters[idx];
        // CAS loop: fetch_add alone could overshoot the saturation cap.
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v).min(self.max_value);
            match c.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    if next == self.max_value && cur + v > self.max_value {
                        self.saturations.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Read counter `idx`.
    pub fn get(&self, idx: usize) -> u64 {
        self.counters[idx].load(Ordering::Relaxed)
    }

    /// Sum over all counters.
    pub fn sum(&self) -> u64 {
        self.counters.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total units offered (the estimators' `n`).
    pub fn total_added(&self) -> u64 {
        self.total_added.load(Ordering::Relaxed)
    }

    /// Saturating adds that lost precision.
    pub fn saturations(&self) -> u64 {
        self.saturations.load(Ordering::Relaxed)
    }

    /// Copy out the counter values.
    pub fn snapshot(&self) -> Vec<u64> {
        self.counters.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let a = AtomicCounterArray::new(4, 32);
        a.add(1, 5);
        a.add(1, 7);
        a.add(3, 1);
        assert_eq!(a.get(1), 12);
        assert_eq!(a.sum(), 13);
        assert_eq!(a.total_added(), 13);
    }

    #[test]
    fn saturates_without_overshoot() {
        let a = AtomicCounterArray::new(1, 4); // max 15
        a.add(0, 10);
        a.add(0, 10);
        assert_eq!(a.get(0), 15);
        assert_eq!(a.saturations(), 1);
        assert_eq!(a.total_added(), 20);
    }

    #[test]
    fn zero_add_is_noop() {
        let a = AtomicCounterArray::new(2, 8);
        a.add(0, 0);
        assert_eq!(a.total_added(), 0);
    }

    #[test]
    fn concurrent_adds_conserve() {
        let a = AtomicCounterArray::new(64, 63);
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let a = &a;
                s.spawn(move || {
                    for i in 0..per_thread {
                        a.add(((t as u64 * 31 + i) % 64) as usize, 1);
                    }
                });
            }
        });
        assert_eq!(a.sum(), threads as u64 * per_thread);
        assert_eq!(a.total_added(), threads as u64 * per_thread);
    }

    #[test]
    fn snapshot_matches_gets() {
        let a = AtomicCounterArray::new(8, 16);
        for i in 0..8 {
            a.add(i, i as u64 * 3);
        }
        let snap = a.snapshot();
        for (i, &v) in snap.iter().enumerate() {
            assert_eq!(v, a.get(i));
        }
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_rejected() {
        AtomicCounterArray::new(0, 8);
    }
}
