//! Lock-free shared SRAM counter array.
//!
//! The off-chip counter array is the only state the sharded
//! construction phase shares, and its one operation — saturating add —
//! commutes, so plain relaxed atomics suffice: no ordering is needed
//! between adds, and the `crossbeam::scope` join provides the
//! happens-before edge that makes the final values visible to the
//! query phase. (See the "Rust Atomics and Locks" guidance: use the
//! weakest ordering the algorithm admits.)

use crate::merge::MergeError;
use crate::sram::{dirty_words_for, DIRTY_BLOCK_SHIFT};
use std::sync::atomic::{AtomicU64, Ordering};
use support::spsc::CachePadded;

/// One stripe of the shared tallies: the offered-units total and the
/// saturation count a group of writers (one shard, typically) charges.
///
/// Cache-line padded: before striping, every shard's writeback ended in
/// a `fetch_add` on *one* shared `total_added` word — a guaranteed
/// cache-line ping-pong that serialized otherwise independent flushes.
/// With one padded stripe per shard the RMWs land on private lines and
/// the aggregate is summed at read time (reads are the cold path).
#[derive(Debug, Default)]
struct Tally {
    total_added: AtomicU64,
    saturations: AtomicU64,
}

/// Fixed-width saturating counter array with interior mutability.
#[derive(Debug)]
pub struct AtomicCounterArray {
    counters: Vec<AtomicU64>,
    max_value: u64,
    bits: u32,
    /// Per-stripe tallies; writers pick a stripe (their shard id), the
    /// read accessors sum over all stripes.
    tallies: Box<[CachePadded<Tally>]>,
    /// Dirty-block bitmap (one bit per
    /// [`DIRTY_BLOCK_COUNTERS`](crate::sram::DIRTY_BLOCK_COUNTERS)
    /// counters). Writers test-then-or with relaxed atomics — within an
    /// epoch almost every write hits an already-set bit, so the hot
    /// path pays a load, not a locked RMW.
    dirty: Vec<AtomicU64>,
}

impl AtomicCounterArray {
    /// `len` counters of `bits` bits, all zero, with a single tally
    /// stripe (the sequential / few-writer shape).
    ///
    /// # Panics
    /// Panics if `len == 0` or `bits` is outside `1..=63`.
    pub fn new(len: usize, bits: u32) -> Self {
        Self::with_stripes(len, bits, 1)
    }

    /// `len` counters of `bits` bits with `stripes` cache-line-padded
    /// tally stripes — one per expected concurrent writer (shard), so
    /// the hot offered-units/saturation RMWs never contend.
    ///
    /// # Panics
    /// Panics if `len == 0`, `bits` is outside `1..=63`, or
    /// `stripes == 0`.
    pub fn with_stripes(len: usize, bits: u32, stripes: usize) -> Self {
        assert!(len > 0, "counter array cannot be empty");
        assert!((1..=63).contains(&bits), "counter bits must be in 1..=63");
        assert!(stripes >= 1, "need at least one tally stripe");
        Self {
            counters: (0..len).map(|_| AtomicU64::new(0)).collect(),
            max_value: (1u64 << bits) - 1,
            bits,
            tallies: (0..stripes).map(|_| CachePadded::<Tally>::default()).collect(),
            dirty: (0..dirty_words_for(len)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Mark the block holding counter `idx` dirty. Test-then-or: the
    /// locked RMW only fires the first time a block dirties between
    /// drains, so steady-state writes pay one relaxed load.
    #[inline(always)]
    fn mark_dirty(&self, idx: usize) {
        let block = idx >> DIRTY_BLOCK_SHIFT;
        let word = &self.dirty[block >> 6];
        let bit = 1u64 << (block & 63);
        if word.load(Ordering::Relaxed) & bit == 0 {
            word.fetch_or(bit, Ordering::Relaxed);
        }
    }

    /// Drain the dirty-block bitmap: ascending indices of every block
    /// written since the last drain, then mark everything clean. Same
    /// contract as [`crate::CounterArray::take_dirty_blocks`]
    /// (over-approximates change, never misses a changed counter) —
    /// **provided the caller drains at a quiescent point**: a writer
    /// racing the drain may have its mark consumed while its counter
    /// store lands after the caller reads the block, so the delta
    /// checkpoint machinery only drains at epoch boundaries, after the
    /// lane rings and writeback buffers have been flushed.
    pub fn take_dirty_blocks(&self) -> Vec<usize> {
        let mut blocks = Vec::new();
        for (w, word) in self.dirty.iter().enumerate() {
            let mut bits = word.swap(0, Ordering::Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                blocks.push(w * 64 + b);
                bits &= bits - 1;
            }
        }
        blocks
    }

    /// Overwrite counters `start .. start + values.len()` with absolute
    /// values (relaxed stores, no tallies, no dirty marks) — the block
    /// replay primitive of delta-checkpoint restore, where the values
    /// come from a frame that already carries the matching tallies and
    /// the rewritten state re-baselines the dirty bitmap.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or any value exceeds the
    /// `bits` cap (callers validate first to report typed errors).
    pub fn store_counters(&self, start: usize, values: &[u64]) {
        assert!(start + values.len() <= self.counters.len(), "block out of range");
        for (c, &v) in self.counters[start..].iter().zip(values) {
            assert!(v <= self.max_value, "stored counter exceeds {}-bit cap", self.bits);
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Overwrite the per-stripe tallies with pairs from
    /// [`AtomicCounterArray::tally_snapshot`] — the tally half of a
    /// delta-checkpoint replay.
    ///
    /// # Panics
    /// Panics if `tallies` does not match the stripe count.
    pub fn restore_tallies(&self, tallies: &[(u64, u64)]) {
        assert_eq!(tallies.len(), self.tallies.len(), "stripe count mismatch");
        for (t, &(added, sat)) in self.tallies.iter().zip(tallies) {
            t.total_added.store(added, Ordering::Relaxed);
            t.saturations.store(sat, Ordering::Relaxed);
        }
    }

    /// Number of tally stripes.
    pub fn stripes(&self) -> usize {
        self.tallies.len()
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when the array has no counters (never: `new` forbids it).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Bits per counter.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Maximum storable value `l`.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// Saturating add of `v` to counter `idx`, callable from any
    /// thread concurrently. Tallies charge stripe 0.
    pub fn add(&self, idx: usize, v: u64) {
        if v == 0 {
            return;
        }
        self.tallies[0].total_added.fetch_add(v, Ordering::Relaxed);
        self.add_counter(idx, v, 0);
    }

    /// The CAS half of [`AtomicCounterArray::add`]: saturate counter
    /// `idx` towards `cur + v` without touching the offered-units
    /// total; saturation events are charged to `stripe`.
    fn add_counter(&self, idx: usize, v: u64, stripe: usize) {
        self.mark_dirty(idx);
        let c = &self.counters[idx];
        // CAS loop: fetch_add alone could overshoot the saturation cap.
        let mut cur = c.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v).min(self.max_value);
            match c.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => {
                    // `cur + v` on raw u64s would wrap in release (and
                    // panic in debug) for byte-mode adds near u64::MAX;
                    // checked_add makes "overflowed u64" mean saturated.
                    let crossed =
                        cur.checked_add(v).is_none_or(|sum| sum > self.max_value);
                    if crossed {
                        self.tallies[stripe].saturations.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Apply a batch of `(index, increment)` updates with **one**
    /// shared-total RMW for the whole batch, then one CAS sequence per
    /// entry. Zero increments are skipped; duplicate indices are legal
    /// (callers wanting fewer CAS rounds should coalesce first — see
    /// [`WritebackBuffer`]). Equivalent to `for (i, v) in updates
    /// { self.add(i, v) }` for every observable value.
    pub fn add_batch(&self, updates: &[(usize, u64)]) {
        self.add_batch_striped(0, updates);
    }

    /// [`AtomicCounterArray::add_batch`] charging its tallies (the
    /// offered-units total and any saturation events) to tally stripe
    /// `stripe % stripes()` — the contention-free form for per-shard
    /// writeback: each shard's flush touches only its own padded tally
    /// line. Counter values are unaffected by the stripe choice.
    pub fn add_batch_striped(&self, stripe: usize, updates: &[(usize, u64)]) {
        let stripe = stripe % self.tallies.len();
        let mut batch_total = 0u64;
        for &(_, v) in updates {
            // The offered-units total is a u64 tally, not a saturating
            // counter; keep exact semantics identical to repeated `add`.
            batch_total = batch_total.wrapping_add(v);
        }
        if batch_total != 0 {
            self.tallies[stripe].total_added.fetch_add(batch_total, Ordering::Relaxed);
        }
        for &(idx, v) in updates {
            if v != 0 {
                self.add_counter(idx, v, stripe);
            }
        }
    }

    /// Read counter `idx`.
    pub fn get(&self, idx: usize) -> u64 {
        self.counters[idx].load(Ordering::Relaxed)
    }

    /// Software-prefetch the word holding counter `idx` (no-op when
    /// out of bounds or on non-x86 targets). A pure hint — no memory
    /// ordering effects.
    #[inline]
    pub fn prefetch(&self, idx: usize) {
        support::mem::prefetch_index(&self.counters, idx);
    }

    /// Sum over all counters.
    pub fn sum(&self) -> u64 {
        self.counters.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total units offered (the estimators' `n`), summed over tally
    /// stripes. Reads are the cold path; writers never share a stripe
    /// line, so this sum is the entire cost of striping.
    pub fn total_added(&self) -> u64 {
        self.tallies
            .iter()
            .map(|t| t.total_added.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Saturating adds that lost precision, summed over tally stripes.
    pub fn saturations(&self) -> u64 {
        self.tallies.iter().map(|t| t.saturations.load(Ordering::Relaxed)).sum()
    }

    /// Fraction of counters pinned at the capacity `l` (see
    /// [`crate::sram::CounterArray::saturated_fraction`]) — the
    /// per-workload saturation metric of the zoo sweeps.
    pub fn saturated_fraction(&self) -> f64 {
        let sat = self
            .counters
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) >= self.max_value)
            .count();
        sat as f64 / self.counters.len() as f64
    }

    /// Copy out the counter values.
    pub fn snapshot(&self) -> Vec<u64> {
        self.counters.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Copy out the per-stripe tallies as `(total_added, saturations)`
    /// pairs — the other half of a crash-consistent snapshot (counter
    /// words alone cannot reconstruct the offered-units total or the
    /// saturation count, both of which query-health reporting needs).
    pub fn tally_snapshot(&self) -> Vec<(u64, u64)> {
        self.tallies
            .iter()
            .map(|t| {
                (
                    t.total_added.load(Ordering::Relaxed),
                    t.saturations.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Rebuild an array from a snapshot: `counters` are the words from
    /// [`AtomicCounterArray::snapshot`], `tallies` the stripe pairs
    /// from [`AtomicCounterArray::tally_snapshot`]. The restored array
    /// is observationally identical to the original — same values,
    /// same totals, same stripe layout.
    ///
    /// # Panics
    /// Panics if `counters` is empty, `bits` is outside `1..=63`,
    /// `tallies` is empty, or any counter word exceeds the `bits` cap
    /// (a corrupted snapshot must not smuggle in unreachable values).
    pub fn restore(bits: u32, counters: &[u64], tallies: &[(u64, u64)]) -> Self {
        let arr = Self::with_stripes(counters.len(), bits, tallies.len());
        for (i, &v) in counters.iter().enumerate() {
            assert!(
                v <= arr.max_value,
                "snapshot counter {i} = {v} exceeds {}-bit cap",
                bits
            );
            arr.counters[i].store(v, Ordering::Relaxed);
        }
        for (i, &(added, sat)) in tallies.iter().enumerate() {
            arr.tallies[i].total_added.store(added, Ordering::Relaxed);
            arr.tallies[i].saturations.store(sat, Ordering::Relaxed);
        }
        arr
    }

    /// Saturation-aware merge: add `other`'s counters element-wise
    /// (clamping at `max_value`, counting each crossing as a
    /// saturation event on stripe 0) and fold its offered-units and
    /// saturation tallies. Rejects mismatched geometry with a typed
    /// [`MergeError`]. Stripe counts may differ — stripes are an
    /// ingest-side layout detail, not part of the sketch identity.
    pub fn merge_from(&self, other: &AtomicCounterArray) -> Result<(), MergeError> {
        if self.bits != other.bits {
            return Err(MergeError::Geometry {
                field: "counter_bits",
                ours: u64::from(self.bits),
                theirs: u64::from(other.bits),
            });
        }
        self.merge_counters(&other.snapshot(), other.total_added(), other.saturations())
    }

    /// The raw-slice half of [`AtomicCounterArray::merge_from`]: fold a
    /// frozen counter snapshot plus its producer's tallies into this
    /// array. This is what a wire-pushed [`crate::SketchPayload`]
    /// merges through — the producing array no longer exists on this
    /// node, only its values do.
    pub fn merge_counters(
        &self,
        counters: &[u64],
        total_added: u64,
        saturation_events: u64,
    ) -> Result<(), MergeError> {
        if self.counters.len() != counters.len() {
            return Err(MergeError::Geometry {
                field: "counters",
                ours: self.counters.len() as u64,
                theirs: counters.len() as u64,
            });
        }
        for (idx, &v) in counters.iter().enumerate() {
            if v > 0 {
                self.add_counter(idx, v, 0);
            }
        }
        self.tallies[0].total_added.fetch_add(total_added, Ordering::Relaxed);
        self.tallies[0].saturations.fetch_add(saturation_events, Ordering::Relaxed);
        Ok(())
    }

    /// The sparse form of [`AtomicCounterArray::merge_counters`]: fold
    /// `(index, increment)` pairs plus the producer's tally increments
    /// — what a wire-pushed [`crate::SketchDelta`] merges through.
    /// Saturation-aware exactly like the dense path (each clamp
    /// crossing is counted), so a delta-fed view degrades
    /// [`crate::QueryHealth`] identically to a full-push-fed one.
    pub fn merge_counters_sparse(
        &self,
        updates: &[(usize, u64)],
        total_added: u64,
        saturation_events: u64,
    ) -> Result<(), MergeError> {
        if let Some(&(idx, _)) = updates.iter().find(|&&(idx, _)| idx >= self.counters.len()) {
            return Err(MergeError::Geometry {
                field: "counters",
                ours: self.counters.len() as u64,
                theirs: idx as u64,
            });
        }
        for &(idx, v) in updates {
            if v > 0 {
                self.add_counter(idx, v, 0);
            }
        }
        self.tallies[0].total_added.fetch_add(total_added, Ordering::Relaxed);
        self.tallies[0].saturations.fetch_add(saturation_events, Ordering::Relaxed);
        Ok(())
    }

    /// Charge `events` saturation events to `stripe` without touching
    /// any counter word — the deterministic seam behind the
    /// `ForceSaturation` fault-injection site: it drives the
    /// saturation-degradation reporting path (query health flags, loss
    /// accounting) with zero effect on stored mass, so accounting
    /// invariants stay exact while the degraded path is exercised.
    pub fn force_saturation(&self, stripe: usize, events: u64) {
        self.tallies[stripe % self.tallies.len()]
            .saturations
            .fetch_add(events, Ordering::Relaxed);
    }
}

/// Plain-data snapshot of a [`WritebackBuffer`]'s staged-but-unflushed
/// state, captured by [`WritebackBuffer::state`] and consumed by
/// [`WritebackBuffer::restore`]. `pending` preserves first-touch order
/// so a restored buffer's next flush stages the identical batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritebackState {
    /// Staged `(counter index, pending increment)` pairs in
    /// first-touch (dirty-list) order.
    pub pending: Vec<(usize, u64)>,
    /// Auto-flush capacity (may be [`WRITEBACK_ACCUMULATE_ALL`]).
    pub capacity: usize,
    /// Tally stripe charged by flushes.
    pub stripe: usize,
    /// Lifetime flush count.
    pub flushes: u64,
    /// Lifetime staged-update count.
    pub staged_updates: u64,
    /// Lifetime flushed-update count.
    pub flushed_updates: u64,
}

/// Where a [`WritebackBuffer`] sends capacity-triggered flushes.
///
/// The concurrent construction path flushes into the shared
/// [`AtomicCounterArray`]; the packed-SRAM build runs its shard workers
/// against a length-only [`SegmentSink`] (its segments never auto-flush
/// — they use [`WRITEBACK_ACCUMULATE_ALL`] — and are merged into the
/// packed backing once, by [`WritebackBuffer::flush_into`]).
pub trait WritebackSink {
    /// Number of counters in the eventual flush target (sizes the
    /// buffer's dense accumulator).
    fn sink_len(&self) -> usize;
    /// Best-effort software prefetch of counter `idx`'s storage.
    fn sink_prefetch(&self, idx: usize);
    /// Apply a capacity-triggered flush of `wb`'s staged segment.
    fn receive_flush(&self, wb: &mut WritebackBuffer);
}

impl WritebackSink for AtomicCounterArray {
    fn sink_len(&self) -> usize {
        self.len()
    }

    #[inline]
    fn sink_prefetch(&self, idx: usize) {
        self.prefetch(idx);
    }

    fn receive_flush(&self, wb: &mut WritebackBuffer) {
        wb.flush(self);
    }
}

/// A length-only [`WritebackSink`] for **accumulate-all** segments
/// destined for a non-atomic backing: it cannot receive a flush, so it
/// must only be paired with buffers built with
/// [`WRITEBACK_ACCUMULATE_ALL`] capacity.
#[derive(Debug, Clone, Copy)]
pub struct SegmentSink {
    len: usize,
}

impl SegmentSink {
    /// A sink standing in for a backing of `len` counters.
    pub fn new(len: usize) -> Self {
        Self { len }
    }
}

impl WritebackSink for SegmentSink {
    fn sink_len(&self) -> usize {
        self.len
    }

    #[inline]
    fn sink_prefetch(&self, _idx: usize) {}

    fn receive_flush(&self, _wb: &mut WritebackBuffer) {
        panic!(
            "SegmentSink cannot receive auto-flushes; build the buffer \
             with WRITEBACK_ACCUMULATE_ALL and merge via flush_into"
        );
    }
}


/// Per-worker eviction writeback buffer: stages `(index, increment)`
/// updates in a dense thread-local accumulator, coalescing duplicates
/// as they arrive, and flushes them to a shared [`AtomicCounterArray`]
/// in batches.
///
/// Rationale (the PriMe / additive-error-counter amortization): in a
/// sharded construction phase every eviction touches `k` shared SRAM
/// counters, and hot counters are touched by many evictions in a row.
/// Staging updates thread-locally turns `B` relaxed-atomic RMWs into
/// one RMW per *distinct* counter per flush — plus a *single* RMW on
/// the shared offered-units total per flush instead of one per
/// eviction — so the CAS traffic on contended cache lines drops by the
/// coalescing factor.
///
/// The accumulator is a plain `Vec<u64>` indexed like the SRAM (lazily
/// sized to `sram.len()` on first push, so O(L) memory per worker — the
/// same order as the SRAM itself, and typically a few KiB) plus a dirty
/// list of touched indices. `push` is O(1) with no hashing or sorting:
/// repeated hits on a hot counter just bump a local word. `capacity`
/// bounds the number of *distinct* dirty counters between flushes, so a
/// hot counter enjoys an unbounded coalescing window while the staged
/// footprint stays bounded.
///
/// Because saturating adds commute, buffering and reordering never
/// change the final counter values; only the transient interleaving
/// differs. Callers must [`WritebackBuffer::flush`] before dropping the
/// buffer (the construction phase does so when a shard finishes).
#[derive(Debug)]
pub struct WritebackBuffer {
    /// Dense per-counter staging area, `acc[i]` = pending increment.
    acc: Vec<u64>,
    /// Indices with `acc[i] != 0`, in first-touch order.
    dirty: Vec<usize>,
    /// Reusable `(index, increment)` scratch handed to `add_batch`.
    batch: Vec<(usize, u64)>,
    capacity: usize,
    /// Tally stripe flushes charge (the owning shard's id).
    stripe: usize,
    flushes: u64,
    staged_updates: u64,
    flushed_updates: u64,
}

/// Default number of distinct dirty counters per flush: big enough to
/// amortize the shared-total RMW and give coalescing a window, small
/// enough that a shard's dirty working set stays in L1.
pub const DEFAULT_WRITEBACK_CAPACITY: usize = 1024;

/// Capacity sentinel for the **shard-local segment** shape: never
/// auto-flush, accumulate the shard's whole delta locally and merge it
/// into the shared array exactly once (at end of construction / epoch
/// boundary). The accumulator is already dense O(L) — the same order
/// as the SRAM itself — so "unbounded" costs no extra memory, and the
/// shared array sees **one** CAS sequence per distinct counter per
/// shard for the entire run.
pub const WRITEBACK_ACCUMULATE_ALL: usize = usize::MAX;

impl WritebackBuffer {
    /// A buffer that flushes automatically once `capacity` distinct
    /// counters are dirty (`capacity >= 1`; 0 is promoted to 1 =
    /// write-through), charging tallies to stripe 0.
    pub fn new(capacity: usize) -> Self {
        Self::striped(capacity, 0)
    }

    /// [`WritebackBuffer::new`] charging its flushes to tally stripe
    /// `stripe` of the target array (see
    /// [`AtomicCounterArray::add_batch_striped`]).
    pub fn striped(capacity: usize, stripe: usize) -> Self {
        let capacity = capacity.max(1);
        let reserve = capacity.min(DEFAULT_WRITEBACK_CAPACITY);
        Self {
            acc: Vec::new(),
            dirty: Vec::with_capacity(reserve),
            batch: Vec::with_capacity(reserve),
            capacity,
            stripe,
            flushes: 0,
            staged_updates: 0,
            flushed_updates: 0,
        }
    }

    /// Stage one update, flushing to `sink` if the dirty set is full.
    /// `sink` is the shared atomic array during concurrent
    /// construction, or a length-only [`SegmentSink`] when the segment
    /// is destined for a non-atomic [`SramBacking`] (the packed-SRAM
    /// build) — see [`WritebackSink`].
    pub fn push<S: WritebackSink + ?Sized>(&mut self, idx: usize, v: u64, sink: &S) {
        if v == 0 {
            return;
        }
        if self.acc.len() < sink.sink_len() {
            self.acc.resize(sink.sink_len(), 0);
        }
        // `v >= 1`, so a zero slot means "not staged yet" — a staged
        // slot can never return to zero before its flush resets it.
        if self.acc[idx] == 0 {
            self.dirty.push(idx);
        }
        // Counter adds saturate at `max_value < 2^63`, so the coalesced
        // sum saturating at u64::MAX is lossless for the counter; the
        // offered-units total uses the same wrapping tally as repeated
        // `add` (see add_batch).
        self.acc[idx] = self.acc[idx].saturating_add(v);
        self.staged_updates += 1;
        if self.dirty.len() >= self.capacity {
            sink.receive_flush(self);
        }
    }

    /// Apply the staged (already coalesced) updates to `sram` via
    /// [`AtomicCounterArray::add_batch`] and reset the accumulator.
    /// A no-op on an empty buffer.
    pub fn flush(&mut self, sram: &AtomicCounterArray) {
        if self.dirty.is_empty() {
            return;
        }
        self.batch.clear();
        for &idx in &self.dirty {
            self.batch.push((idx, self.acc[idx]));
            self.acc[idx] = 0;
        }
        self.flushed_updates += self.dirty.len() as u64;
        self.dirty.clear();
        sram.add_batch_striped(self.stripe, &self.batch);
        self.batch.clear();
        self.flushes += 1;
    }

    /// Drain the staged (already coalesced) segment into a non-atomic
    /// [`SramBacking`] via one
    /// [`add_batch`](crate::sram::SramBacking::add_batch) — the merge
    /// step of the packed-SRAM sharded build, where each shard
    /// accumulates its whole delta locally
    /// ([`WRITEBACK_ACCUMULATE_ALL`]) and the backings are too narrow
    /// (or not thread-safe) for in-flight atomic flushes. A no-op on an
    /// empty buffer.
    pub fn flush_into<B: crate::sram::SramBacking>(&mut self, backing: &mut B) {
        if self.dirty.is_empty() {
            return;
        }
        self.batch.clear();
        for &idx in &self.dirty {
            self.batch.push((idx, self.acc[idx]));
            self.acc[idx] = 0;
        }
        self.flushed_updates += self.dirty.len() as u64;
        self.dirty.clear();
        backing.add_batch(&self.batch);
        self.batch.clear();
        self.flushes += 1;
    }

    /// Distinct counters currently staged (not yet flushed).
    pub fn pending(&self) -> usize {
        self.dirty.len()
    }

    /// Flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Updates staged over the buffer's lifetime.
    pub fn staged_updates(&self) -> u64 {
        self.staged_updates
    }

    /// Updates that reached the SRAM after coalescing; the ratio
    /// `flushed_updates / staged_updates` is the CAS-traffic factor.
    pub fn flushed_updates(&self) -> u64 {
        self.flushed_updates
    }

    /// Capture the buffer's staged state and statistics for a
    /// crash-consistent snapshot (see [`WritebackState`]).
    pub fn state(&self) -> WritebackState {
        WritebackState {
            pending: self.dirty.iter().map(|&idx| (idx, self.acc[idx])).collect(),
            capacity: self.capacity,
            stripe: self.stripe,
            flushes: self.flushes,
            staged_updates: self.staged_updates,
            flushed_updates: self.flushed_updates,
        }
    }

    /// Rebuild a buffer from a [`WritebackState`]. The dense
    /// accumulator is sized to the highest staged index and lazily
    /// re-extended by the next `push` (which sizes it to the target
    /// SRAM), so restore never needs to know the SRAM length.
    ///
    /// # Panics
    /// Panics if `pending` contains a duplicate index or a zero
    /// increment (both impossible in an honest snapshot).
    pub fn restore(state: &WritebackState) -> Self {
        let mut wb = Self::striped(state.capacity, state.stripe);
        let max_idx = state.pending.iter().map(|&(i, _)| i).max();
        if let Some(max_idx) = max_idx {
            wb.acc.resize(max_idx + 1, 0);
        }
        for &(idx, v) in &state.pending {
            assert!(v > 0, "zero increment staged at {idx} in snapshot");
            assert_eq!(wb.acc[idx], 0, "duplicate index {idx} in snapshot");
            wb.acc[idx] = v;
            wb.dirty.push(idx);
        }
        wb.flushes = state.flushes;
        wb.staged_updates = state.staged_updates;
        wb.flushed_updates = state.flushed_updates;
        wb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let a = AtomicCounterArray::new(4, 32);
        a.add(1, 5);
        a.add(1, 7);
        a.add(3, 1);
        assert_eq!(a.get(1), 12);
        assert_eq!(a.sum(), 13);
        assert_eq!(a.total_added(), 13);
    }

    #[test]
    fn saturates_without_overshoot() {
        let a = AtomicCounterArray::new(1, 4); // max 15
        a.add(0, 10);
        a.add(0, 10);
        assert_eq!(a.get(0), 15);
        assert_eq!(a.saturations(), 1);
        assert_eq!(a.total_added(), 20);
    }

    #[test]
    fn zero_add_is_noop() {
        let a = AtomicCounterArray::new(2, 8);
        a.add(0, 0);
        assert_eq!(a.total_added(), 0);
    }

    #[test]
    fn concurrent_adds_conserve() {
        let a = AtomicCounterArray::new(64, 63);
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let a = &a;
                s.spawn(move || {
                    for i in 0..per_thread {
                        a.add(((t as u64 * 31 + i) % 64) as usize, 1);
                    }
                });
            }
        });
        assert_eq!(a.sum(), threads as u64 * per_thread);
        assert_eq!(a.total_added(), threads as u64 * per_thread);
    }

    #[test]
    fn merge_from_sums_values_and_tallies() {
        let a = AtomicCounterArray::new(4, 16);
        let b = AtomicCounterArray::with_stripes(4, 16, 3); // stripe counts may differ
        a.add(0, 5);
        b.add(0, 3);
        b.add(2, 9);
        a.merge_from(&b).unwrap();
        assert_eq!(a.snapshot(), vec![8, 0, 9, 0]);
        assert_eq!(a.total_added(), 17);
        assert_eq!(a.saturations(), 0);
    }

    #[test]
    fn merge_from_clamps_and_flags() {
        let a = AtomicCounterArray::new(2, 4); // max 15
        let b = AtomicCounterArray::new(2, 4);
        a.add(0, 10);
        b.add(0, 10); // merged crossing
        b.add(1, 100); // b's own saturation folds in
        a.merge_from(&b).unwrap();
        assert_eq!(a.get(0), 15);
        assert_eq!(a.get(1), 15);
        assert_eq!(a.saturations(), 2);
        assert_eq!(a.total_added(), 120);
    }

    #[test]
    fn merge_rejects_mismatched_geometry() {
        let a = AtomicCounterArray::new(4, 16);
        assert!(matches!(
            a.merge_from(&AtomicCounterArray::new(4, 8)),
            Err(MergeError::Geometry { field: "counter_bits", .. })
        ));
        assert!(matches!(
            a.merge_counters(&[1, 2, 3], 6, 0),
            Err(MergeError::Geometry { field: "counters", .. })
        ));
    }

    #[test]
    fn merge_counters_matches_merge_from() {
        let a = AtomicCounterArray::new(4, 16);
        let b = AtomicCounterArray::new(4, 16);
        for i in 0..4 {
            a.add(i, i as u64 + 1);
            b.add(i, 10 * (i as u64 + 1));
        }
        let via_from = AtomicCounterArray::restore(16, &a.snapshot(), &a.tally_snapshot());
        via_from.merge_from(&b).unwrap();
        a.merge_counters(&b.snapshot(), b.total_added(), b.saturations()).unwrap();
        assert_eq!(a.snapshot(), via_from.snapshot());
        assert_eq!(a.total_added(), via_from.total_added());
        assert_eq!(a.saturations(), via_from.saturations());
    }

    #[test]
    fn snapshot_matches_gets() {
        let a = AtomicCounterArray::new(8, 16);
        for i in 0..8 {
            a.add(i, i as u64 * 3);
        }
        let snap = a.snapshot();
        for (i, &v) in snap.iter().enumerate() {
            assert_eq!(v, a.get(i));
        }
    }

    #[test]
    fn saturated_fraction_counts_pinned_words() {
        let a = AtomicCounterArray::new(4, 4); // max 15
        assert_eq!(a.saturated_fraction(), 0.0);
        a.add(0, 100);
        a.add(1, 15);
        assert!((a.saturated_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_rejected() {
        AtomicCounterArray::new(0, 8);
    }

    #[test]
    fn huge_weighted_add_near_cap_does_not_overflow() {
        // Regression: saturation detection used `cur + v` on raw u64s,
        // which wrapped in release / panicked in debug when a byte-mode
        // eviction pushed a nearly-full counter with v near u64::MAX.
        let a = AtomicCounterArray::new(2, 63);
        let cap = a.max_value(); // 2^63 - 1
        a.add(0, cap); // exactly full, no saturation yet
        assert_eq!(a.get(0), cap);
        assert_eq!(a.saturations(), 0);
        a.add(0, u64::MAX); // cur + v would wrap: must count as saturated
        assert_eq!(a.get(0), cap);
        assert_eq!(a.saturations(), 1);
        // A single add bigger than the cap also saturates exactly once.
        a.add(1, u64::MAX);
        assert_eq!(a.get(1), cap);
        assert_eq!(a.saturations(), 2);
        assert_eq!(a.total_added(), cap.wrapping_add(u64::MAX).wrapping_add(u64::MAX));
    }

    #[test]
    fn full_counter_plus_one_still_counts_saturation() {
        let a = AtomicCounterArray::new(1, 4); // max 15
        a.add(0, 15);
        assert_eq!(a.saturations(), 0);
        a.add(0, 1);
        assert_eq!(a.get(0), 15);
        assert_eq!(a.saturations(), 1);
    }

    #[test]
    fn add_batch_matches_repeated_add() {
        let batched = AtomicCounterArray::new(8, 10);
        let looped = AtomicCounterArray::new(8, 10);
        let updates: Vec<(usize, u64)> =
            vec![(0, 3), (1, 0), (7, 1000), (0, 5), (7, 200), (3, 1), (0, 2)];
        batched.add_batch(&updates);
        for &(i, v) in &updates {
            looped.add(i, v);
        }
        assert_eq!(batched.snapshot(), looped.snapshot());
        assert_eq!(batched.total_added(), looped.total_added());
        assert_eq!(batched.sum(), looped.sum());
    }

    #[test]
    fn add_batch_empty_and_zeroes_are_noops() {
        let a = AtomicCounterArray::new(4, 8);
        a.add_batch(&[]);
        a.add_batch(&[(0, 0), (3, 0)]);
        assert_eq!(a.total_added(), 0);
        assert_eq!(a.sum(), 0);
    }

    #[test]
    fn writeback_buffer_coalesces_and_conserves() {
        let a = AtomicCounterArray::new(16, 32);
        let mut wb = WritebackBuffer::new(8);
        // 12 updates over 3 distinct indices: the dirty set never
        // reaches capacity, so everything coalesces into one explicit
        // flush of exactly 3 SRAM updates.
        for i in 0..12u64 {
            wb.push((i % 3) as usize, i + 1, &a);
        }
        assert_eq!(wb.pending(), 3, "3 distinct counters staged");
        assert_eq!(wb.flushes(), 0, "hot counters never force a flush");
        wb.flush(&a);
        assert_eq!(wb.pending(), 0);
        assert_eq!(a.total_added(), (1..=12u64).sum::<u64>());
        assert_eq!(wb.staged_updates(), 12);
        assert_eq!(wb.flushed_updates(), 3, "one SRAM update per counter");
        assert_eq!(wb.flushes(), 1);
        // Same result as direct adds.
        let direct = AtomicCounterArray::new(16, 32);
        for i in 0..12u64 {
            direct.add((i % 3) as usize, i + 1);
        }
        assert_eq!(a.snapshot(), direct.snapshot());
    }

    #[test]
    fn writeback_buffer_flushes_when_dirty_set_fills() {
        let a = AtomicCounterArray::new(8, 16);
        let mut wb = WritebackBuffer::new(2);
        wb.push(0, 1, &a);
        wb.push(0, 1, &a); // same counter: still 1 dirty slot
        assert_eq!(wb.pending(), 1);
        wb.push(5, 4, &a); // second distinct counter: auto-flush
        assert_eq!(wb.pending(), 0);
        assert_eq!(wb.flushes(), 1);
        assert_eq!(wb.flushed_updates(), 2);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(5), 4);
        // The accumulator reset: the same index dirties again cleanly.
        wb.push(0, 3, &a);
        wb.flush(&a);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.total_added(), 9);
    }

    #[test]
    fn writeback_buffer_zero_capacity_is_write_through() {
        let a = AtomicCounterArray::new(2, 8);
        let mut wb = WritebackBuffer::new(0);
        wb.push(0, 7, &a);
        assert_eq!(wb.pending(), 0, "capacity 1: flushed immediately");
        assert_eq!(a.get(0), 7);
        wb.push(1, 0, &a); // zero increments never stage
        assert_eq!(wb.staged_updates(), 1);
    }

    #[test]
    fn array_snapshot_restore_round_trips() {
        let a = AtomicCounterArray::with_stripes(16, 10, 3);
        let mut wb = WritebackBuffer::striped(4, 2);
        for i in 0..40u64 {
            wb.push((i % 7) as usize, i + 1, &a);
        }
        wb.flush(&a);
        a.add(15, 5000); // force a saturation (10-bit cap = 1023)
        let r = AtomicCounterArray::restore(a.bits(), &a.snapshot(), &a.tally_snapshot());
        assert_eq!(r.snapshot(), a.snapshot());
        assert_eq!(r.tally_snapshot(), a.tally_snapshot());
        assert_eq!(r.total_added(), a.total_added());
        assert_eq!(r.saturations(), a.saturations());
        assert_eq!(r.stripes(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn restore_rejects_overflowing_words() {
        AtomicCounterArray::restore(4, &[16], &[(16, 0)]); // 4-bit cap is 15
    }

    #[test]
    fn force_saturation_touches_tallies_only() {
        let a = AtomicCounterArray::with_stripes(4, 8, 2);
        a.add(0, 9);
        let before = a.snapshot();
        a.force_saturation(1, 3);
        assert_eq!(a.snapshot(), before, "counter words untouched");
        assert_eq!(a.total_added(), 9, "offered mass untouched");
        assert_eq!(a.saturations(), 3);
    }

    #[test]
    fn writeback_state_restore_flushes_identically() {
        let a = AtomicCounterArray::new(32, 16);
        let b = AtomicCounterArray::new(32, 16);
        let mut wb = WritebackBuffer::striped(WRITEBACK_ACCUMULATE_ALL, 0);
        for i in 0..100u64 {
            wb.push((i % 11) as usize, i % 5 + 1, &a);
        }
        let state = wb.state();
        assert_eq!(state.pending.len(), 11);
        let mut restored = WritebackBuffer::restore(&state);
        assert_eq!(restored.state(), state, "restore → state is the identity");
        // Continue both identically, flush to separate arrays.
        wb.push(30, 7, &a);
        restored.push(30, 7, &b);
        wb.flush(&a);
        restored.flush(&b);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.total_added(), b.total_added());
        assert_eq!(wb.state(), restored.state());
    }

    #[test]
    fn dirty_blocks_track_adds_and_merges() {
        use crate::sram::DIRTY_BLOCK_COUNTERS;
        let a = AtomicCounterArray::with_stripes(DIRTY_BLOCK_COUNTERS * 3 + 5, 16, 2);
        assert!(a.take_dirty_blocks().is_empty(), "fresh array is clean");
        a.add(0, 1);
        a.add_batch_striped(1, &[(DIRTY_BLOCK_COUNTERS * 3 + 4, 9)]);
        assert_eq!(a.take_dirty_blocks(), vec![0, 3]);
        assert!(a.take_dirty_blocks().is_empty(), "drain clears");
        a.merge_counters(&{
            let mut v = vec![0u64; DIRTY_BLOCK_COUNTERS * 3 + 5];
            v[DIRTY_BLOCK_COUNTERS + 1] = 7;
            v
        }, 7, 0)
        .unwrap();
        assert_eq!(a.take_dirty_blocks(), vec![1]);
        // Restore and store_counters re-baseline: no marks.
        let r = AtomicCounterArray::restore(a.bits(), &a.snapshot(), &a.tally_snapshot());
        assert!(r.take_dirty_blocks().is_empty());
        r.store_counters(DIRTY_BLOCK_COUNTERS, &[3, 4, 5]);
        assert!(r.take_dirty_blocks().is_empty());
        assert_eq!(r.get(DIRTY_BLOCK_COUNTERS + 1), 4);
    }

    #[test]
    fn restore_tallies_overwrites_stripes() {
        let a = AtomicCounterArray::with_stripes(8, 16, 2);
        a.add(0, 5);
        a.restore_tallies(&[(100, 2), (50, 1)]);
        assert_eq!(a.tally_snapshot(), vec![(100, 2), (50, 1)]);
        assert_eq!(a.total_added(), 150);
        assert_eq!(a.saturations(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn store_counters_rejects_out_of_range() {
        AtomicCounterArray::new(4, 8).store_counters(2, &[1, 2, 3]);
    }

    #[test]
    fn concurrent_batched_adds_conserve() {
        let a = AtomicCounterArray::new(64, 63);
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let a = &a;
                s.spawn(move || {
                    let mut wb = WritebackBuffer::new(64);
                    for i in 0..per_thread {
                        wb.push(((t as u64 * 31 + i) % 64) as usize, 1, a);
                    }
                    wb.flush(a);
                });
            }
        });
        assert_eq!(a.sum(), threads as u64 * per_thread);
        assert_eq!(a.total_added(), threads as u64 * per_thread);
    }
}
