//! The off-chip SRAM counter array.
//!
//! `L` counters of `counter_bits` bits each. Adds saturate at the
//! counter capacity `l = 2^bits − 1` (a real SRAM word cannot wrap
//! silently without corrupting every sharing flow); saturation events
//! are counted so experiments can detect an undersized configuration.

use crate::merge::MergeError;

/// Counters per dirty-tracking block: the granularity at which the SRAM
/// backings report "something here changed" (one cache line of u64
/// words). Coarse blocks keep the hot-path mark to a single shift+or
/// and bound bitmap size at `L / 64` bits.
pub const DIRTY_BLOCK_COUNTERS: usize = 64;

/// log2([`DIRTY_BLOCK_COUNTERS`]) — counter index → block index shift.
pub(crate) const DIRTY_BLOCK_SHIFT: u32 = DIRTY_BLOCK_COUNTERS.trailing_zeros();

/// Number of bitmap words needed to track `len` counters (one bit per
/// [`DIRTY_BLOCK_COUNTERS`]-counter block, 64 blocks per word).
pub(crate) fn dirty_words_for(len: usize) -> usize {
    len.div_ceil(DIRTY_BLOCK_COUNTERS).div_ceil(64)
}

/// Drain a plain (non-atomic) dirty bitmap into ascending block
/// indices, clearing it. Shared by the word and packed backings.
pub(crate) fn drain_dirty_words(words: &mut [u64]) -> Vec<usize> {
    let mut blocks = Vec::new();
    for (w, word) in words.iter_mut().enumerate() {
        let mut bits = *word;
        *word = 0;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            blocks.push(w * 64 + b);
            bits &= bits - 1;
        }
    }
    blocks
}

/// Fixed-width saturating counter array.
#[derive(Debug, Clone)]
pub struct CounterArray {
    counters: Vec<u64>,
    max_value: u64,
    bits: u32,
    saturations: u64,
    /// Total of everything ever added (before saturation clipping) —
    /// the `n = Q·μ` the estimators need for de-noising.
    total_added: u64,
    accesses: u64,
    /// One bit per [`DIRTY_BLOCK_COUNTERS`]-counter block, set by every
    /// write path and drained by
    /// [`take_dirty_blocks`](CounterArray::take_dirty_blocks).
    dirty: Vec<u64>,
}

/// Summary of the array state.
#[derive(Debug, Clone, Copy)]
pub struct CounterArrayStats {
    /// Number of counters `L`.
    pub len: usize,
    /// Bits per counter.
    pub bits: u32,
    /// Saturating adds that lost precision.
    pub saturations: u64,
    /// Total units added.
    pub total_added: u64,
    /// Write accesses performed.
    pub accesses: u64,
    /// Counters currently zero.
    pub zeros: usize,
}

impl CounterArray {
    /// `len` counters of `bits` bits, all zero.
    ///
    /// # Panics
    /// Panics if `len == 0` or `bits` is outside `1..=63`.
    pub fn new(len: usize, bits: u32) -> Self {
        assert!(len > 0, "counter array cannot be empty");
        assert!((1..=63).contains(&bits), "counter bits must be in 1..=63");
        Self {
            counters: vec![0; len],
            max_value: (1u64 << bits) - 1,
            bits,
            saturations: 0,
            total_added: 0,
            accesses: 0,
            dirty: vec![0; dirty_words_for(len)],
        }
    }

    /// Mark the block holding counter `idx` dirty. Test-then-or, not
    /// an unconditional `|=`: hot traces re-dirty the same few blocks
    /// between drains, so the already-set test predicts perfectly and
    /// the store retires only on a block's first write per epoch —
    /// same trick the atomic flavor uses to avoid redundant RMWs.
    #[inline(always)]
    fn mark_dirty(&mut self, idx: usize) {
        let block = idx >> DIRTY_BLOCK_SHIFT;
        let bit = 1u64 << (block & 63);
        let word = &mut self.dirty[block >> 6];
        if *word & bit == 0 {
            *word |= bit;
        }
    }

    /// Drain the dirty-block bitmap: ascending indices of every
    /// [`DIRTY_BLOCK_COUNTERS`]-counter block written since the last
    /// drain (or construction/[`clear`](CounterArray::clear)), then
    /// mark everything clean. The bitmap over-approximates change —
    /// a zero-increment write still marks its block — so callers may
    /// see blocks whose counters are byte-identical; they never miss a
    /// changed one.
    pub fn take_dirty_blocks(&mut self) -> Vec<usize> {
        drain_dirty_words(&mut self.dirty)
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when the array has no counters (never: `new` forbids it).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Maximum storable value `l`.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// Add `v` to counter `idx`, saturating at `l`.
    #[inline]
    pub fn add(&mut self, idx: usize, v: u64) {
        self.accesses += 1;
        self.total_added += v;
        self.mark_dirty(idx);
        let c = &mut self.counters[idx];
        let room = self.max_value - *c;
        if v > room {
            *c = self.max_value;
            self.saturations += 1;
        } else {
            *c += v;
        }
    }

    /// Apply one eviction's coalesced per-counter increments: add
    /// `incs[slot]` to counter `indices[slot]` for every **nonzero**
    /// increment, in slot order, with exactly the per-write tallies of
    /// [`CounterArray::add`]. Returns the number of counters written.
    /// One inherent call instead of `k` dependent `add` calls keeps the
    /// capacity/room math in registers across the whole row — the
    /// lane-structured eviction hot path
    /// ([`crate::update::spread_eviction`]).
    ///
    /// # Panics
    /// Panics if `incs` is shorter than `indices` or an index is out of
    /// bounds.
    #[inline]
    pub fn add_spread(&mut self, indices: &[usize], incs: &[u64]) -> u64 {
        let max = self.max_value;
        let mut writes = 0u64;
        for (&idx, &inc) in indices.iter().zip(&incs[..indices.len()]) {
            if inc == 0 {
                continue;
            }
            self.accesses += 1;
            self.total_added += inc;
            self.mark_dirty(idx);
            let c = &mut self.counters[idx];
            let room = max - *c;
            if inc > room {
                *c = max;
                self.saturations += 1;
            } else {
                *c += inc;
            }
            writes += 1;
        }
        writes
    }

    /// Apply a batch of `(index, increment)` updates, one
    /// [`CounterArray::add`] each (duplicates legal, zero increments
    /// tallied as accesses exactly like a zero `add`). The word-array
    /// mirror of [`crate::PackedCounterArray::add_batch`].
    pub fn add_batch(&mut self, updates: &[(usize, u64)]) {
        for &(idx, v) in updates {
            self.add(idx, v);
        }
    }

    /// Read counter `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> u64 {
        self.counters[idx]
    }

    /// Software-prefetch the word holding counter `idx` (no-op when
    /// out of bounds or on non-x86 targets). Used by the batch record
    /// loop to hint a flow's `k` counter lines one packet ahead of the
    /// eviction that will read-modify-write them.
    #[inline]
    pub fn prefetch(&self, idx: usize) {
        support::mem::prefetch_index(&self.counters, idx);
    }

    /// Sum over all counters (equals `total_added` when nothing
    /// saturated).
    pub fn sum(&self) -> u64 {
        self.counters.iter().sum()
    }

    /// Total units offered to the array (`n` for the estimators).
    pub fn total_added(&self) -> u64 {
        self.total_added
    }

    /// Fraction of counters pinned at the capacity `l` — the
    /// per-workload saturation metric of the zoo sweeps. A clamped
    /// counter under-reports every flow sharing it, so this bounds the
    /// fraction of the array that is silently lossy.
    pub fn saturated_fraction(&self) -> f64 {
        let sat = self
            .counters
            .iter()
            .filter(|&&c| c >= self.max_value)
            .count();
        sat as f64 / self.counters.len() as f64
    }

    /// Array statistics.
    pub fn stats(&self) -> CounterArrayStats {
        CounterArrayStats {
            len: self.counters.len(),
            bits: self.bits,
            saturations: self.saturations,
            total_added: self.total_added,
            accesses: self.accesses,
            zeros: self.counters.iter().filter(|&&c| c == 0).count(),
        }
    }

    /// Reset all counters and statistics. The dirty bitmap resets too:
    /// a cleared array is a fresh baseline, exactly like construction.
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.saturations = 0;
        self.total_added = 0;
        self.accesses = 0;
        self.dirty.fill(0);
    }

    /// Borrow the raw counters (for estimation sweeps).
    pub fn as_slice(&self) -> &[u64] {
        &self.counters
    }

    /// Merge another array into this one (element-wise saturating add).
    ///
    /// # Panics
    /// Panics if geometries differ. Prefer
    /// [`CounterArray::merge_from`] for the error-propagating form.
    pub fn merge(&mut self, other: &CounterArray) {
        self.merge_from(other).expect("counter array merge");
    }

    /// Saturation-aware merge: add `other` counter-wise, clamping each
    /// sum at `max_value` and counting every clamp as a saturation
    /// event; `other`'s own saturation/offered/access tallies fold in,
    /// so the merged array reports the union's health honestly (a
    /// clamped counter summed past the cap must *not* read as an
    /// ordinary value). Rejects mismatched geometry with a typed
    /// [`MergeError`] instead of summing unrelated flows.
    pub fn merge_from(&mut self, other: &CounterArray) -> Result<(), MergeError> {
        if self.counters.len() != other.counters.len() {
            return Err(MergeError::Geometry {
                field: "counters",
                ours: self.counters.len() as u64,
                theirs: other.counters.len() as u64,
            });
        }
        if self.bits != other.bits {
            return Err(MergeError::Geometry {
                field: "counter_bits",
                ours: u64::from(self.bits),
                theirs: u64::from(other.bits),
            });
        }
        for (idx, &v) in other.counters.iter().enumerate() {
            if v == 0 {
                continue;
            }
            self.mark_dirty(idx);
            let c = &mut self.counters[idx];
            let room = self.max_value - *c;
            if v > room {
                *c = self.max_value;
                self.saturations += 1;
            } else {
                *c += v;
            }
        }
        self.total_added += other.total_added;
        self.accesses += other.accesses;
        self.saturations += other.saturations;
        Ok(())
    }
}

/// The storage seam of the ingest path: everything the CAESAR pipeline
/// ([`crate::CaesarCore`]) needs from its off-chip counter array.
///
/// Implemented by the word-per-counter [`CounterArray`] (the simulation
/// hot path) and the hardware-faithful bit-packed
/// [`crate::PackedCounterArray`], so the same construction code runs —
/// and is priced, by the `ablations/ingest_backing` bench group —
/// against either layout.
///
/// Every implementor must honor the [`CounterArray`] semantics (the
/// packed-parity suite pins them): adds saturate at
/// [`max_value`](SramBacking::max_value) and count saturation events,
/// each write tallies one access, and the offered-units total records
/// pre-clipping values.
pub trait SramBacking {
    /// Fresh all-zero array of `len` counters of `bits` bits each.
    ///
    /// # Panics
    /// Panics if `len == 0` or `bits` is outside `1..=63`.
    fn new_backing(len: usize, bits: u32) -> Self
    where
        Self: Sized;

    /// Add `v` to counter `idx`, saturating at the capacity.
    fn add(&mut self, idx: usize, v: u64);

    /// Apply one eviction's coalesced per-counter increments
    /// (`incs[slot]` onto `indices[slot]`, zero increments skipped with
    /// **no** access tallied) and return the number of counters
    /// written. Must be observably identical to the skip-zero `add`
    /// loop — see [`CounterArray::add_spread`].
    fn add_spread(&mut self, indices: &[usize], incs: &[u64]) -> u64;

    /// Apply a `(index, increment)` batch, equivalent to one
    /// [`add`](SramBacking::add) per entry — the merge target for
    /// shard-local writeback segments
    /// ([`crate::WritebackBuffer::flush_into`]).
    fn add_batch(&mut self, updates: &[(usize, u64)]);

    /// Read counter `idx`.
    fn get(&self, idx: usize) -> u64;

    /// Best-effort software prefetch of counter `idx`'s storage word
    /// (may be a no-op).
    fn prefetch(&self, idx: usize);

    /// Number of counters `L`.
    fn len(&self) -> usize;

    /// True when the array has no counters.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum storable value `l`.
    fn max_value(&self) -> u64;

    /// Sum over all counters.
    fn sum(&self) -> u64;

    /// Total units offered (`n` for the estimators).
    fn total_added(&self) -> u64;

    /// Array statistics in the common [`CounterArrayStats`] shape.
    fn stats(&self) -> CounterArrayStats;

    /// Fraction of counters pinned at the capacity `l`.
    fn saturated_fraction(&self) -> f64;

    /// Drain the dirty-block bitmap: ascending indices of every
    /// [`DIRTY_BLOCK_COUNTERS`]-counter block written since the last
    /// drain, then mark everything clean. Over-approximates change
    /// (a zero-increment write still marks its block) but never misses
    /// a changed counter — the soundness contract the delta-checkpoint
    /// machinery relies on.
    fn take_dirty_blocks(&mut self) -> Vec<usize>;
}

impl SramBacking for CounterArray {
    fn new_backing(len: usize, bits: u32) -> Self {
        CounterArray::new(len, bits)
    }

    #[inline]
    fn add(&mut self, idx: usize, v: u64) {
        CounterArray::add(self, idx, v);
    }

    #[inline]
    fn add_spread(&mut self, indices: &[usize], incs: &[u64]) -> u64 {
        CounterArray::add_spread(self, indices, incs)
    }

    fn add_batch(&mut self, updates: &[(usize, u64)]) {
        CounterArray::add_batch(self, updates);
    }

    #[inline]
    fn get(&self, idx: usize) -> u64 {
        CounterArray::get(self, idx)
    }

    #[inline]
    fn prefetch(&self, idx: usize) {
        CounterArray::prefetch(self, idx);
    }

    fn len(&self) -> usize {
        CounterArray::len(self)
    }

    fn max_value(&self) -> u64 {
        CounterArray::max_value(self)
    }

    fn sum(&self) -> u64 {
        CounterArray::sum(self)
    }

    fn total_added(&self) -> u64 {
        CounterArray::total_added(self)
    }

    fn stats(&self) -> CounterArrayStats {
        CounterArray::stats(self)
    }

    fn saturated_fraction(&self) -> f64 {
        CounterArray::saturated_fraction(self)
    }

    fn take_dirty_blocks(&mut self) -> Vec<usize> {
        CounterArray::take_dirty_blocks(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut a = CounterArray::new(4, 8);
        a.add(0, 5);
        a.add(0, 7);
        a.add(3, 1);
        assert_eq!(a.get(0), 12);
        assert_eq!(a.get(3), 1);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.sum(), 13);
        assert_eq!(a.total_added(), 13);
    }

    #[test]
    fn saturates_at_capacity() {
        let mut a = CounterArray::new(1, 4); // max 15
        a.add(0, 10);
        a.add(0, 10);
        assert_eq!(a.get(0), 15);
        assert_eq!(a.stats().saturations, 1);
        // total_added still records what was offered.
        assert_eq!(a.total_added(), 20);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = CounterArray::new(2, 8);
        a.add(1, 3);
        a.clear();
        assert_eq!(a.sum(), 0);
        assert_eq!(a.total_added(), 0);
        assert_eq!(a.stats().accesses, 0);
    }

    #[test]
    fn stats_zeros() {
        let mut a = CounterArray::new(5, 8);
        a.add(2, 1);
        assert_eq!(a.stats().zeros, 4);
    }

    #[test]
    fn saturated_fraction_counts_pinned_words() {
        let mut a = CounterArray::new(4, 4); // max 15
        assert_eq!(a.saturated_fraction(), 0.0);
        a.add(0, 100);
        a.add(1, 15); // exactly at cap counts as saturated
        a.add(2, 14);
        assert!((a.saturated_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_rejected() {
        CounterArray::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn bad_bits_rejected() {
        CounterArray::new(1, 64);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_add_panics() {
        let mut a = CounterArray::new(2, 8);
        a.add(2, 1);
    }

    #[test]
    fn add_spread_matches_skip_zero_add_loop() {
        let indices = [0usize, 3, 1, 3];
        for incs in [[5u64, 0, 7, 2], [0, 0, 0, 0], [300, 1, 1, 300]] {
            let mut spread = CounterArray::new(4, 8);
            let mut looped = CounterArray::new(4, 8);
            let writes = spread.add_spread(&indices, &incs);
            let mut expect = 0u64;
            for (&idx, &inc) in indices.iter().zip(&incs) {
                if inc > 0 {
                    looped.add(idx, inc);
                    expect += 1;
                }
            }
            assert_eq!(writes, expect, "incs {incs:?}");
            assert_eq!(spread.as_slice(), looped.as_slice());
            let (a, b) = (spread.stats(), looped.stats());
            assert_eq!(a.accesses, b.accesses);
            assert_eq!(a.total_added, b.total_added);
            assert_eq!(a.saturations, b.saturations);
        }
    }

    #[test]
    #[should_panic]
    fn add_spread_short_incs_panics() {
        let mut a = CounterArray::new(4, 8);
        a.add_spread(&[0, 1, 2], &[1, 2]);
    }

    #[test]
    fn merge_from_sums_counters_and_tallies() {
        let mut a = CounterArray::new(4, 8);
        let mut b = CounterArray::new(4, 8);
        a.add(0, 5);
        a.add(2, 7);
        b.add(0, 3);
        b.add(3, 9);
        a.merge_from(&b).unwrap();
        assert_eq!(a.as_slice(), &[8, 0, 7, 9]);
        assert_eq!(a.total_added(), 24);
        assert_eq!(a.stats().accesses, 4);
        assert_eq!(a.stats().saturations, 0);
    }

    #[test]
    fn merge_from_clamps_and_counts_saturation() {
        let mut a = CounterArray::new(2, 4); // max 15
        let mut b = CounterArray::new(2, 4);
        a.add(0, 10);
        b.add(0, 10); // merged sum 20 > 15 → clamp
        b.add(1, 100); // b already saturated once itself
        a.merge_from(&b).unwrap();
        assert_eq!(a.get(0), 15);
        assert_eq!(a.get(1), 15);
        // one clamp during merge + one inherited from b's own add
        assert_eq!(a.stats().saturations, 2);
        // offered totals fold even though values clamped
        assert_eq!(a.total_added(), 120);
    }

    #[test]
    fn dirty_blocks_track_every_write_path() {
        let mut a = CounterArray::new(DIRTY_BLOCK_COUNTERS * 4 + 7, 8);
        assert!(a.take_dirty_blocks().is_empty(), "fresh array is clean");
        a.add(0, 1);
        a.add(DIRTY_BLOCK_COUNTERS, 2); // block 1
        a.add(DIRTY_BLOCK_COUNTERS * 4 + 6, 3); // tail block
        assert_eq!(a.take_dirty_blocks(), vec![0, 1, 4]);
        assert!(a.take_dirty_blocks().is_empty(), "drain clears");
        a.add_spread(&[DIRTY_BLOCK_COUNTERS * 2, 1], &[5, 0]);
        // zero increment skipped entirely: only block 2 marked
        assert_eq!(a.take_dirty_blocks(), vec![2]);
        a.add_batch(&[(3, 0), (DIRTY_BLOCK_COUNTERS * 3, 9)]);
        // zero add still tallies an access and marks (over-approximate)
        assert_eq!(a.take_dirty_blocks(), vec![0, 3]);
        let mut b = CounterArray::new(DIRTY_BLOCK_COUNTERS * 4 + 7, 8);
        b.add(DIRTY_BLOCK_COUNTERS + 1, 4);
        a.merge_from(&b).unwrap();
        assert_eq!(a.take_dirty_blocks(), vec![1]);
        a.add(5, 1);
        a.clear();
        assert!(a.take_dirty_blocks().is_empty(), "clear re-baselines");
    }

    #[test]
    fn merge_from_rejects_mismatched_geometry() {
        let mut a = CounterArray::new(4, 8);
        let b = CounterArray::new(5, 8);
        match a.merge_from(&b) {
            Err(MergeError::Geometry { field, ours, theirs }) => {
                assert_eq!(field, "counters");
                assert_eq!((ours, theirs), (4, 5));
            }
            other => panic!("expected geometry error, got {other:?}"),
        }
        let c = CounterArray::new(4, 10);
        assert!(matches!(
            a.merge_from(&c),
            Err(MergeError::Geometry { field: "counter_bits", .. })
        ));
    }
}
