//! The off-chip SRAM counter array.
//!
//! `L` counters of `counter_bits` bits each. Adds saturate at the
//! counter capacity `l = 2^bits − 1` (a real SRAM word cannot wrap
//! silently without corrupting every sharing flow); saturation events
//! are counted so experiments can detect an undersized configuration.

use crate::merge::MergeError;

/// Fixed-width saturating counter array.
#[derive(Debug, Clone)]
pub struct CounterArray {
    counters: Vec<u64>,
    max_value: u64,
    bits: u32,
    saturations: u64,
    /// Total of everything ever added (before saturation clipping) —
    /// the `n = Q·μ` the estimators need for de-noising.
    total_added: u64,
    accesses: u64,
}

/// Summary of the array state.
#[derive(Debug, Clone, Copy)]
pub struct CounterArrayStats {
    /// Number of counters `L`.
    pub len: usize,
    /// Bits per counter.
    pub bits: u32,
    /// Saturating adds that lost precision.
    pub saturations: u64,
    /// Total units added.
    pub total_added: u64,
    /// Write accesses performed.
    pub accesses: u64,
    /// Counters currently zero.
    pub zeros: usize,
}

impl CounterArray {
    /// `len` counters of `bits` bits, all zero.
    ///
    /// # Panics
    /// Panics if `len == 0` or `bits` is outside `1..=63`.
    pub fn new(len: usize, bits: u32) -> Self {
        assert!(len > 0, "counter array cannot be empty");
        assert!((1..=63).contains(&bits), "counter bits must be in 1..=63");
        Self {
            counters: vec![0; len],
            max_value: (1u64 << bits) - 1,
            bits,
            saturations: 0,
            total_added: 0,
            accesses: 0,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when the array has no counters (never: `new` forbids it).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Maximum storable value `l`.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// Add `v` to counter `idx`, saturating at `l`.
    #[inline]
    pub fn add(&mut self, idx: usize, v: u64) {
        self.accesses += 1;
        self.total_added += v;
        let c = &mut self.counters[idx];
        let room = self.max_value - *c;
        if v > room {
            *c = self.max_value;
            self.saturations += 1;
        } else {
            *c += v;
        }
    }

    /// Read counter `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> u64 {
        self.counters[idx]
    }

    /// Software-prefetch the word holding counter `idx` (no-op when
    /// out of bounds or on non-x86 targets). Used by the batch record
    /// loop to hint a flow's `k` counter lines one packet ahead of the
    /// eviction that will read-modify-write them.
    #[inline]
    pub fn prefetch(&self, idx: usize) {
        support::mem::prefetch_index(&self.counters, idx);
    }

    /// Sum over all counters (equals `total_added` when nothing
    /// saturated).
    pub fn sum(&self) -> u64 {
        self.counters.iter().sum()
    }

    /// Total units offered to the array (`n` for the estimators).
    pub fn total_added(&self) -> u64 {
        self.total_added
    }

    /// Fraction of counters pinned at the capacity `l` — the
    /// per-workload saturation metric of the zoo sweeps. A clamped
    /// counter under-reports every flow sharing it, so this bounds the
    /// fraction of the array that is silently lossy.
    pub fn saturated_fraction(&self) -> f64 {
        let sat = self
            .counters
            .iter()
            .filter(|&&c| c >= self.max_value)
            .count();
        sat as f64 / self.counters.len() as f64
    }

    /// Array statistics.
    pub fn stats(&self) -> CounterArrayStats {
        CounterArrayStats {
            len: self.counters.len(),
            bits: self.bits,
            saturations: self.saturations,
            total_added: self.total_added,
            accesses: self.accesses,
            zeros: self.counters.iter().filter(|&&c| c == 0).count(),
        }
    }

    /// Reset all counters and statistics.
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.saturations = 0;
        self.total_added = 0;
        self.accesses = 0;
    }

    /// Borrow the raw counters (for estimation sweeps).
    pub fn as_slice(&self) -> &[u64] {
        &self.counters
    }

    /// Merge another array into this one (element-wise saturating add).
    ///
    /// # Panics
    /// Panics if geometries differ. Prefer
    /// [`CounterArray::merge_from`] for the error-propagating form.
    pub fn merge(&mut self, other: &CounterArray) {
        self.merge_from(other).expect("counter array merge");
    }

    /// Saturation-aware merge: add `other` counter-wise, clamping each
    /// sum at `max_value` and counting every clamp as a saturation
    /// event; `other`'s own saturation/offered/access tallies fold in,
    /// so the merged array reports the union's health honestly (a
    /// clamped counter summed past the cap must *not* read as an
    /// ordinary value). Rejects mismatched geometry with a typed
    /// [`MergeError`] instead of summing unrelated flows.
    pub fn merge_from(&mut self, other: &CounterArray) -> Result<(), MergeError> {
        if self.counters.len() != other.counters.len() {
            return Err(MergeError::Geometry {
                field: "counters",
                ours: self.counters.len() as u64,
                theirs: other.counters.len() as u64,
            });
        }
        if self.bits != other.bits {
            return Err(MergeError::Geometry {
                field: "counter_bits",
                ours: u64::from(self.bits),
                theirs: u64::from(other.bits),
            });
        }
        for (c, &v) in self.counters.iter_mut().zip(&other.counters) {
            let room = self.max_value - *c;
            if v > room {
                *c = self.max_value;
                self.saturations += 1;
            } else {
                *c += v;
            }
        }
        self.total_added += other.total_added;
        self.accesses += other.accesses;
        self.saturations += other.saturations;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut a = CounterArray::new(4, 8);
        a.add(0, 5);
        a.add(0, 7);
        a.add(3, 1);
        assert_eq!(a.get(0), 12);
        assert_eq!(a.get(3), 1);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.sum(), 13);
        assert_eq!(a.total_added(), 13);
    }

    #[test]
    fn saturates_at_capacity() {
        let mut a = CounterArray::new(1, 4); // max 15
        a.add(0, 10);
        a.add(0, 10);
        assert_eq!(a.get(0), 15);
        assert_eq!(a.stats().saturations, 1);
        // total_added still records what was offered.
        assert_eq!(a.total_added(), 20);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = CounterArray::new(2, 8);
        a.add(1, 3);
        a.clear();
        assert_eq!(a.sum(), 0);
        assert_eq!(a.total_added(), 0);
        assert_eq!(a.stats().accesses, 0);
    }

    #[test]
    fn stats_zeros() {
        let mut a = CounterArray::new(5, 8);
        a.add(2, 1);
        assert_eq!(a.stats().zeros, 4);
    }

    #[test]
    fn saturated_fraction_counts_pinned_words() {
        let mut a = CounterArray::new(4, 4); // max 15
        assert_eq!(a.saturated_fraction(), 0.0);
        a.add(0, 100);
        a.add(1, 15); // exactly at cap counts as saturated
        a.add(2, 14);
        assert!((a.saturated_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_rejected() {
        CounterArray::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn bad_bits_rejected() {
        CounterArray::new(1, 64);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_add_panics() {
        let mut a = CounterArray::new(2, 8);
        a.add(2, 1);
    }

    #[test]
    fn merge_from_sums_counters_and_tallies() {
        let mut a = CounterArray::new(4, 8);
        let mut b = CounterArray::new(4, 8);
        a.add(0, 5);
        a.add(2, 7);
        b.add(0, 3);
        b.add(3, 9);
        a.merge_from(&b).unwrap();
        assert_eq!(a.as_slice(), &[8, 0, 7, 9]);
        assert_eq!(a.total_added(), 24);
        assert_eq!(a.stats().accesses, 4);
        assert_eq!(a.stats().saturations, 0);
    }

    #[test]
    fn merge_from_clamps_and_counts_saturation() {
        let mut a = CounterArray::new(2, 4); // max 15
        let mut b = CounterArray::new(2, 4);
        a.add(0, 10);
        b.add(0, 10); // merged sum 20 > 15 → clamp
        b.add(1, 100); // b already saturated once itself
        a.merge_from(&b).unwrap();
        assert_eq!(a.get(0), 15);
        assert_eq!(a.get(1), 15);
        // one clamp during merge + one inherited from b's own add
        assert_eq!(a.stats().saturations, 2);
        // offered totals fold even though values clamped
        assert_eq!(a.total_added(), 120);
    }

    #[test]
    fn merge_from_rejects_mismatched_geometry() {
        let mut a = CounterArray::new(4, 8);
        let b = CounterArray::new(5, 8);
        match a.merge_from(&b) {
            Err(MergeError::Geometry { field, ours, theirs }) => {
                assert_eq!(field, "counters");
                assert_eq!((ours, theirs), (4, 5));
            }
            other => panic!("expected geometry error, got {other:?}"),
        }
        let c = CounterArray::new(4, 10);
        assert!(matches!(
            a.merge_from(&c),
            Err(MergeError::Geometry { field: "counter_bits", .. })
        ));
    }
}
