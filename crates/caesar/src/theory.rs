//! Analytic results of §4, exposed so tests and benches can check the
//! implementation against the theory (and the theory against the
//! simulation).

/// Expected number of evictions of a flow of size `x` with entry
/// capacity `y` (Eq. 10): `E(t) = 2x/y` — each eviction carries `≈ y/2`
/// on average because eviction values are uniform on `1..=y`.
pub fn expected_evictions(x: u64, y: u64) -> f64 {
    2.0 * x as f64 / y as f64
}

/// Expected addition of a flow of size `x` to each of its `k` mapped
/// counters (Eq. 12): `E(Y) = x/k`.
pub fn expected_own_share(x: u64, k: usize) -> f64 {
    x as f64 / k as f64
}

/// Variance of a flow's addition to one mapped counter as printed in
/// the paper (Eq. 14): `D(Y) ≈ x(k−1)²/(yk)`.
///
/// **Erratum E3** (see DESIGN.md): this overestimates by a factor of
/// `k`. The paper's Eq. 8 approximates the per-counter remainder mean
/// `E(EV_i2)` as `(k−1)/2`, but that is the mean of the whole
/// remainder `q` — the per-counter share is `(k−1)/(2k)`. Propagating
/// the correct value through Eqs. 13–14 gives
/// [`own_share_variance_corrected`], which simulation matches to a few
/// percent (see `experiments::theory`).
pub fn own_share_variance(x: u64, y: u64, k: usize) -> f64 {
    let kf = k as f64;
    x as f64 * (kf - 1.0) * (kf - 1.0) / (y as f64 * kf)
}

/// Corrected own-share variance (erratum E3):
/// `D(Y) = E(t)·E[q]·(1/k)(1−1/k) = x(k−1)²/(yk²)`.
pub fn own_share_variance_corrected(x: u64, y: u64, k: usize) -> f64 {
    own_share_variance(x, y, k) / k as f64
}

/// Expected aggregate noise other flows add to one specific counter.
/// Corrected form (see DESIGN.md erratum): every one of the `n = Q·μ`
/// units lands in a given counter with probability `1/L`, so
/// `E(Z_total) = n/L`. (The paper's Eq. 15 reads `Qμ/(Lk)`.)
pub fn expected_noise_per_counter(total_packets: u64, counters: usize) -> f64 {
    total_packets as f64 / counters as f64
}

/// Expected value of a mapped counter of a flow of size `x`
/// (Eq. 18 with the corrected noise term): `E(X) = x/k + n/L`.
pub fn expected_counter_value(x: u64, k: usize, total_packets: u64, counters: usize) -> f64 {
    expected_own_share(x, k) + expected_noise_per_counter(total_packets, counters)
}

/// Probability that one eviction's remainder unit increments a given
/// mapped counter: `1/k` (the Bernoulli of Eq. 4).
pub fn remainder_hit_probability(k: usize) -> f64 {
    1.0 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq10_eviction_count() {
        assert!((expected_evictions(270, 54) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn eq12_own_share() {
        assert!((expected_own_share(300, 3) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn eq14_variance_zero_for_k1() {
        assert_eq!(own_share_variance(1000, 54, 1), 0.0);
        assert!(own_share_variance(1000, 54, 3) > 0.0);
    }

    #[test]
    fn corrected_variance_is_k_times_smaller() {
        let paper = own_share_variance(540, 55, 3);
        let fixed = own_share_variance_corrected(540, 55, 3);
        assert!((paper / fixed - 3.0).abs() < 1e-12);
    }

    #[test]
    fn corrected_noise_term() {
        assert!((expected_noise_per_counter(100_000, 1000) - 100.0).abs() < 1e-12);
        assert!(
            (expected_counter_value(300, 3, 100_000, 1000) - 200.0).abs() < 1e-12
        );
    }
}
