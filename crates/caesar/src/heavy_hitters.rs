//! Heavy-hitter detection on top of the sketch.
//!
//! The paper motivates per-flow measurement with applications like
//! intrusion detection and scheduling (§1.1) — operationally those are
//! threshold queries: "which flows exceed T packets?". A shared-counter
//! sketch answers them for any candidate set (the sketch stores no
//! flow IDs; candidates come from the cache, a sampler, or the query
//! workload itself), and the detection quality is a direct function of
//! the estimator's noise floor.

use crate::config::Estimator;
use crate::pipeline::Caesar;

/// A flow flagged as a heavy hitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hitter {
    /// The flow ID.
    pub flow: u64,
    /// Estimated size.
    pub estimate: f64,
}

/// Detection quality against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionReport {
    /// Correctly flagged hitters.
    pub true_positives: usize,
    /// Flagged flows that are not hitters.
    pub false_positives: usize,
    /// Hitters that were missed.
    pub false_negatives: usize,
}

impl DetectionReport {
    /// Precision in `[0, 1]` (1.0 when nothing was flagged).
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            1.0
        } else {
            self.true_positives as f64 / flagged as f64
        }
    }

    /// Recall in `[0, 1]` (1.0 when there are no hitters).
    pub fn recall(&self) -> f64 {
        let actual = self.true_positives + self.false_negatives;
        if actual == 0 {
            1.0
        } else {
            self.true_positives as f64 / actual as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl Caesar {
    /// Flag every candidate whose estimate reaches `threshold`,
    /// descending by estimate. Call [`Caesar::finish`] first.
    pub fn heavy_hitters(
        &self,
        candidates: impl IntoIterator<Item = u64>,
        threshold: f64,
        estimator: Estimator,
    ) -> Vec<Hitter> {
        let mut out: Vec<Hitter> = candidates
            .into_iter()
            .filter_map(|flow| {
                let estimate = self.estimate(flow, estimator).clamped();
                (estimate >= threshold).then_some(Hitter { flow, estimate })
            })
            .collect();
        out.sort_by(|a, b| {
            b.estimate
                .partial_cmp(&a.estimate)
                .expect("estimates are finite")
                .then(a.flow.cmp(&b.flow))
        });
        out
    }

    /// The top `k` candidates by estimated size.
    pub fn top_k(
        &self,
        candidates: impl IntoIterator<Item = u64>,
        k: usize,
        estimator: Estimator,
    ) -> Vec<Hitter> {
        let mut all = self.heavy_hitters(candidates, f64::MIN, estimator);
        all.truncate(k);
        all
    }
}

/// Score a detection against ground truth: `truth` yields
/// `(flow, actual_size)` for every real flow.
pub fn score_detection(
    flagged: &[Hitter],
    truth: impl IntoIterator<Item = (u64, u64)>,
    threshold: u64,
) -> DetectionReport {
    use hashkit::IdHashSet;
    let flagged_set: IdHashSet = flagged.iter().map(|h| h.flow).collect();
    let mut report = DetectionReport {
        true_positives: 0,
        false_positives: 0,
        false_negatives: 0,
    };
    let mut real_hitters = IdHashSet::default();
    for (flow, actual) in truth {
        if actual >= threshold {
            real_hitters.insert(flow);
            if flagged_set.contains(&flow) {
                report.true_positives += 1;
            } else {
                report.false_negatives += 1;
            }
        }
    }
    report.false_positives = flagged
        .iter()
        .filter(|h| !real_hitters.contains(&h.flow))
        .count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CaesarConfig;

    fn build() -> (Caesar, Vec<(u64, u64)>) {
        // Flows 0..50 with sizes 100·(i+1); flows 40+ are the hitters.
        let mut c = Caesar::new(CaesarConfig {
            cache_entries: 64,
            entry_capacity: 54,
            counters: 8192,
            k: 3,
            ..CaesarConfig::default()
        });
        let mut truth = Vec::new();
        for f in 0..50u64 {
            let size = 100 * (f + 1);
            truth.push((f, size));
            for _ in 0..size {
                c.record(f);
            }
        }
        c.finish();
        (c, truth)
    }

    #[test]
    fn detects_exactly_the_large_flows() {
        let (c, truth) = build();
        let hitters = c.heavy_hitters(0..50u64, 4050.0, Estimator::Csm);
        let report = score_detection(&hitters, truth.iter().copied(), 4050);
        assert_eq!(report.false_negatives, 0, "{report:?}");
        assert!(report.precision() > 0.85, "{report:?}");
        assert!(report.f1() > 0.9, "{report:?}");
        // Sorted descending.
        for w in hitters.windows(2) {
            assert!(w[0].estimate >= w[1].estimate);
        }
    }

    #[test]
    fn top_k_returns_the_biggest() {
        let (c, _) = build();
        let top = c.top_k(0..50u64, 3, Estimator::Csm);
        assert_eq!(top.len(), 3);
        // Sharing noise can reorder near-equal flows; the top-3 *set*
        // must still be the three biggest.
        let mut flows: Vec<u64> = top.iter().map(|h| h.flow).collect();
        flows.sort_unstable();
        assert_eq!(flows, vec![47, 48, 49]);
    }

    #[test]
    fn empty_candidates_yield_empty_report() {
        let (c, truth) = build();
        let hitters = c.heavy_hitters(std::iter::empty(), 100.0, Estimator::Csm);
        assert!(hitters.is_empty());
        let report = score_detection(&hitters, truth.iter().copied(), 100);
        assert_eq!(report.precision(), 1.0);
        assert_eq!(report.recall(), 0.0);
    }

    #[test]
    fn report_arithmetic() {
        let r = DetectionReport { true_positives: 8, false_positives: 2, false_negatives: 2 };
        assert!((r.precision() - 0.8).abs() < 1e-12);
        assert!((r.recall() - 0.8).abs() < 1e-12);
        assert!((r.f1() - 0.8).abs() < 1e-12);
    }
}
