//! Maximum Likelihood estimation Method (MLM, §5.2).
//!
//! The counter values are modelled as i.i.d. Gaussians
//! `W_i ~ N(μ_X, Δ_X)` (Eq. 24). **Erratum fixed here** (see
//! DESIGN.md): a flow's counter absorbs `n/L` expected noise — each of
//! the `n = Q·μ` off-chip units lands in a specific counter with
//! probability `1/L` — so `μ_X = x/k + n/L`, not the paper's
//! `x/k + Qμ/(Lk)`; the RCS paper CAESAR builds on subtracts the same
//! `k·n/L` from the counter sum. With `s = x + k·n/L` and
//! `c = (k−1)²/y`, the variance keeps the paper's structure
//! `Δ_X = c·s/k` and maximizing the Gaussian likelihood gives the
//! quadratic `s² + k·c·s − k·Σ w_i² = 0`, hence
//!
//! ```text
//! x̂ = ½·( √(k²c² + 4k·Σ w_i²) − k·c ) − k·n/L
//! ```
//!
//! (the paper's closed form below Eq. 28 with the corrected noise
//! mass). The asymptotic variance follows the paper's Fisher
//! information result (Eq. 31):
//!
//! ```text
//! D(x̂) = 2k²Δ_X² / (2Δ_X + (k−1)⁴/y²)
//! ```

use super::{Estimate, EstimateParams, LANES};

/// Estimate the flow size from its `k` counter values.
///
/// # Panics
/// Panics if `counters.len()` disagrees with `params.k`.
pub fn estimate(counters: &[u64], params: &EstimateParams) -> Estimate {
    params.validate();
    assert_eq!(
        counters.len(),
        params.k,
        "expected {} counter values, got {}",
        params.k,
        counters.len()
    );
    let k = params.k as f64;
    let y = params.y as f64;
    let noise = params.noise_per_counter(); // n/L
    let c = (k - 1.0) * (k - 1.0) / y; // (k−1)²/y
    let sum_sq: f64 = counters.iter().map(|&w| (w as f64) * (w as f64)).sum();
    // Solve s² + k·c·s = k·Σw² for s = x + k·n/L, then remove the noise.
    let s = 0.5 * ((k * k * c * c + 4.0 * k * sum_sq).sqrt() - k * c);
    let value = s - k * noise;
    Estimate {
        value,
        variance: variance(value.max(0.0), params),
    }
}

/// Asymptotic variance (Eq. 31) at true size `x`.
pub fn variance(x: f64, params: &EstimateParams) -> f64 {
    let k = params.k as f64;
    let y = params.y as f64;
    let n = params.total_packets as f64;
    let l = params.counters as f64;
    let delta = x * (k - 1.0) * (k - 1.0) / (y * k) + n * (k - 1.0) * (k - 1.0) / (y * k * l);
    let denom = 2.0 * delta + (k - 1.0).powi(4) / (y * y);
    if denom == 0.0 {
        // k = 1 degenerates to a deterministic split: no model variance.
        0.0
    } else {
        2.0 * k * k * delta * delta / denom
    }
}

/// MLM with the flow-independent subexpressions hoisted out — the batch
/// query kernel (see `csm::Prepared` for the scheme).
///
/// **Bit-identity contract**: only *constant* subexpressions are
/// precomputed, each with the operation order of the per-call path;
/// `x`-dependent chains keep their original evaluation order, so the
/// result is bit-identical to `estimate(counters, params)` (pinned by
/// unit tests and the parallel-query equivalence suite).
#[derive(Debug, Clone, Copy)]
pub struct Prepared {
    k: usize,
    km1: f64,
    /// `k²c²` of the closed form (constant under the square root).
    kkcc: f64,
    /// `4k` (multiplies the flow's `Σw²`).
    four_k: f64,
    /// `k·c`.
    kc: f64,
    /// `k · n/L` — the noise mass removed from `s`.
    k_noise: f64,
    /// `y·k` (denominator of the `x`-dependent delta term).
    yk: f64,
    /// The constant delta term `n(k−1)²/(ykL)`.
    noise_delta: f64,
    /// `(k−1)⁴/y²`.
    quart: f64,
    /// `2k²` (numerator prefix of Eq. 31, computed as `2·k·k`).
    two_kk: f64,
}

impl Prepared {
    /// Hoist the constants for `params`.
    ///
    /// # Panics
    /// Panics on invalid `params` (same checks as the per-call path).
    pub fn new(params: &EstimateParams) -> Self {
        params.validate();
        let k = params.k as f64;
        let y = params.y as f64;
        let n = params.total_packets as f64;
        let l = params.counters as f64;
        let c = (k - 1.0) * (k - 1.0) / y;
        Self {
            k: params.k,
            km1: k - 1.0,
            kkcc: k * k * c * c,
            four_k: 4.0 * k,
            kc: k * c,
            k_noise: k * params.noise_per_counter(),
            yk: y * k,
            noise_delta: n * (k - 1.0) * (k - 1.0) / (y * k * l),
            quart: (k - 1.0).powi(4) / (y * y),
            two_kk: 2.0 * k * k,
        }
    }

    /// Per-flow kernel; bit-identical to [`estimate`](estimate()).
    ///
    /// # Panics
    /// Panics if `counters.len() != k`.
    #[inline]
    pub fn estimate(&self, counters: &[u64]) -> Estimate {
        assert_eq!(counters.len(), self.k, "expected {} counter values", self.k);
        let sum_sq: f64 = counters.iter().map(|&w| (w as f64) * (w as f64)).sum();
        let s = 0.5 * ((self.kkcc + self.four_k * sum_sq).sqrt() - self.kc);
        let value = s - self.k_noise;
        let x = value.max(0.0);
        // Same chains as `variance`: ((x·(k−1))·(k−1))/(y·k) + const.
        let delta = x * self.km1 * self.km1 / self.yk + self.noise_delta;
        let denom = 2.0 * delta + self.quart;
        let variance = if denom == 0.0 {
            0.0
        } else {
            self.two_kk * delta * delta / denom
        };
        Estimate { value, variance }
    }

    /// Lane kernel: [`estimate`](Prepared::estimate) for [`LANES`] flows
    /// at once from their precomputed `Σw²` values. Elementwise across
    /// lanes with the scalar operation order inside each lane (the
    /// `denom == 0` guard becomes a per-lane select), so lane `i` is
    /// bit-identical to the scalar kernel on flow `i` — and the packed
    /// `sqrtpd` this loop compiles to is what the asm-shape guard in
    /// `scripts/check.sh --simd-smoke` pins, via the standalone
    /// non-inlined instantiation [`crate::query::asm_probe_mlm_lanes`].
    #[inline]
    pub fn estimate_lanes(&self, sum_sq: &[f64; LANES]) -> [Estimate; LANES] {
        let mut value = [0f64; LANES];
        for lane in 0..LANES {
            let s = 0.5 * ((self.kkcc + self.four_k * sum_sq[lane]).sqrt() - self.kc);
            value[lane] = s - self.k_noise;
        }
        let mut variance = [0f64; LANES];
        for lane in 0..LANES {
            let x = value[lane].max(0.0);
            let delta = x * self.km1 * self.km1 / self.yk + self.noise_delta;
            let denom = 2.0 * delta + self.quart;
            variance[lane] = if denom == 0.0 { 0.0 } else { self.two_kk * delta * delta / denom };
        }
        let mut out = [Estimate { value: 0.0, variance: 0.0 }; LANES];
        for lane in 0..LANES {
            out[lane] = Estimate { value: value[lane], variance: variance[lane] };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EstimateParams {
        EstimateParams { k: 3, y: 54, counters: 1000, total_packets: 100_000 }
    }

    #[test]
    fn recovers_noiseless_uniform_counters() {
        // No other flows: n == x, L huge so noise ≈ 0. x = 300 split
        // evenly: w_i = 100.
        let p = EstimateParams { k: 3, y: 54, counters: 1_000_000_000, total_packets: 300 };
        let e = estimate(&[100, 100, 100], &p);
        assert!((e.value - 300.0).abs() < 0.2, "value = {}", e.value);
    }

    #[test]
    fn denoises_uniform_noise() {
        let p = params(); // noise/counter = 100
        // True x = 450: counters ≈ 150 + 100 = 250 each.
        let e = estimate(&[250, 250, 250], &p);
        assert!((e.value - 450.0).abs() < 2.0, "value = {}", e.value);
    }

    #[test]
    fn k1_matches_csm() {
        let p = EstimateParams { k: 1, ..params() };
        let mlm = estimate(&[500], &p);
        let csm = super::super::csm::estimate(&[500], &p);
        assert!((mlm.value - csm.value).abs() < 1e-6);
        assert_eq!(mlm.variance, 0.0);
    }

    #[test]
    fn mlm_variance_below_csm_variance() {
        // §5.2: MLM is the more accurate (lower-variance) estimator.
        let p = params();
        for x in [10.0, 100.0, 1000.0, 10_000.0] {
            let m = variance(x, &p);
            let c = super::super::csm::variance(x, &p);
            assert!(m < c, "x = {x}: MLM {m} !< CSM {c}");
        }
    }

    #[test]
    fn zero_counters_give_negative_or_zero_estimate() {
        let p = params();
        let e = estimate(&[0, 0, 0], &p);
        assert!(e.value <= 0.0);
        assert_eq!(e.clamped(), 0.0);
    }

    #[test]
    #[should_panic(expected = "expected 3 counter values")]
    fn wrong_arity_panics() {
        estimate(&[1, 2, 3, 4], &params());
    }

    #[test]
    fn prepared_is_bit_identical_to_per_call() {
        for p in [
            params(),
            EstimateParams { k: 1, ..params() },
            EstimateParams { k: 5, y: 1, counters: 17, total_packets: 3 },
            EstimateParams { k: 2, y: 54, counters: 2048, total_packets: 0 },
        ] {
            let prep = Prepared::new(&p);
            let mut w = vec![0u64; p.k];
            let mut x = 0xBEEFu64;
            for _ in 0..500 {
                for v in w.iter_mut() {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    *v = x >> 40;
                }
                let a = estimate(&w, &p);
                let b = prep.estimate(&w);
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "{p:?} w={w:?}");
                assert_eq!(a.variance.to_bits(), b.variance.to_bits(), "{p:?} w={w:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "expected 3 counter values")]
    fn prepared_wrong_arity_panics() {
        Prepared::new(&params()).estimate(&[1, 2]);
    }
}
