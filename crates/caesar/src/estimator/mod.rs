//! The query-phase estimators (§5).
//!
//! Both estimators see the same inputs: the flow's `k` mapped counter
//! values `w_0..w_{k−1}` and the global operating point
//! ([`EstimateParams`]). They differ in how they de-noise:
//!
//! * [`csm`] subtracts the expected aggregate noise from the counter
//!   sum (moment estimation, Eq. 20);
//! * [`mlm`] maximizes the Gaussian-approximated likelihood of the
//!   observed counter values (closed form below Eq. 28).

pub mod csm;
pub mod mlm;

use crate::gaussian::z_alpha;

/// Lane width of the batch sweep kernels ([`csm::Prepared::estimate_lanes`],
/// [`mlm::Prepared::estimate_lanes`]): four flows evaluated per call as
/// `[u64; 4]`/`[f64; 4]` element arrays, matching [`hashkit::HASH_LANES`]
/// so one index-fill chunk feeds one kernel call. Each lane's float chain
/// keeps the exact scalar operation order — lanes are independent, so
/// vectorizing across them cannot reassociate within a flow.
pub const LANES: usize = hashkit::HASH_LANES;

/// Global parameters both estimators need — the paper's `k`, `y`, `L`
/// and the noise mass `Q·μ = n` (total packets recorded off-chip).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateParams {
    /// Mapped counters per flow.
    pub k: usize,
    /// Cache entry capacity `y` (RCS corresponds to `y = 1`).
    pub y: u64,
    /// Number of SRAM counters `L`.
    pub counters: usize,
    /// Total packets recorded in SRAM, `n = Q·μ`.
    pub total_packets: u64,
}

impl EstimateParams {
    /// Expected noise contributed to one counter, `Q·μ / L` — under
    /// uniform mapping every one of the `n` units lands in a given
    /// counter with probability `1/L` (Eq. 15 summed over flows).
    pub fn noise_per_counter(&self) -> f64 {
        self.total_packets as f64 / self.counters as f64
    }

    fn validate(&self) {
        assert!(self.k >= 1, "k must be >= 1");
        assert!(self.y >= 1, "y must be >= 1");
        assert!(self.counters >= 1, "L must be >= 1");
    }
}

/// A point estimate with its variance model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated flow size `x̂` (may be negative for tiny flows buried
    /// in noise; clamp if a physical size is required).
    pub value: f64,
    /// Model variance `D(x̂)` with `x̂` plugged in for the unknown `x`.
    pub variance: f64,
}

impl Estimate {
    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// Two-sided confidence interval at reliability `alpha`
    /// (Eqs. 26/32): `x̂ ± Z_α·σ`.
    pub fn confidence_interval(&self, alpha: f64) -> (f64, f64) {
        let half = z_alpha(alpha) * self.std_dev();
        (self.value - half, self.value + half)
    }

    /// The estimate clamped to physically possible sizes.
    pub fn clamped(&self) -> f64 {
        self.value.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_per_counter() {
        let p = EstimateParams { k: 3, y: 54, counters: 100, total_packets: 5000 };
        assert!((p.noise_per_counter() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_interval_is_symmetric() {
        let e = Estimate { value: 100.0, variance: 25.0 };
        let (lo, hi) = e.confidence_interval(0.95);
        assert!((100.0 - lo - (hi - 100.0)).abs() < 1e-9);
        assert!((hi - 100.0 - 1.959964 * 5.0).abs() < 1e-3);
    }

    #[test]
    fn clamp_negative() {
        let e = Estimate { value: -3.0, variance: 1.0 };
        assert_eq!(e.clamped(), 0.0);
    }
}
