//! Counter Sum estimation Method (CSM, §5.1).
//!
//! Moment estimation. **Erratum fixed here** (see DESIGN.md): every
//! one of the `n = Q·μ` units recorded off-chip lands in a specific
//! counter with probability `1/L`, so each of the flow's `k` counters
//! absorbs `n/L` expected noise and the counter sum has expectation
//! `x + k·n/L` — the paper's Eq. 20 subtracts only `Qμ/L`, while the
//! RCS scheme it generalizes subtracts the same `k·n/L` we use:
//!
//! ```text
//! x̂ = Σ_r S_f[r] − k·Qμ/L                     (Eq. 20, corrected)
//! ```
//!
//! which is unbiased, with the paper's model variance
//!
//! ```text
//! D(x̂) ≈ x·k(k−1)²/y + Qμ·k(k−1)²/(yL)        (Eq. 22)
//! ```

use super::{Estimate, EstimateParams, LANES};

/// Estimate the flow size from its `k` counter values.
///
/// # Panics
/// Panics if `counters.len()` disagrees with `params.k`.
pub fn estimate(counters: &[u64], params: &EstimateParams) -> Estimate {
    params.validate();
    assert_eq!(
        counters.len(),
        params.k,
        "expected {} counter values, got {}",
        params.k,
        counters.len()
    );
    let sum: u64 = counters.iter().sum();
    let value = sum as f64 - params.noise_per_counter() * params.k as f64;
    Estimate {
        value,
        variance: variance(value.max(0.0), params),
    }
}

/// Analytic variance (Eq. 22) at true size `x`.
pub fn variance(x: f64, params: &EstimateParams) -> f64 {
    let k = params.k as f64;
    let y = params.y as f64;
    let n = params.total_packets as f64;
    let l = params.counters as f64;
    x * k * (k - 1.0) * (k - 1.0) / y + n * k * (k - 1.0) * (k - 1.0) / (y * l)
}

/// CSM with the flow-independent subexpressions hoisted out — the batch
/// query kernel. Construct once per sweep, then call
/// [`estimate`](Prepared::estimate) per flow: validation, arity checks
/// and the noise/variance constants are paid once instead of per flow.
///
/// **Bit-identity contract**: only *constant* subexpressions are
/// precomputed, with the same operation order the per-call
/// [`estimate`](estimate()) uses; every `x`-dependent floating-point
/// chain is evaluated in the original order. The result is
/// bit-identical to `estimate(counters, params)` for every input
/// (pinned by unit tests and the parallel-query equivalence suite).
#[derive(Debug, Clone, Copy)]
pub struct Prepared {
    k: usize,
    k_f: f64,
    km1: f64,
    y_f: f64,
    /// `noise_per_counter() · k` — the aggregate noise subtracted from
    /// the counter sum.
    noise_k: f64,
    /// The constant variance term `n·k(k−1)²/(yL)`.
    noise_var: f64,
}

impl Prepared {
    /// Hoist the constants for `params`.
    ///
    /// # Panics
    /// Panics on invalid `params` (same checks as the per-call path).
    pub fn new(params: &EstimateParams) -> Self {
        params.validate();
        let k = params.k as f64;
        let y = params.y as f64;
        let n = params.total_packets as f64;
        let l = params.counters as f64;
        Self {
            k: params.k,
            k_f: k,
            km1: k - 1.0,
            y_f: y,
            noise_k: params.noise_per_counter() * k,
            noise_var: n * k * (k - 1.0) * (k - 1.0) / (y * l),
        }
    }

    /// Per-flow kernel; bit-identical to [`estimate`](estimate()).
    ///
    /// # Panics
    /// Panics if `counters.len() != k`.
    #[inline]
    pub fn estimate(&self, counters: &[u64]) -> Estimate {
        assert_eq!(counters.len(), self.k, "expected {} counter values", self.k);
        let sum: u64 = counters.iter().sum();
        let value = sum as f64 - self.noise_k;
        let x = value.max(0.0);
        Estimate {
            value,
            // Same chain as `variance`: ((x·k)·(k−1))·(k−1)/y + const.
            variance: x * self.k_f * self.km1 * self.km1 / self.y_f + self.noise_var,
        }
    }

    /// Lane kernel: [`estimate`](Prepared::estimate) for [`LANES`] flows
    /// at once from their precomputed counter sums, pre-converted to
    /// `f64` by the caller. The sums must still be accumulated in `u64`
    /// (the scalar kernel's order) and converted once at the end —
    /// `u64 as f64` yields the same value wherever it runs, so hoisting
    /// the convert keeps bit-identity while handing this kernel a pure
    /// float chain. That matters: with integer converts heading each
    /// lane's chain, LLVM's SLP pass refuses to pack any of the float
    /// arithmetic; fed `f64`, the subtract/max/mul/div chains vectorize
    /// cleanly. Every loop is elementwise across lanes with the scalar
    /// kernel's operation order inside each lane, so lane `i` of the
    /// output is bit-identical to `estimate` on flow `i`'s counters.
    ///
    /// The output is planar (`(values, variances)`), not an array of
    /// [`Estimate`]: the interleaved struct stores are the SLP
    /// vectorizer's seed points, and adjacent `{value, variance}`
    /// pairs are computed by different trees, so an AoS return defeats
    /// packing — two homogeneous arrays give it isomorphic adjacent
    /// stores instead. The asm-shape guard (`scripts/check.sh
    /// --simd-smoke`) inspects this kernel through
    /// [`crate::query::asm_probe_csm_lanes`], which pins a standalone
    /// non-inlined instantiation.
    #[inline]
    pub fn estimate_lanes(&self, sums_f: &[f64; LANES]) -> ([f64; LANES], [f64; LANES]) {
        let mut value = [0f64; LANES];
        for lane in 0..LANES {
            value[lane] = sums_f[lane] - self.noise_k;
        }
        let mut variance = [0f64; LANES];
        for lane in 0..LANES {
            let x = value[lane].max(0.0);
            variance[lane] = x * self.k_f * self.km1 * self.km1 / self.y_f + self.noise_var;
        }
        (value, variance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EstimateParams {
        EstimateParams { k: 3, y: 54, counters: 1000, total_packets: 100_000 }
    }

    #[test]
    fn subtracts_expected_noise() {
        let p = params();
        // noise per counter = 100. Counters hold 150 each = 450 total.
        let e = estimate(&[150, 150, 150], &p);
        assert!((e.value - (450.0 - 300.0)).abs() < 1e-9);
    }

    #[test]
    fn noise_only_counters_estimate_zero() {
        let p = params();
        let e = estimate(&[100, 100, 100], &p);
        assert!(e.value.abs() < 1e-9);
    }

    #[test]
    fn k1_is_single_counter_minus_noise() {
        let p = EstimateParams { k: 1, ..params() };
        let e = estimate(&[500], &p);
        assert!((e.value - 400.0).abs() < 1e-9);
        // k = 1 ⇒ (k−1)² = 0 ⇒ zero model variance.
        assert_eq!(e.variance, 0.0);
    }

    #[test]
    fn variance_grows_with_k_and_shrinks_with_y() {
        let base = variance(1000.0, &params());
        let more_k = variance(1000.0, &EstimateParams { k: 5, ..params() });
        let more_y = variance(1000.0, &EstimateParams { y: 108, ..params() });
        assert!(more_k > base);
        assert!(more_y < base);
    }

    #[test]
    #[should_panic(expected = "expected 3 counter values")]
    fn wrong_arity_panics() {
        estimate(&[1, 2], &params());
    }

    #[test]
    fn prepared_is_bit_identical_to_per_call() {
        for p in [
            params(),
            EstimateParams { k: 1, ..params() },
            EstimateParams { k: 5, y: 1, counters: 17, total_packets: 3 },
            EstimateParams { k: 2, y: 54, counters: 2048, total_packets: 0 },
        ] {
            let prep = Prepared::new(&p);
            let mut w = vec![0u64; p.k];
            let mut x = 0xDEADu64;
            for _ in 0..500 {
                for v in w.iter_mut() {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    *v = x >> 40; // realistic counter magnitudes
                }
                let a = estimate(&w, &p);
                let b = prep.estimate(&w);
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "{p:?} w={w:?}");
                assert_eq!(a.variance.to_bits(), b.variance.to_bits(), "{p:?} w={w:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "expected 3 counter values")]
    fn prepared_wrong_arity_panics() {
        Prepared::new(&params()).estimate(&[1, 2]);
    }
}
