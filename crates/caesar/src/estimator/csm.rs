//! Counter Sum estimation Method (CSM, §5.1).
//!
//! Moment estimation. **Erratum fixed here** (see DESIGN.md): every
//! one of the `n = Q·μ` units recorded off-chip lands in a specific
//! counter with probability `1/L`, so each of the flow's `k` counters
//! absorbs `n/L` expected noise and the counter sum has expectation
//! `x + k·n/L` — the paper's Eq. 20 subtracts only `Qμ/L`, while the
//! RCS scheme it generalizes subtracts the same `k·n/L` we use:
//!
//! ```text
//! x̂ = Σ_r S_f[r] − k·Qμ/L                     (Eq. 20, corrected)
//! ```
//!
//! which is unbiased, with the paper's model variance
//!
//! ```text
//! D(x̂) ≈ x·k(k−1)²/y + Qμ·k(k−1)²/(yL)        (Eq. 22)
//! ```

use super::{Estimate, EstimateParams};

/// Estimate the flow size from its `k` counter values.
///
/// # Panics
/// Panics if `counters.len()` disagrees with `params.k`.
pub fn estimate(counters: &[u64], params: &EstimateParams) -> Estimate {
    params.validate();
    assert_eq!(
        counters.len(),
        params.k,
        "expected {} counter values, got {}",
        params.k,
        counters.len()
    );
    let sum: u64 = counters.iter().sum();
    let value = sum as f64 - params.noise_per_counter() * params.k as f64;
    Estimate {
        value,
        variance: variance(value.max(0.0), params),
    }
}

/// Analytic variance (Eq. 22) at true size `x`.
pub fn variance(x: f64, params: &EstimateParams) -> f64 {
    let k = params.k as f64;
    let y = params.y as f64;
    let n = params.total_packets as f64;
    let l = params.counters as f64;
    x * k * (k - 1.0) * (k - 1.0) / y + n * k * (k - 1.0) * (k - 1.0) / (y * l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EstimateParams {
        EstimateParams { k: 3, y: 54, counters: 1000, total_packets: 100_000 }
    }

    #[test]
    fn subtracts_expected_noise() {
        let p = params();
        // noise per counter = 100. Counters hold 150 each = 450 total.
        let e = estimate(&[150, 150, 150], &p);
        assert!((e.value - (450.0 - 300.0)).abs() < 1e-9);
    }

    #[test]
    fn noise_only_counters_estimate_zero() {
        let p = params();
        let e = estimate(&[100, 100, 100], &p);
        assert!(e.value.abs() < 1e-9);
    }

    #[test]
    fn k1_is_single_counter_minus_noise() {
        let p = EstimateParams { k: 1, ..params() };
        let e = estimate(&[500], &p);
        assert!((e.value - 400.0).abs() < 1e-9);
        // k = 1 ⇒ (k−1)² = 0 ⇒ zero model variance.
        assert_eq!(e.variance, 0.0);
    }

    #[test]
    fn variance_grows_with_k_and_shrinks_with_y() {
        let base = variance(1000.0, &params());
        let more_k = variance(1000.0, &EstimateParams { k: 5, ..params() });
        let more_y = variance(1000.0, &EstimateParams { y: 108, ..params() });
        assert!(more_k > base);
        assert!(more_y < base);
    }

    #[test]
    #[should_panic(expected = "expected 3 counter values")]
    fn wrong_arity_panics() {
        estimate(&[1, 2], &params());
    }
}
