//! Sharded multi-core construction phase — a real ingest pipeline.
//!
//! A real multi-queue line card (RSS) already partitions packets by a
//! hash of the flow ID, so per-flow state never crosses cores. The same
//! structure parallelizes CAESAR's construction phase perfectly:
//!
//! * the trace is routed into per-shard batches with **one** O(n)
//!   partition pass ([`support::par::partition_by`]) — total work is
//!   O(n + n/T per worker), not the O(T·n) "every shard replays the
//!   whole trace and filters" pattern the first implementation used
//!   (retained as [`ConcurrentCaesar::build_replay`] for equivalence
//!   tests and before/after benchmarks);
//! * each shard owns a private on-chip cache (the `M` entries are
//!   divided with the remainder distributed — see
//!   [`per_shard_entries`] — so the total on-chip budget is exact);
//! * all shards push evictions through a per-shard
//!   [`WritebackBuffer`] acting as a **shard-local SRAM segment**
//!   ([`WRITEBACK_ACCUMULATE_ALL`]): the whole delta accumulates in a
//!   dense private array and merges into the shared
//!   [`AtomicCounterArray`] exactly once per shard — saturating adds
//!   commute, so the merge order cannot change any final counter, and
//!   the shared array sees one CAS sequence per distinct counter per
//!   shard for the entire run;
//! * the shared offered-units/saturation tallies are **striped** per
//!   shard ([`AtomicCounterArray::with_stripes`]) so not even the
//!   bookkeeping RMWs share a cache line;
//! * streaming ingest rides a lock-free [`support::spsc`] ring per
//!   shard (cache-line-padded indices, batched acquire/release)
//!   instead of a mutex-guarded `mpsc` channel;
//! * the query phase is identical to the sequential sketch.
//!
//! Because flows are partitioned (not packets), every shard's eviction
//! sequence is independent of thread scheduling, and because saturating
//! adds commute, the buffered/batched writeback cannot change any final
//! counter value — the sketch is **deterministic** for a fixed
//! configuration across runs and across every build mode
//! ([`ConcurrentCaesar::build`] / [`ConcurrentCaesar::build_stream`] /
//! [`ConcurrentCaesar::build_replay`] / [`BuildMode::Pinned`]), which
//! the tests pin bit-exactly. With **one shard** the worker's seeds
//! equal the sequential [`crate::Caesar`]'s, so the whole family is
//! additionally pinned byte-identical to the sequential oracle.

use crate::atomic_sram::{
    AtomicCounterArray, SegmentSink, WritebackBuffer, WritebackSink, WritebackState,
    WRITEBACK_ACCUMULATE_ALL,
};
use crate::config::{CaesarConfig, Estimator};
use crate::estimator::{csm, mlm, Estimate, EstimateParams};
use crate::merge::{MergeError, SketchDelta, SketchFingerprint, SketchPayload};
use crate::packed::PackedCounterArray;
use crate::pipeline::{sram_prefetch_min_bytes, PackedCaesar};
use crate::query::QueryHealth;
use cachesim::{CacheConfig, CacheTable, CacheTableState};
use hashkit::mix::{bucket, mix64};
use hashkit::{KCounterMap, K_MAX};
use support::par::partition_by;
use support::rand::{rngs::StdRng, Rng, SeedableRng};
use support::spsc;

/// Flows routed per streaming chunk (amortizes ring publishes over
/// many packets while keeping partition→consume latency bounded).
pub(crate) const STREAM_CHUNK: usize = 1024;

/// Default in-flight bound of each shard's SPSC ring: a few chunks of
/// headroom so a transiently slow shard does not stall the front end,
/// small enough that a persistently slow shard back-pressures it
/// instead of buffering the whole trace.
pub const DEFAULT_RING_CAPACITY: usize = 4 * STREAM_CHUNK;

/// How [`ConcurrentCaesar::build`] executes the shard workers.
///
/// All modes consume exactly the same per-shard flow subsequences, so
/// they produce **bit-identical** sketches (pinned by tests); they only
/// trade off how the O(n/T per worker) consumption half is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildMode {
    /// Route the trace into per-shard batches with one O(n) partition
    /// pass, then consume each batch on its own scoped thread through
    /// the batched (probe-one-ahead) record path — the multicore shape
    /// for a trace that is already resident in memory.
    Threaded,
    /// Route each packet straight to its shard worker on the calling
    /// thread — no partition buffers, no thread spawn. The right shape
    /// when only one hardware thread is available: same total work,
    /// none of the coordination cost.
    Inline,
    /// One worker thread **pinned per shard**, each consuming its own
    /// lock-free [`support::spsc`] ring in batches while the calling
    /// thread plays the RSS front end — the line-card shape, with
    /// partitioning overlapped with consumption. This is what
    /// [`ConcurrentCaesar::build_stream`] uses under the hood; as a
    /// [`BuildMode`] it runs the same transport over an in-memory
    /// slice.
    Pinned,
    /// [`BuildMode::Threaded`] when `available_parallelism() > 1`,
    /// otherwise [`BuildMode::Inline`].
    Auto,
}

impl BuildMode {
    fn resolve(self) -> BuildMode {
        match self {
            BuildMode::Auto => {
                if support::par::host_parallelism() > 1 {
                    BuildMode::Threaded
                } else {
                    BuildMode::Inline
                }
            }
            mode => mode,
        }
    }
}

/// Split the on-chip budget of `cache_entries` entries over `shards`
/// private caches.
///
/// Rule: the distributed total is **exactly** `max(cache_entries,
/// shards)` — shard `i` receives `⌊total/shards⌋ + 1` if
/// `i < total mod shards`, else `⌊total/shards⌋`. In particular:
///
/// * when `cache_entries >= shards` the budget is conserved exactly
///   (the old `(M / T).max(1)` rule silently dropped the remainder —
///   M = 130, T = 4 lost 2 entries);
/// * when `cache_entries < shards` every shard still needs one entry to
///   make progress, so the budget inflates to `shards` — explicitly,
///   not as a side effect (M = 4, T = 8 becomes 8, and callers can see
///   why).
///
/// # Panics
/// Panics if `shards == 0`.
pub fn per_shard_entries(cache_entries: usize, shards: usize) -> Vec<usize> {
    assert!(shards >= 1, "need at least one shard");
    let total = cache_entries.max(shards);
    let base = total / shards;
    let rem = total % shards;
    (0..shards).map(|i| base + usize::from(i < rem)).collect()
}

/// Aggregate statistics of one construction phase's ingest pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Eviction events pushed off-chip (overflow + replacement + final
    /// dump), summed over shards.
    pub evictions: u64,
    /// Individual `(counter, increment)` updates staged in writeback
    /// buffers.
    pub staged_updates: u64,
    /// Updates that reached the shared SRAM after coalescing.
    pub flushed_updates: u64,
    /// Writeback batch flushes performed.
    pub flushes: u64,
}

impl IngestStats {
    /// Staged-to-flushed ratio: how many CAS sequences each hot-counter
    /// batch saved (1.0 = no coalescing happened).
    pub fn coalescing_factor(&self) -> f64 {
        if self.flushed_updates == 0 {
            1.0
        } else {
            self.staged_updates as f64 / self.flushed_updates as f64
        }
    }

    pub(crate) fn merge(&mut self, other: &IngestStats) {
        self.evictions += other.evictions;
        self.staged_updates += other.staged_updates;
        self.flushed_updates += other.flushed_updates;
        self.flushes += other.flushes;
    }
}

/// One shard's private construction state: cache, remainder-scatter
/// RNG, the memoized per-slot counter indices, and the writeback
/// buffer into the shared SRAM.
///
/// The worker owns **no references**: the shared SRAM and index map
/// are passed into each call, so a worker can live inside an owned
/// streaming ingest ([`InlineIngest`], the epoch-rotation wrapper's
/// engine) as easily as inside a scoped thread borrowing the arrays.
#[derive(Debug)]
pub(crate) struct ShardWorker {
    cache: CacheTable,
    rng: StdRng,
    /// Memoized counter indices, stride-`k` rows indexed by cache slot
    /// (same scheme as the sequential [`crate::Caesar`]): computed once
    /// per insert, reused by every eviction of that occupancy —
    /// Overflow, Replacement (the victim's row is consumed before the
    /// rebind refreshes it), and the FinalDump drain.
    memo: Vec<usize>,
    k: usize,
    wb: WritebackBuffer,
    /// Software-prefetch predicted SRAM rows in the batch path only
    /// when the counter array is too big to be cache-resident (see
    /// [`crate::pipeline::sram_prefetch_min_bytes`]); on small arrays
    /// the hint is pure overhead.
    prefetch_sram: bool,
    /// Reusable per-batch base-hash row — `record_batch` hashes its
    /// whole drain batch up front in lane-width chunks
    /// ([`KCounterMap::base_hashes`]). Transient scratch, not state:
    /// deliberately absent from [`ShardWorkerState`].
    base_buf: Vec<u64>,
    evictions: u64,
}

/// Serializable dynamic state of a [`ShardWorker`], for the online
/// runtime's crash-consistent snapshots. Everything a worker will ever
/// consult again is here: the cache (slots, recency list, victim RNG),
/// the remainder-scatter RNG, the memoized per-slot counter rows, the
/// staged-but-unflushed writeback segment, and the eviction count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ShardWorkerState {
    pub(crate) cache: CacheTableState,
    pub(crate) rng: [u64; 4],
    pub(crate) memo: Vec<usize>,
    pub(crate) wb: WritebackState,
    pub(crate) evictions: u64,
}

/// Shard-decorrelated cache seed; shard 0 equals the sequential
/// sketch's (`Caesar::new`) so a 1-shard build is byte-identical to
/// the sequential oracle.
fn cache_seed(cfg: &CaesarConfig, shard: usize) -> u64 {
    cfg.seed ^ 0xA11C_E5ED ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Shard-decorrelated remainder-scatter RNG seed (shard 0 sequential).
fn rng_seed(cfg: &CaesarConfig, shard: usize) -> u64 {
    cfg.seed ^ 0x0D15_EA5E ^ (shard as u64) << 32
}

impl ShardWorker {
    pub(crate) fn new(
        cfg: &CaesarConfig,
        shard: usize,
        entries: usize,
        writeback_capacity: usize,
    ) -> Self {
        Self {
            cache: CacheTable::new(CacheConfig {
                entries,
                entry_capacity: cfg.entry_capacity,
                policy: cfg.policy,
                // Shard 0's seeds are exactly the sequential sketch's
                // (`Caesar::new`): with one shard the concurrent build
                // is byte-identical to the sequential oracle, which the
                // equivalence suite pins. Higher shards decorrelate via
                // the golden-ratio multiplier.
                seed: cache_seed(cfg, shard),
            }),
            rng: StdRng::seed_from_u64(rng_seed(cfg, shard)),
            memo: vec![0usize; entries * cfg.k],
            k: cfg.k,
            wb: WritebackBuffer::striped(writeback_capacity, shard),
            prefetch_sram: cfg.counters * 8 >= sram_prefetch_min_bytes(),
            base_buf: Vec::new(),
            evictions: 0,
        }
    }

    /// Ingest one packet of `flow`.
    pub(crate) fn record<S: WritebackSink>(&mut self, flow: u64, sink: &S, kmap: &KCounterMap) {
        let r = self.cache.record_slotted(flow);
        self.apply(flow, r, sink, kmap);
    }

    /// Ingest a batch of packets through the probe-one-ahead hot path:
    /// packet `i + 1`'s cache slot is probed while packet `i` is being
    /// applied, the probe is carried forward as a slot hint (one index
    /// lookup per packet instead of two on hits), and — when the next
    /// packet will overflow its entry and the SRAM is big enough for
    /// prefetching to pay — the flow's `k` counter words are
    /// software-prefetched. Strictly equivalent to
    /// `for &f in flows { self.record(f, ..) }`: probes are read-only
    /// and the hint is tag-validated, so the sketch is byte-identical
    /// (pinned by the equivalence suite).
    pub(crate) fn record_batch<S: WritebackSink>(
        &mut self,
        flows: &[u64],
        sink: &S,
        kmap: &KCounterMap,
    ) {
        let k = self.k;
        // Hash the whole ring-drain batch up front: `base_hashes` mixes
        // the keys in lane-width chunks, and inserted flows derive
        // their `k` counter indices from the memoized base —
        // bit-identical to per-flow `fill_indices` (pinned in hashkit).
        let mut bases = std::mem::take(&mut self.base_buf);
        bases.clear();
        bases.resize(flows.len(), 0);
        kmap.base_hashes(flows, &mut bases);
        if !self.prefetch_sram {
            // Cache-resident counter array: no miss latency to hide, so
            // the probe-one-ahead pipeline is pure overhead (see
            // `sram_prefetch_min_bytes`). Plain loop, same sketch.
            for (&flow, &base) in flows.iter().zip(&bases) {
                if self.cache.record_absorbed(flow) {
                    continue;
                }
                let r = self.cache.record_slotted(flow);
                self.apply_base(flow, base, r, sink, kmap);
            }
            self.base_buf = bases;
            return;
        }
        let mut hint = flows.first().and_then(|&f| self.cache.prefetch(f));
        for (i, &flow) in flows.iter().enumerate() {
            let r = self
                .cache
                .record_slotted_hinted(flow, hint.map(|(slot, _)| slot));
            self.apply_base(flow, bases[i], r, sink, kmap);
            hint = flows.get(i + 1).and_then(|&next| {
                let probe = self.cache.prefetch(next);
                if let Some((slot, true)) = probe {
                    let start = slot as usize * k;
                    for &idx in &self.memo[start..start + k] {
                        sink.sink_prefetch(idx);
                    }
                }
                probe
            });
        }
        self.base_buf = bases;
    }

    /// Memo/spread bookkeeping for one recorded packet, shared by the
    /// per-call and batch paths.
    #[inline]
    fn apply<S: WritebackSink>(
        &mut self,
        flow: u64,
        r: cachesim::Recorded,
        sink: &S,
        kmap: &KCounterMap,
    ) {
        let start = r.slot as usize * self.k;
        if let Some(ev) = r.eviction {
            debug_assert_eq!(self.memo[start..start + self.k], kmap.indices(ev.flow)[..]);
            self.evictions += 1;
            self.spread_row(start, ev.value, sink);
        }
        if r.inserted {
            kmap.fill_indices(flow, &mut self.memo[start..start + self.k]);
        }
    }

    /// [`apply`](Self::apply) with the flow's precomputed base hash
    /// (the batch path): identical bookkeeping, but an insert fills the
    /// memo row from the base instead of re-mixing the key.
    #[inline]
    fn apply_base<S: WritebackSink>(
        &mut self,
        flow: u64,
        base: u64,
        r: cachesim::Recorded,
        sink: &S,
        kmap: &KCounterMap,
    ) {
        debug_assert_eq!(base, kmap.base_hash(flow));
        let start = r.slot as usize * self.k;
        if let Some(ev) = r.eviction {
            debug_assert_eq!(self.memo[start..start + self.k], kmap.indices(ev.flow)[..]);
            self.evictions += 1;
            self.spread_row(start, ev.value, sink);
        }
        if r.inserted {
            kmap.fill_indices_from_base(base, &mut self.memo[start..start + self.k]);
        }
    }

    /// Stage an eviction of `value` for the memoized index row starting
    /// at `start`: split `value = p·k + q`, scatter the `q` remainder
    /// units uniformly over the flow's `k` counters (§3.1). RNG draw
    /// order is identical to the sequential implementation, so the
    /// staged increments (and the final sketch) are bit-identical.
    fn spread_row<S: WritebackSink>(&mut self, start: usize, value: u64, sink: &S) {
        let Self { memo, rng, wb, k, .. } = self;
        stage_spread(&memo[start..start + *k], value, rng, wb, sink);
    }

    /// Dump every resident cache entry through the memoized
    /// remainder-scatter path into the writeback buffer (the FinalDump
    /// half of [`finish`](Self::finish)), leaving the worker alive
    /// with an **empty** cache — the salvage primitive of the online
    /// supervisor: after a worker panic, the surviving cache mass is
    /// drained here before the lane respawns, so no recorded packet is
    /// lost. Returns the unit mass drained. Does **not** flush the
    /// buffer.
    pub(crate) fn drain_cache<S: WritebackSink>(&mut self, sink: &S, kmap: &KCounterMap) -> u64 {
        let Self { cache, rng, memo, k, wb, evictions, .. } = self;
        let mut drained = 0u64;
        cache.drain_with(|slot, ev| {
            let start = slot as usize * *k;
            let indices = &memo[start..start + *k];
            debug_assert_eq!(indices, &kmap.indices(ev.flow)[..]);
            *evictions += 1;
            drained += ev.value;
            stage_spread(indices, ev.value, rng, wb, sink);
        });
        drained
    }

    /// Merge the shard-local writeback segment into the shared SRAM —
    /// the epoch-boundary flush of the online runtime. The cache keeps
    /// counting; only staged evictions become query-visible.
    pub(crate) fn flush_writeback(&mut self, sram: &AtomicCounterArray) {
        self.wb.flush(sram);
    }

    /// Unit mass currently resident in the cache (recorded packets not
    /// yet evicted) — the supervisor's salvage-consistency oracle.
    pub(crate) fn resident_units(&self) -> u64 {
        self.cache.iter().map(|(_, count)| count).sum()
    }

    /// Unit mass staged in the writeback buffer (evicted but not yet
    /// merged into the shared SRAM).
    pub(crate) fn staged_units(&self) -> u64 {
        self.wb.state().pending.iter().map(|&(_, v)| v).sum()
    }

    /// Ingest statistics so far (the mid-stream form of the report
    /// [`finish`](Self::finish) returns).
    pub(crate) fn ingest_stats(&self) -> IngestStats {
        IngestStats {
            evictions: self.evictions,
            staged_updates: self.wb.staged_updates(),
            flushed_updates: self.wb.flushed_updates(),
            flushes: self.wb.flushes(),
        }
    }

    /// Capture the worker's complete dynamic state (see
    /// [`ShardWorkerState`]).
    pub(crate) fn snapshot_state(&self) -> ShardWorkerState {
        ShardWorkerState {
            cache: self.cache.snapshot_state(),
            rng: self.rng.state(),
            memo: self.memo.clone(),
            wb: self.wb.state(),
            evictions: self.evictions,
        }
    }

    /// Rebuild a worker from a [`ShardWorkerState`] snapshot taken
    /// under the same `(cfg, shard, entries)`. Byte-identical
    /// continuation: the cache (including its victim RNG), the scatter
    /// RNG, the memo rows, and the staged writeback all resume exactly.
    ///
    /// # Panics
    /// Panics if the memo geometry disagrees with `entries * cfg.k`.
    pub(crate) fn restore_state(
        cfg: &CaesarConfig,
        shard: usize,
        entries: usize,
        state: ShardWorkerState,
    ) -> Self {
        assert_eq!(
            state.memo.len(),
            entries * cfg.k,
            "snapshot memo geometry mismatch"
        );
        Self {
            cache: CacheTable::restore(
                CacheConfig {
                    entries,
                    entry_capacity: cfg.entry_capacity,
                    policy: cfg.policy,
                    seed: cache_seed(cfg, shard),
                },
                &state.cache,
            ),
            rng: StdRng::from_state(state.rng),
            memo: state.memo,
            k: cfg.k,
            wb: WritebackBuffer::restore(&state.wb),
            prefetch_sram: cfg.counters * 8 >= sram_prefetch_min_bytes(),
            base_buf: Vec::new(),
            evictions: state.evictions,
        }
    }

    /// End of measurement: dump the cache, flush the buffer, report.
    pub(crate) fn finish(mut self, sram: &AtomicCounterArray, kmap: &KCounterMap) -> IngestStats {
        self.drain_cache(sram, kmap);
        self.wb.flush(sram);
        self.ingest_stats()
    }

    /// End of measurement for a segment-only build (the packed-SRAM
    /// path): dump the cache into the accumulate-all segment and hand
    /// the staged buffer plus the eviction count to the caller, which
    /// merges shard segments into the non-atomic backing one at a time
    /// via [`WritebackBuffer::flush_into`].
    pub(crate) fn finish_segment(
        mut self,
        sink: &SegmentSink,
        kmap: &KCounterMap,
    ) -> (WritebackBuffer, u64) {
        self.drain_cache(sink, kmap);
        (self.wb, self.evictions)
    }
}

/// A shard worker panicked during a finite build.
///
/// The error-propagating builds ([`ConcurrentCaesar::try_build_with_mode`],
/// [`ConcurrentCaesar::try_build_stream_with_ring`],
/// [`ConcurrentCaesar::try_build_replay`]) surface the first panicking
/// shard here instead of aborting the process; the partially built
/// accumulators (shared SRAM, index map, every worker's staged
/// writeback) are dropped with the failed call, so a retry starts from
/// a clean scaffold and can never double-count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError {
    /// Which shard's worker panicked (lowest shard id on multi-panic).
    pub shard: usize,
    /// The panic payload, rendered to a string (`&str`/`String`
    /// payloads verbatim, anything else a placeholder).
    pub payload: String,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} worker panicked: {}", self.shard, self.payload)
    }
}

impl std::error::Error for BuildError {}

/// Render a `catch_unwind`/`join` panic payload to a string.
pub(crate) fn panic_payload(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Split `value = p·k + q` over `indices` and stage the per-counter
/// increments: the aliquot `p` to each, the `q` remainder units
/// scattered uniformly (each an independent `gen_range(0..k)` draw —
/// the exact RNG consumption the ingest determinism pins rely on). The
/// remainder accumulator is a stack array, bounded by [`K_MAX`].
#[inline]
fn stage_spread<S: WritebackSink>(
    indices: &[usize],
    value: u64,
    rng: &mut StdRng,
    wb: &mut WritebackBuffer,
    sink: &S,
) {
    let kk = indices.len() as u64;
    let p = value / kk;
    let q = (value % kk) as usize;
    let mut extra = [0u64; K_MAX];
    for _ in 0..q {
        extra[rng.gen_range(0..indices.len())] += 1;
    }
    // Fold the aliquot into the scatter accumulator in one
    // lane-parallel pass (`extra` becomes the per-counter increment
    // row), then stage one coalesced push per counter — `push` drops
    // zero increments, exactly like the old `p + extra[slot]` form.
    let incs = &mut extra[..indices.len()];
    for inc in incs.iter_mut() {
        *inc += p;
    }
    for (slot, &idx) in indices.iter().enumerate() {
        wb.push(idx, incs[slot], sink);
    }
}

/// An **owned**, packet-at-a-time sharded ingest: the engine behind
/// [`BuildMode::Inline`] and the epoch-rotation wrapper
/// ([`crate::EpochedConcurrentCaesar`]). Owns the shared SRAM, the
/// index map, and every shard worker, so it can live across calls
/// (unlike the scoped-thread builds, which borrow for one closure).
#[derive(Debug)]
pub(crate) struct InlineIngest {
    cfg: CaesarConfig,
    shards: usize,
    sram: AtomicCounterArray,
    kmap: KCounterMap,
    workers: Vec<ShardWorker>,
}

impl InlineIngest {
    /// Fresh ingest over `shards` workers; evictions accumulate in
    /// shard-local segments ([`WRITEBACK_ACCUMULATE_ALL`]).
    ///
    /// # Panics
    /// Panics if `shards == 0` or the configuration is invalid.
    pub(crate) fn new(cfg: CaesarConfig, shards: usize) -> Self {
        let (sram, kmap, entries) = ConcurrentCaesar::scaffold(&cfg, shards);
        let workers = (0..shards)
            .map(|shard| ShardWorker::new(&cfg, shard, entries[shard], WRITEBACK_ACCUMULATE_ALL))
            .collect();
        Self { cfg, shards, sram, kmap, workers }
    }

    /// Route one packet to its shard worker (RSS hash partition; with
    /// one shard the hash is skipped entirely).
    pub(crate) fn record(&mut self, flow: u64) {
        let shard = if self.shards == 1 {
            0
        } else {
            ConcurrentCaesar::shard_of(flow, self.shards, self.cfg.seed)
        };
        self.workers[shard].record(flow, &self.sram, &self.kmap);
    }

    /// End of measurement: drain every shard's cache, merge the
    /// shard-local segments (ascending shard order — deterministic, and
    /// irrelevant to the final values since saturating adds commute),
    /// and hand back the finished sketch.
    pub(crate) fn finish(self) -> ConcurrentCaesar {
        let Self { cfg, shards, sram, kmap, workers } = self;
        let per_shard: Vec<IngestStats> =
            workers.into_iter().map(|w| w.finish(&sram, &kmap)).collect();
        ConcurrentCaesar::assemble(cfg, shards, sram, kmap, per_shard)
    }
}

/// Push all of `chunk` into `tx`, spinning/yielding through full-ring
/// backpressure. Returns `false` if the consumer endpoint disappeared
/// (the shard worker panicked) while items remained — the caller stops
/// feeding that shard and the panic surfaces at join time as a
/// [`BuildError`].
#[must_use]
fn feed(tx: &mut spsc::Producer<u64>, mut chunk: &[u64]) -> bool {
    let mut backoff = spsc::Backoff::new();
    while !chunk.is_empty() {
        let n = tx.push_slice(chunk);
        if n == 0 {
            if tx.is_closed() {
                return false;
            }
            backoff.wait();
        } else {
            chunk = &chunk[n..];
            backoff.reset();
        }
    }
    true
}

/// Join a vector of per-shard scoped-thread handles into per-shard
/// results: every handle is joined (so no worker outlives the scope
/// with the accumulators still borrowed), panics become
/// [`BuildError`]s, and the **lowest** panicking shard wins when
/// several fail.
fn join_shards<'scope, T>(
    handles: Vec<std::thread::ScopedJoinHandle<'scope, T>>,
) -> Result<Vec<T>, BuildError> {
    let mut out = Vec::with_capacity(handles.len());
    let mut first_error: Option<BuildError> = None;
    for (shard, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(v) => out.push(v),
            Err(p) => {
                if first_error.is_none() {
                    first_error = Some(BuildError { shard, payload: panic_payload(p) });
                }
            }
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Multi-core CAESAR: sharded caches, one shared atomic SRAM.
///
/// ```
/// use caesar::{CaesarConfig, ConcurrentCaesar};
/// let flows: Vec<u64> = (0..5_000).map(|i| i % 50).collect();
/// let sketch = ConcurrentCaesar::build(
///     CaesarConfig { cache_entries: 64, entry_capacity: 8, counters: 4096, k: 3,
///                    ..CaesarConfig::default() },
///     4,
///     &flows,
/// );
/// assert_eq!(sketch.sram().total_added(), 5_000);
/// assert!((sketch.query(0) - 100.0).abs() < 30.0);
/// ```
#[derive(Debug)]
pub struct ConcurrentCaesar {
    cfg: CaesarConfig,
    shards: usize,
    sram: AtomicCounterArray,
    kmap: KCounterMap,
    ingest: IngestStats,
}

impl ConcurrentCaesar {
    /// Which shard a flow belongs to (RSS-style hash partition).
    pub fn shard_of(flow: u64, shards: usize, seed: u64) -> usize {
        bucket(mix64(flow ^ seed), shards)
    }

    pub(crate) fn scaffold(
        cfg: &CaesarConfig,
        shards: usize,
    ) -> (AtomicCounterArray, KCounterMap, Vec<usize>) {
        assert!(shards >= 1, "need at least one shard");
        assert!(cfg.k <= K_MAX, "concurrent build supports k up to {K_MAX}");
        cfg.validate();
        // One tally stripe per shard: the offered-units/saturation RMWs
        // land on private padded lines instead of ping-ponging one.
        let sram = AtomicCounterArray::with_stripes(cfg.counters, cfg.counter_bits, shards);
        let kmap = KCounterMap::new(cfg.k, cfg.counters, cfg.seed ^ 0x5EED_5EED);
        let entries = per_shard_entries(cfg.cache_entries, shards);
        (sram, kmap, entries)
    }

    pub(crate) fn assemble(
        cfg: CaesarConfig,
        shards: usize,
        sram: AtomicCounterArray,
        kmap: KCounterMap,
        per_shard: Vec<IngestStats>,
    ) -> Self {
        let mut ingest = IngestStats::default();
        for s in &per_shard {
            ingest.merge(s);
        }
        Self { cfg, shards, sram, kmap, ingest }
    }

    /// Run the construction phase over `flows` with `shards` shard
    /// workers, then return the finished sketch.
    ///
    /// The trace is routed with one O(n) partition pass; each worker
    /// consumes only its own flow subsequence and stages evictions in a
    /// shard-local [`WritebackBuffer`] segment merged once at the end.
    /// Scheduling is chosen by [`BuildMode::Auto`]: per-shard batches
    /// on scoped threads when the host has more than one hardware
    /// thread, inline multiplexing on the calling thread otherwise. Use
    /// [`ConcurrentCaesar::build_with_mode`] to force a mode.
    ///
    /// # Panics
    /// Panics if `shards == 0` or the configuration is invalid.
    pub fn build(cfg: CaesarConfig, shards: usize, flows: &[u64]) -> Self {
        Self::build_with_mode(cfg, shards, flows, BuildMode::Auto)
    }

    /// [`ConcurrentCaesar::build`] with an explicit [`BuildMode`]. All
    /// modes yield bit-identical sketches; the tests pin it.
    ///
    /// # Panics
    /// Panics if `shards == 0`, the configuration is invalid, or a
    /// shard worker panics (see
    /// [`ConcurrentCaesar::try_build_with_mode`] for the
    /// error-propagating form).
    pub fn build_with_mode(
        cfg: CaesarConfig,
        shards: usize,
        flows: &[u64],
        mode: BuildMode,
    ) -> Self {
        Self::try_build_with_mode(cfg, shards, flows, mode)
            .unwrap_or_else(|e| panic!("concurrent build failed: {e}"))
    }

    /// Error-propagating [`ConcurrentCaesar::build_with_mode`]: a
    /// panicking shard worker yields `Err(BuildError)` instead of
    /// aborting the process. Every worker is joined before returning,
    /// and the scaffold (shared SRAM, index map, staged writeback) is
    /// dropped with the error, so a retry re-ingests from scratch —
    /// no partial mass survives to double-count.
    ///
    /// # Panics
    /// Panics if `shards == 0` or the configuration is invalid (caller
    /// bugs, not worker faults).
    pub fn try_build_with_mode(
        cfg: CaesarConfig,
        shards: usize,
        flows: &[u64],
        mode: BuildMode,
    ) -> Result<Self, BuildError> {
        match mode.resolve() {
            BuildMode::Pinned => Self::try_build_stream_with_ring(
                cfg,
                shards,
                flows.iter().copied(),
                DEFAULT_RING_CAPACITY,
            ),
            // Inline multiplex: route each packet straight to its shard
            // worker — the degenerate partition (one pass, no batch
            // buffers, no spawn). With one shard this *is* the
            // sequential ingest off the borrowed slice, so Threaded
            // also lands here rather than spawning a lone thread.
            BuildMode::Inline | BuildMode::Threaded if shards == 1 => {
                Ok(Self::build_inline(cfg, shards, flows))
            }
            BuildMode::Inline => Ok(Self::build_inline(cfg, shards, flows)),
            BuildMode::Threaded => Self::try_build_threaded(cfg, shards, flows),
            BuildMode::Auto => unreachable!("resolve() eliminated Auto"),
        }
    }

    fn build_inline(cfg: CaesarConfig, shards: usize, flows: &[u64]) -> Self {
        let mut ingest = InlineIngest::new(cfg, shards);
        for &flow in flows {
            ingest.record(flow);
        }
        ingest.finish()
    }

    fn try_build_threaded(
        cfg: CaesarConfig,
        shards: usize,
        flows: &[u64],
    ) -> Result<Self, BuildError> {
        let (sram, kmap, entries) = Self::scaffold(&cfg, shards);
        // The single partition pass: flow-affine, order-preserving.
        let batches = partition_by(flows, shards, |&f| Self::shard_of(f, shards, cfg.seed));

        let per_shard = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(shards);
            for (shard, batch) in batches.into_iter().enumerate() {
                let sram = &sram;
                let kmap = &kmap;
                let entries = entries[shard];
                handles.push(s.spawn(move || {
                    let mut w =
                        ShardWorker::new(&cfg, shard, entries, WRITEBACK_ACCUMULATE_ALL);
                    w.record_batch(&batch, sram, kmap);
                    w.finish(sram, kmap)
                }));
            }
            join_shards(handles)
        })?;
        Ok(Self::assemble(cfg, shards, sram, kmap, per_shard))
    }

    /// Packed-SRAM ingest ablation: the threaded construction phase
    /// run against a bit-[`PackedCounterArray`] backing instead of the
    /// word-per-counter atomic array.
    ///
    /// Packed counters straddle word boundaries, so shard workers
    /// cannot write them concurrently. Instead each worker stages its
    /// entire eviction stream in an accumulate-all
    /// [`WritebackBuffer`] segment against a length-only
    /// [`SegmentSink`] (parallel phase), and the segments are merged
    /// into the packed array one shard at a time via
    /// [`WritebackBuffer::flush_into`] (serial phase). The resulting
    /// counter values are bit-identical to the word-backed threaded
    /// build with the same configuration and shard count.
    ///
    /// The returned sketch is a sequential [`PackedCaesar`] whose
    /// cache-occupancy statistics read zero — the shard caches are
    /// consumed by the merge, and only eviction/write totals survive.
    ///
    /// # Panics
    /// Panics if `shards == 0` or the configuration is invalid.
    pub fn try_build_packed(
        cfg: CaesarConfig,
        shards: usize,
        flows: &[u64],
    ) -> Result<PackedCaesar, BuildError> {
        assert!(shards >= 1, "need at least one shard");
        assert!(cfg.k <= K_MAX, "concurrent build supports k up to {K_MAX}");
        cfg.validate();
        let kmap = KCounterMap::new(cfg.k, cfg.counters, cfg.seed ^ 0x5EED_5EED);
        let entries = per_shard_entries(cfg.cache_entries, shards);
        let sink = SegmentSink::new(cfg.counters);
        let batches = partition_by(flows, shards, |&f| Self::shard_of(f, shards, cfg.seed));

        let segments = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(shards);
            for (shard, batch) in batches.into_iter().enumerate() {
                let sink = &sink;
                let kmap = &kmap;
                let entries = entries[shard];
                handles.push(s.spawn(move || {
                    let mut w =
                        ShardWorker::new(&cfg, shard, entries, WRITEBACK_ACCUMULATE_ALL);
                    w.record_batch(&batch, sink, kmap);
                    w.finish_segment(sink, kmap)
                }));
            }
            join_shards(handles)
        })?;

        let mut packed = PackedCounterArray::new(cfg.counters, cfg.counter_bits);
        let mut evictions = 0u64;
        let mut sram_writes = 0u64;
        for (mut wb, shard_evictions) in segments {
            wb.flush_into(&mut packed);
            evictions += shard_evictions;
            sram_writes += wb.flushed_updates();
        }
        Ok(PackedCaesar::from_finished_parts(cfg, packed, evictions, sram_writes))
    }

    /// Streaming construction: overlap partitioning with shard
    /// consumption over one lock-free [`support::spsc`] ring per shard
    /// — the line-card replay shape, where packets arrive as a stream
    /// and are routed to worker cores on the fly instead of being
    /// materialized into per-shard batches first.
    ///
    /// The calling thread plays the RSS front end: it hashes each flow
    /// to its shard and publishes fixed-size chunks into the shard's
    /// bounded ring (a slow shard back-pressures the front end rather
    /// than buffering unboundedly); each pinned worker drains its ring
    /// in batches through the probe-one-ahead record path. Every shard
    /// sees exactly the flow subsequence [`ConcurrentCaesar::build`]
    /// would hand it, so the resulting counter array is
    /// **bit-identical** to `build`'s.
    ///
    /// # Panics
    /// Panics if `shards == 0` or the configuration is invalid.
    pub fn build_stream<I>(cfg: CaesarConfig, shards: usize, flows: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        Self::build_stream_with_ring(cfg, shards, flows, DEFAULT_RING_CAPACITY)
    }

    /// [`ConcurrentCaesar::build_stream`] with an explicit per-shard
    /// ring capacity (`>= 1`; capacity 1 degenerates to a ping-pong
    /// hand-off and is exercised by the backpressure tests). The ring
    /// capacity affects scheduling only — never the result.
    ///
    /// # Panics
    /// Panics if `shards == 0`, `ring_capacity == 0`, the
    /// configuration is invalid, or a shard worker panics (see
    /// [`ConcurrentCaesar::try_build_stream_with_ring`]).
    pub fn build_stream_with_ring<I>(
        cfg: CaesarConfig,
        shards: usize,
        flows: I,
        ring_capacity: usize,
    ) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        Self::try_build_stream_with_ring(cfg, shards, flows, ring_capacity)
            .unwrap_or_else(|e| panic!("concurrent stream build failed: {e}"))
    }

    /// Error-propagating [`ConcurrentCaesar::build_stream_with_ring`]:
    /// a panicking shard worker closes its ring, the front end stops
    /// feeding that shard (remaining routed packets are discarded with
    /// the failed build), every worker is joined, and the first
    /// failure comes back as `Err(BuildError)`. The dropped scaffold
    /// guarantees a retry cannot double-count.
    ///
    /// # Panics
    /// Panics if `shards == 0`, `ring_capacity == 0`, or the
    /// configuration is invalid.
    pub fn try_build_stream_with_ring<I>(
        cfg: CaesarConfig,
        shards: usize,
        flows: I,
        ring_capacity: usize,
    ) -> Result<Self, BuildError>
    where
        I: IntoIterator<Item = u64>,
    {
        Self::try_build_stream_injected(cfg, shards, flows, ring_capacity, &[])
    }

    /// [`ConcurrentCaesar::try_build_stream_with_ring`] with a
    /// deterministic fault schedule — the chaos-testing seam behind
    /// the fault-tolerance suite and `scripts/check.sh --fault-smoke`.
    /// `panic_at[shard]`, when `Some(n)`, makes that shard's worker
    /// panic (payload [`support::testkit::INJECTED_PANIC`]) immediately
    /// before processing the `n`-th packet (0-based) of its own flow
    /// subsequence; shards beyond `panic_at.len()` never fault. An
    /// empty schedule is exactly
    /// [`ConcurrentCaesar::try_build_stream_with_ring`].
    ///
    /// # Panics
    /// Panics if `shards == 0`, `ring_capacity == 0`, or the
    /// configuration is invalid.
    pub fn try_build_stream_injected<I>(
        cfg: CaesarConfig,
        shards: usize,
        flows: I,
        ring_capacity: usize,
        panic_at: &[Option<u64>],
    ) -> Result<Self, BuildError>
    where
        I: IntoIterator<Item = u64>,
    {
        let (sram, kmap, entries) = Self::scaffold(&cfg, shards);

        let per_shard = std::thread::scope(|s| {
            let mut producers = Vec::with_capacity(shards);
            let mut handles = Vec::with_capacity(shards);
            for shard in 0..shards {
                let (tx, mut rx) = spsc::ring::<u64>(ring_capacity);
                producers.push(tx);
                let sram = &sram;
                let kmap = &kmap;
                let entries = entries[shard];
                let fault = panic_at.get(shard).copied().flatten();
                handles.push(s.spawn(move || {
                    // Shard→core placement, the "Pinned" in
                    // `BuildMode::Pinned`: keep each worker's eviction
                    // accumulator and ring consumer lines resident on
                    // one core's cache. Quiet no-op on hosts that
                    // cannot pin (see `support::affinity`).
                    let _ = support::affinity::pin_shard(shard, shards);
                    let mut w =
                        ShardWorker::new(&cfg, shard, entries, WRITEBACK_ACCUMULATE_ALL);
                    let mut buf: Vec<u64> = Vec::with_capacity(STREAM_CHUNK);
                    let mut seen = 0u64;
                    loop {
                        buf.clear();
                        if rx.pop_batch_blocking(&mut buf, STREAM_CHUNK) == 0 {
                            break; // producer gone and ring drained
                        }
                        if let Some(at) = fault {
                            if seen + buf.len() as u64 > at {
                                // Process the packets before the fault
                                // point, then fail exactly there.
                                let head = (at - seen) as usize;
                                w.record_batch(&buf[..head], sram, kmap);
                                panic!("{}", support::testkit::INJECTED_PANIC);
                            }
                        }
                        seen += buf.len() as u64;
                        w.record_batch(&buf, sram, kmap);
                    }
                    w.finish(sram, kmap)
                }));
            }

            // The partitioning front end, overlapped with consumption.
            let mut pending: Vec<Vec<u64>> =
                (0..shards).map(|_| Vec::with_capacity(STREAM_CHUNK)).collect();
            let mut dead = vec![false; shards];
            for flow in flows {
                let shard = Self::shard_of(flow, shards, cfg.seed);
                if dead[shard] {
                    continue; // worker gone: error surfaces at join
                }
                pending[shard].push(flow);
                if pending[shard].len() >= STREAM_CHUNK {
                    if !feed(&mut producers[shard], &pending[shard]) {
                        dead[shard] = true;
                    }
                    pending[shard].clear();
                }
            }
            for (shard, chunk) in pending.iter().enumerate() {
                if !chunk.is_empty() && !dead[shard] && !feed(&mut producers[shard], chunk) {
                    dead[shard] = true;
                }
            }
            drop(producers); // close the rings: workers drain and finish
            join_shards(handles)
        })?;
        Ok(Self::assemble(cfg, shards, sram, kmap, per_shard))
    }

    /// The original sharded construction, kept as the reference
    /// implementation: every shard replays the **whole** trace and
    /// filters to its own flows — O(T·n) total scan/hash work — and
    /// writes each eviction's increments through one by one.
    ///
    /// Retained (not deprecated) for two jobs: the equivalence tests
    /// pin that the partitioned pipeline is a pure optimization (its
    /// counter array is bit-identical to this one's), and the
    /// `concurrent_build` bench measures the before/after speedup.
    ///
    /// # Panics
    /// Panics if `shards == 0`, the configuration is invalid, or a
    /// shard worker panics (see [`ConcurrentCaesar::try_build_replay`]
    /// for the error-propagating form).
    pub fn build_replay(cfg: CaesarConfig, shards: usize, flows: &[u64]) -> Self {
        match Self::try_build_replay(cfg, shards, flows) {
            Ok(built) => built,
            Err(e) => panic!("concurrent replay build failed: {e}"),
        }
    }

    /// Error-propagating form of [`ConcurrentCaesar::build_replay`]:
    /// a panicking shard worker surfaces as [`BuildError`] and the
    /// partial accumulators are dropped cleanly, so a caller can retry
    /// on a fresh instance with no double-counted state.
    ///
    /// # Errors
    /// Returns the lowest-numbered panicking shard's [`BuildError`].
    ///
    /// # Panics
    /// Panics if `shards == 0` or the configuration is invalid.
    pub fn try_build_replay(
        cfg: CaesarConfig,
        shards: usize,
        flows: &[u64],
    ) -> Result<Self, BuildError> {
        let (sram, kmap, entries) = Self::scaffold(&cfg, shards);
        let per_shard: Vec<IngestStats> = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(shards);
            for shard in 0..shards {
                let sram = &sram;
                let kmap = &kmap;
                let entries = entries[shard];
                handles.push(s.spawn(move || {
                    // Capacity 1 = write-through: the seed's per-eviction
                    // direct adds, expressed through the same worker.
                    let mut w = ShardWorker::new(&cfg, shard, entries, 1);
                    for &flow in flows {
                        if Self::shard_of(flow, shards, cfg.seed) != shard {
                            continue;
                        }
                        w.record(flow, sram, kmap);
                    }
                    w.finish(sram, kmap)
                }));
            }
            join_shards(handles)
        })?;
        Ok(Self::assemble(cfg, shards, sram, kmap, per_shard))
    }

    /// The configuration in use.
    pub fn config(&self) -> &CaesarConfig {
        &self.cfg
    }

    /// Number of shards used during construction.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total eviction events pushed off-chip.
    pub fn evictions(&self) -> u64 {
        self.ingest.evictions
    }

    /// Ingest-pipeline statistics (evictions, writeback coalescing).
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingest
    }

    /// The shared SRAM array.
    pub fn sram(&self) -> &AtomicCounterArray {
        &self.sram
    }

    /// Estimator parameters at the current state.
    pub fn params(&self) -> EstimateParams {
        EstimateParams {
            k: self.cfg.k,
            y: self.cfg.entry_capacity,
            counters: self.cfg.counters,
            total_packets: self.sram.total_added(),
        }
    }

    /// Query with an explicit estimator.
    pub fn estimate(&self, flow: u64, estimator: Estimator) -> Estimate {
        let w: Vec<u64> = self
            .kmap
            .indices(flow)
            .into_iter()
            .map(|i| self.sram.get(i))
            .collect();
        let params = self.params();
        match estimator {
            Estimator::Csm => csm::estimate(&w, &params),
            Estimator::Mlm => mlm::estimate(&w, &params),
        }
    }

    /// Clamped default-estimator query.
    pub fn query(&self, flow: u64) -> f64 {
        self.estimate(flow, self.cfg.estimator).clamped()
    }

    /// Batch query: evaluate `estimator` for every flow in `flows`
    /// with the zero-alloc batch engine, sequentially. Bit-identical
    /// to per-flow [`ConcurrentCaesar::estimate`].
    pub fn estimate_all(&self, flows: &[u64], estimator: Estimator) -> Vec<Estimate> {
        self.estimate_all_threads(flows, estimator, 1)
    }

    /// [`ConcurrentCaesar::estimate_all`] with up to `threads`
    /// workers. Output order matches `flows`; bit-identical at every
    /// thread count.
    pub fn estimate_all_threads(
        &self,
        flows: &[u64],
        estimator: Estimator,
        threads: usize,
    ) -> Vec<Estimate> {
        crate::query::estimate_all(&self.kmap, &self.sram, &self.params(), estimator, flows, threads)
    }

    /// Clamped default-estimator sizes for a whole flow table.
    pub fn query_all(&self, flows: &[u64]) -> Vec<f64> {
        self.estimate_all(flows, self.cfg.estimator)
            .into_iter()
            .map(|e| e.clamped())
            .collect()
    }

    /// Health-annotated default-estimator query. Offline sketches have
    /// no ingest loss, so only saturation can degrade confidence — on
    /// a merged cluster view that includes saturation folded in from
    /// every contributing node.
    pub fn query_health(&self, flow: u64) -> QueryHealth {
        crate::query::query_health(
            &self.kmap,
            &self.sram,
            &self.params(),
            self.cfg.estimator,
            flow,
            0.0,
        )
    }

    /// The identity two sketches must share to merge (see
    /// [`SketchFingerprint`]).
    pub fn fingerprint(&self) -> SketchFingerprint {
        SketchFingerprint::of(&self.cfg)
    }

    /// A zero-traffic sketch — the merge identity. An aggregator
    /// starts here and folds every node's [`SketchPayload`] in to form
    /// the cluster view.
    ///
    /// # Panics
    /// Panics on invalid configurations.
    pub fn empty(cfg: CaesarConfig) -> Self {
        let (sram, kmap, _) = Self::scaffold(&cfg, 1);
        Self::assemble(cfg, 1, sram, kmap, Vec::new())
    }

    /// Merge another finished sketch into this one: counter-wise
    /// saturating add with both sides' saturation tallies folded (see
    /// [`AtomicCounterArray::merge_from`]), plus the ingest statistics.
    /// Shard counts may differ — sharding is an ingest-side layout
    /// choice, the shared SRAM is what merges.
    ///
    /// Below the clamp this is exact linearity: with identical
    /// geometry and seeds, every flow maps to the same `k` counters on
    /// both sides, so the merged view queries as if one box had seen
    /// both streams. At the clamp the merge stays honest: sums pin at
    /// `max_value` and are flagged, degrading
    /// [`QueryHealth::confidence`] instead of silently under-counting.
    pub fn merge(&mut self, other: &ConcurrentCaesar) -> Result<(), MergeError> {
        self.fingerprint().expect_matches(&other.fingerprint())?;
        self.sram.merge_from(&other.sram)?;
        self.ingest.merge(&other.ingest);
        Ok(())
    }

    /// Export the wire-transportable state: what a measurement node
    /// pushes to an aggregator (`PushSketch` in the service protocol).
    pub fn export_sketch(&self) -> SketchPayload {
        SketchPayload {
            fingerprint: self.fingerprint(),
            counters: self.sram.snapshot(),
            total_added: self.sram.total_added(),
            saturation_events: self.sram.saturations(),
            evictions: self.ingest.evictions,
        }
    }

    /// Fold a pushed [`SketchPayload`] into this sketch — the
    /// aggregator half of [`ConcurrentCaesar::export_sketch`]. Same
    /// semantics as [`ConcurrentCaesar::merge`].
    pub fn merge_sketch(&mut self, payload: &SketchPayload) -> Result<(), MergeError> {
        self.fingerprint().expect_matches(&payload.fingerprint)?;
        self.sram.merge_counters(
            &payload.counters,
            payload.total_added,
            payload.saturation_events,
        )?;
        self.ingest.evictions += payload.evictions;
        Ok(())
    }

    /// Fold a pushed [`SketchDelta`] into this sketch — the incremental
    /// counterpart of [`ConcurrentCaesar::merge_sketch`]. Counter
    /// increments apply as saturating adds (clamp crossings counted)
    /// and the tally increments fold, so a view fed
    /// `full push + deltas` is identical to one fed the equivalent
    /// full pushes. The caller (the service layer) is responsible for
    /// base-epoch discipline — this method applies unconditionally.
    pub fn merge_delta(&mut self, delta: &SketchDelta) -> Result<(), MergeError> {
        self.fingerprint().expect_matches(&delta.fingerprint)?;
        let span = crate::sram::DIRTY_BLOCK_COUNTERS;
        let updates: Vec<(usize, u64)> = delta
            .blocks
            .iter()
            .flat_map(|(block, increments)| {
                let start = block * span;
                increments.iter().enumerate().map(move |(i, &v)| (start + i, v))
            })
            .collect();
        self.sram.merge_counters_sparse(
            &updates,
            delta.total_added_delta,
            delta.saturation_events_delta,
        )?;
        self.ingest.evictions += delta.evictions_delta;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CaesarConfig {
        CaesarConfig {
            cache_entries: 128,
            entry_capacity: 8,
            counters: 4096,
            k: 3,
            ..CaesarConfig::default()
        }
    }

    fn workload() -> Vec<u64> {
        // 64 flows with sizes 16·(i+1), deterministically interleaved.
        let mut flows = Vec::new();
        for round in 0..1040u64 {
            for f in 0..64u64 {
                if round < 16 * (f + 1) {
                    flows.push(mix64(f)); // spread IDs like real hashes
                }
            }
        }
        flows
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ConcurrentCaesar::build(cfg(), 0, &[]);
    }

    #[test]
    fn conserves_packets_across_threads() {
        let flows = workload();
        for shards in [1, 2, 4, 8] {
            let c = ConcurrentCaesar::build(cfg(), shards, &flows);
            assert_eq!(
                c.sram().total_added() as usize,
                flows.len(),
                "shards = {shards}"
            );
            assert_eq!(c.sram().stripes(), shards, "one tally stripe per shard");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let flows = workload();
        let a = ConcurrentCaesar::build(cfg(), 4, &flows);
        let b = ConcurrentCaesar::build(cfg(), 4, &flows);
        assert_eq!(a.sram().snapshot(), b.sram().snapshot());
    }

    #[test]
    fn injected_panic_surfaces_as_build_error() {
        let flows = workload();
        for shards in [1, 2, 4] {
            // Fault the last shard after it has seen 100 packets.
            let mut plan = vec![None; shards];
            plan[shards - 1] = Some(100);
            let err = ConcurrentCaesar::try_build_stream_injected(
                cfg(),
                shards,
                flows.iter().copied(),
                DEFAULT_RING_CAPACITY,
                &plan,
            )
            .expect_err("injected panic must surface");
            assert_eq!(err.shard, shards - 1);
            assert_eq!(err.payload, support::testkit::INJECTED_PANIC);
            assert!(err.to_string().contains("worker panicked"));
        }
    }

    #[test]
    fn lowest_faulting_shard_wins_when_several_panic() {
        let flows = workload();
        let plan = [Some(50u64), Some(10), Some(70), None];
        let err = ConcurrentCaesar::try_build_stream_injected(
            cfg(),
            4,
            flows.iter().copied(),
            DEFAULT_RING_CAPACITY,
            &plan,
        )
        .expect_err("three injected panics must surface");
        assert_eq!(err.shard, 0, "report is deterministic: lowest shard id");
    }

    #[test]
    fn failed_build_retries_cleanly_with_no_double_count() {
        // A failed attempt drops its scaffold; retrying on the same
        // inputs must equal a never-faulted build bit-for-bit.
        let flows = workload();
        let plan = [None, Some(0)];
        assert!(ConcurrentCaesar::try_build_stream_injected(
            cfg(),
            2,
            flows.iter().copied(),
            DEFAULT_RING_CAPACITY,
            &plan,
        )
        .is_err());
        let retry = ConcurrentCaesar::try_build_stream_with_ring(
            cfg(),
            2,
            flows.iter().copied(),
            DEFAULT_RING_CAPACITY,
        )
        .expect("clean retry succeeds");
        let reference = ConcurrentCaesar::build(cfg(), 2, &flows);
        assert_eq!(retry.sram().snapshot(), reference.sram().snapshot());
        assert_eq!(retry.sram().total_added(), reference.sram().total_added());
    }

    #[test]
    fn empty_fault_schedule_is_the_plain_stream_build() {
        let flows = workload();
        let a = ConcurrentCaesar::try_build_stream_injected(
            cfg(),
            3,
            flows.iter().copied(),
            DEFAULT_RING_CAPACITY,
            &[],
        )
        .unwrap();
        let b = ConcurrentCaesar::build_stream(cfg(), 3, flows.iter().copied());
        assert_eq!(a.sram().snapshot(), b.sram().snapshot());
    }

    #[test]
    fn partitioned_matches_replay_bit_exactly() {
        // The tentpole's contract: the O(n) partitioned, batch-writeback
        // pipeline is a pure optimization of the O(T·n) replay path —
        // in every scheduling shape, including the ring-fed Pinned one.
        let flows = workload();
        for shards in [1, 3, 4, 8] {
            let slow = ConcurrentCaesar::build_replay(cfg(), shards, &flows);
            for mode in [
                BuildMode::Auto,
                BuildMode::Threaded,
                BuildMode::Inline,
                BuildMode::Pinned,
            ] {
                let fast = ConcurrentCaesar::build_with_mode(cfg(), shards, &flows, mode);
                assert_eq!(
                    fast.sram().snapshot(),
                    slow.sram().snapshot(),
                    "shards = {shards}, mode = {mode:?}"
                );
                assert_eq!(fast.evictions(), slow.evictions(), "shards = {shards}");
                assert_eq!(fast.sram().total_added(), slow.sram().total_added());
            }
        }
    }

    #[test]
    fn stream_matches_build_bit_exactly() {
        let flows = workload();
        for shards in [1, 2, 5] {
            let batch = ConcurrentCaesar::build(cfg(), shards, &flows);
            let stream =
                ConcurrentCaesar::build_stream(cfg(), shards, flows.iter().copied());
            assert_eq!(
                batch.sram().snapshot(),
                stream.sram().snapshot(),
                "shards = {shards}"
            );
            assert_eq!(batch.evictions(), stream.evictions());
        }
    }

    #[test]
    fn ring_capacity_does_not_change_the_sketch() {
        // Capacity 1 forces a full-backpressure ping-pong hand-off; the
        // sketch must not notice.
        let flows = workload();
        let reference = ConcurrentCaesar::build(cfg(), 3, &flows);
        for cap in [1usize, 2, 7, 64, 4096] {
            let c = ConcurrentCaesar::build_stream_with_ring(
                cfg(),
                3,
                flows.iter().copied(),
                cap,
            );
            assert_eq!(
                c.sram().snapshot(),
                reference.sram().snapshot(),
                "ring capacity {cap}"
            );
            assert_eq!(c.ingest_stats(), reference.ingest_stats(), "ring capacity {cap}");
        }
    }

    #[test]
    fn writeback_batching_coalesces_hot_counters() {
        let flows = workload();
        let c = ConcurrentCaesar::build(cfg(), 2, &flows);
        let stats = c.ingest_stats();
        assert!(stats.evictions > 0);
        assert!(stats.staged_updates >= stats.flushed_updates);
        // Shard-local segments: exactly one merge per shard.
        assert_eq!(stats.flushes, 2);
        // 64 flows × k=3 ⇒ at most 192 hot counters per shard, so the
        // whole-run accumulation must coalesce substantially.
        assert!(
            stats.coalescing_factor() > 1.5,
            "coalescing factor {}",
            stats.coalescing_factor()
        );
    }

    #[test]
    fn per_shard_entries_conserves_the_budget() {
        // Remainder distributed: no silent loss (the old rule dropped
        // 130 mod 4 = 2 entries here).
        assert_eq!(per_shard_entries(130, 4), vec![33, 33, 32, 32]);
        // Fewer entries than shards: explicit inflation to 1 each.
        assert_eq!(per_shard_entries(4, 8), vec![1; 8]);
        // One shard: the sequential geometry, untouched.
        assert_eq!(per_shard_entries(130, 1), vec![130]);
        for m in [1usize, 4, 31, 128, 130, 1000] {
            for t in [1usize, 2, 3, 4, 7, 8, 64] {
                let parts = per_shard_entries(m, t);
                assert_eq!(parts.len(), t);
                assert_eq!(
                    parts.iter().sum::<usize>(),
                    m.max(t),
                    "M = {m}, T = {t}"
                );
                assert!(parts.iter().all(|&e| e >= 1));
                // Fair split: shard sizes differ by at most one entry.
                let (lo, hi) = (
                    *parts.iter().min().expect("nonempty"),
                    *parts.iter().max().expect("nonempty"),
                );
                assert!(hi - lo <= 1, "M = {m}, T = {t}: {parts:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn per_shard_entries_zero_shards_rejected() {
        per_shard_entries(16, 0);
    }

    #[test]
    fn accuracy_comparable_to_sequential() {
        let flows = workload();
        let conc = ConcurrentCaesar::build(cfg(), 4, &flows);
        let mut seq = crate::Caesar::new(cfg());
        for &f in &flows {
            seq.record(f);
        }
        seq.finish();
        // Both must recover the largest flow (size 1024) within a few
        // percent; the sketches differ (different cache partitioning)
        // but not materially.
        let big = mix64(63);
        let e_conc = conc.query(big);
        let e_seq = seq.query(big);
        assert!((e_conc - 1024.0).abs() < 64.0, "concurrent = {e_conc}");
        assert!((e_seq - 1024.0).abs() < 64.0, "sequential = {e_seq}");
    }

    #[test]
    fn single_shard_matches_sequential_byte_for_byte() {
        // One shard uses exactly the sequential seeds (cache and RNG),
        // so every build mode must reproduce the sequential oracle's
        // counter array bit for bit — the strongest equivalence the
        // suite pins, and the anchor for the multi-shard determinism
        // argument (each shard is "a sequential sketch over its flow
        // subsequence").
        let flows = workload();
        let mut seq = crate::Caesar::new(cfg());
        for &f in &flows {
            seq.record(f);
        }
        seq.finish();
        for mode in [BuildMode::Inline, BuildMode::Threaded, BuildMode::Pinned] {
            let conc = ConcurrentCaesar::build_with_mode(cfg(), 1, &flows, mode);
            assert_eq!(
                conc.sram().snapshot(),
                seq.sram().as_slice(),
                "mode = {mode:?}"
            );
            assert_eq!(conc.sram().total_added(), seq.sram().total_added());
            assert_eq!(conc.evictions(), seq.stats().evictions);
        }
    }

    #[test]
    fn more_shards_than_flows_is_fine() {
        let flows: Vec<u64> = (0..10u64).map(mix64).collect();
        let c = ConcurrentCaesar::build(cfg(), 32, &flows);
        assert_eq!(c.sram().total_added(), 10);
    }

    #[test]
    fn empty_stream_builds_an_empty_sketch() {
        let c = ConcurrentCaesar::build_stream(cfg(), 4, std::iter::empty());
        assert_eq!(c.sram().total_added(), 0);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn empty_trace_pinned_terminates() {
        // Regression guard: rings that never receive an item must still
        // close and drain (no hang when shards exceed trace length).
        let c = ConcurrentCaesar::build_with_mode(cfg(), 8, &[], BuildMode::Pinned);
        assert_eq!(c.sram().total_added(), 0);
    }

    #[test]
    fn empty_is_the_merge_identity() {
        let flows = workload();
        let built = ConcurrentCaesar::build(cfg(), 2, &flows);
        let mut agg = ConcurrentCaesar::empty(cfg());
        assert_eq!(agg.sram().total_added(), 0);
        agg.merge(&built).unwrap();
        assert_eq!(agg.sram().snapshot(), built.sram().snapshot());
        assert_eq!(agg.sram().total_added(), built.sram().total_added());
        assert_eq!(agg.evictions(), built.evictions());
        // Queries on the merged view match the original sketch exactly.
        let big = mix64(63);
        assert_eq!(agg.query(big).to_bits(), built.query(big).to_bits());
    }

    #[test]
    fn merge_conserves_total_mass() {
        let flows = workload();
        let (a_flows, b_flows) = flows.split_at(flows.len() / 2);
        let a = ConcurrentCaesar::build(cfg(), 2, a_flows);
        let b = ConcurrentCaesar::build(cfg(), 4, b_flows);
        let mut merged = ConcurrentCaesar::empty(cfg());
        merged.merge(&a).unwrap();
        merged.merge(&b).unwrap();
        assert_eq!(
            merged.sram().total_added(),
            a.sram().total_added() + b.sram().total_added()
        );
        assert_eq!(merged.sram().sum(), a.sram().sum() + b.sram().sum());
        assert_eq!(merged.evictions(), a.evictions() + b.evictions());
    }

    #[test]
    fn merge_rejects_mismatched_fingerprints() {
        let mut a = ConcurrentCaesar::empty(cfg());
        let b = ConcurrentCaesar::empty(CaesarConfig { k: 4, ..cfg() });
        assert!(matches!(
            a.merge(&b),
            Err(MergeError::Geometry { field: "k", .. })
        ));
        let c = ConcurrentCaesar::empty(CaesarConfig { seed: 99, ..cfg() });
        assert!(matches!(a.merge(&c), Err(MergeError::Seed { .. })));
    }

    #[test]
    fn sketch_payload_roundtrip_merges_identically() {
        let flows = workload();
        let (a_flows, b_flows) = flows.split_at(flows.len() / 3);
        let a = ConcurrentCaesar::build(cfg(), 1, a_flows);
        let b = ConcurrentCaesar::build(cfg(), 2, b_flows);

        // Path 1: in-process merge of live sketches.
        let mut direct = ConcurrentCaesar::empty(cfg());
        direct.merge(&a).unwrap();
        direct.merge(&b).unwrap();

        // Path 2: wire payloads (encode → decode → merge_sketch).
        let mut wired = ConcurrentCaesar::empty(cfg());
        for node in [&a, &b] {
            let bytes = node.export_sketch().encode();
            let payload = SketchPayload::decode(&bytes).unwrap();
            wired.merge_sketch(&payload).unwrap();
        }

        assert_eq!(direct.sram().snapshot(), wired.sram().snapshot());
        assert_eq!(direct.sram().total_added(), wired.sram().total_added());
        assert_eq!(direct.sram().saturations(), wired.sram().saturations());
        assert_eq!(direct.evictions(), wired.evictions());
    }

    #[test]
    fn delta_pushes_converge_to_the_full_push_view() {
        // A tap that pushes full, then deltas, must leave the
        // aggregator in exactly the state a final full push describes.
        let flows = workload();
        let third = flows.len() / 3;
        let mut tap = ConcurrentCaesar::empty(cfg());
        let mut view = ConcurrentCaesar::empty(cfg());

        // Epoch 0: full push.
        tap.merge(&ConcurrentCaesar::build(cfg(), 1, &flows[..third])).unwrap();
        let mut prev = tap.export_sketch();
        view.merge_sketch(&prev).unwrap();

        // Epochs 1..: delta pushes (encode → decode → merge_delta).
        for (epoch, chunk) in flows[third..].chunks(third).enumerate() {
            tap.merge(&ConcurrentCaesar::build(cfg(), 2, chunk)).unwrap();
            let cur = tap.export_sketch();
            let delta = SketchDelta::between(&prev, &cur, epoch as u64).unwrap();
            let wired = SketchDelta::decode(&delta.encode()).unwrap();
            view.merge_delta(&wired).unwrap();
            prev = cur;
        }

        // The delta-fed view equals a view fed one cumulative payload.
        let mut reference = ConcurrentCaesar::empty(cfg());
        reference.merge_sketch(&tap.export_sketch()).unwrap();
        assert_eq!(view.sram().snapshot(), reference.sram().snapshot());
        assert_eq!(view.sram().total_added(), reference.sram().total_added());
        assert_eq!(view.sram().saturations(), reference.sram().saturations());
        assert_eq!(view.evictions(), reference.evictions());

        // Foreign deltas are rejected typed.
        let foreign_cfg = CaesarConfig { seed: 0xBAD, ..cfg() };
        let f = ConcurrentCaesar::empty(foreign_cfg).export_sketch();
        let foreign = SketchDelta::between(&f, &f, 0).unwrap();
        assert!(matches!(view.merge_delta(&foreign), Err(MergeError::Seed { .. })));
    }

    #[test]
    fn merged_view_health_reports_folded_saturation() {
        let flows = workload();
        let built = ConcurrentCaesar::build(cfg(), 2, &flows);
        let mut agg = ConcurrentCaesar::empty(cfg());
        agg.merge(&built).unwrap();
        let healthy = agg.query_health(mix64(63));
        assert!(!healthy.is_degraded());
        assert_eq!(healthy.confidence, 1.0);
        // Fold in a payload carrying saturation events: confidence on
        // flows touching pinned counters must degrade.
        let mut sat_payload = built.export_sketch();
        let cap = (1u64 << cfg().counter_bits) - 1;
        for c in sat_payload.counters.iter_mut() {
            *c = cap;
        }
        sat_payload.saturation_events = 1;
        agg.merge_sketch(&sat_payload).unwrap();
        let degraded = agg.query_health(mix64(63));
        assert!(degraded.is_degraded());
        assert!(degraded.confidence < healthy.confidence);
        assert_eq!(degraded.saturated_counters, cfg().k);
    }
}
