//! Sharded multi-core construction phase.
//!
//! A real multi-queue line card (RSS) already partitions packets by a
//! hash of the flow ID, so per-flow state never crosses cores. The same
//! structure parallelizes CAESAR's construction phase perfectly:
//!
//! * each shard owns a private on-chip cache (`M/T` entries each, so
//!   the total on-chip budget is unchanged);
//! * all shards push evictions into one shared
//!   [`AtomicCounterArray`] —
//!   saturating adds commute, so relaxed atomics suffice and the
//!   construction phase is lock-free;
//! * the query phase is identical to the sequential sketch.
//!
//! Because flows are partitioned (not packets), every shard's eviction
//! sequence is independent of thread scheduling — the final counter
//! values are **deterministic** for a fixed configuration, which the
//! tests rely on.

use crate::atomic_sram::AtomicCounterArray;
use crate::config::{CaesarConfig, Estimator};
use crate::estimator::{csm, mlm, Estimate, EstimateParams};
use cachesim::{CacheConfig, CacheTable};
use hashkit::mix::{bucket, mix64};
use hashkit::KCounterMap;
use support::rand::{rngs::StdRng, Rng, SeedableRng};

/// Multi-core CAESAR: sharded caches, one shared atomic SRAM.
///
/// ```
/// use caesar::{CaesarConfig, ConcurrentCaesar};
/// let flows: Vec<u64> = (0..5_000).map(|i| i % 50).collect();
/// let sketch = ConcurrentCaesar::build(
///     CaesarConfig { cache_entries: 64, entry_capacity: 8, counters: 4096, k: 3,
///                    ..CaesarConfig::default() },
///     4,
///     &flows,
/// );
/// assert_eq!(sketch.sram().total_added(), 5_000);
/// assert!((sketch.query(0) - 100.0).abs() < 30.0);
/// ```
#[derive(Debug)]
pub struct ConcurrentCaesar {
    cfg: CaesarConfig,
    shards: usize,
    sram: AtomicCounterArray,
    kmap: KCounterMap,
    evictions: u64,
}

impl ConcurrentCaesar {
    /// Which shard a flow belongs to (RSS-style hash partition).
    fn shard_of(flow: u64, shards: usize, seed: u64) -> usize {
        bucket(mix64(flow ^ seed), shards)
    }

    /// Run the construction phase over `flows` with `shards` worker
    /// threads (`std::thread::scope`), then return the finished sketch.
    ///
    /// # Panics
    /// Panics if `shards == 0` or the configuration is invalid.
    pub fn build(cfg: CaesarConfig, shards: usize, flows: &[u64]) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(cfg.k <= 64, "concurrent build supports k up to 64");
        cfg.validate();
        let sram = AtomicCounterArray::new(cfg.counters, cfg.counter_bits);
        let kmap = KCounterMap::new(cfg.k, cfg.counters, cfg.seed ^ 0x5EED_5EED);
        let per_shard_entries = (cfg.cache_entries / shards).max(1);

        let eviction_counts: Vec<u64> = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(shards);
            for shard in 0..shards {
                let sram = &sram;
                let kmap = &kmap;
                handles.push(s.spawn(move || {
                    let mut cache = CacheTable::new(CacheConfig {
                        entries: per_shard_entries,
                        entry_capacity: cfg.entry_capacity,
                        policy: cfg.policy,
                        seed: cfg.seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    });
                    let mut rng =
                        StdRng::seed_from_u64(cfg.seed ^ 0x0D15_EA5E ^ (shard as u64) << 32);
                    let mut idx_buf = Vec::with_capacity(cfg.k);
                    let mut evictions = 0u64;
                    let push = |flow: u64, value: u64, rng: &mut StdRng, idx_buf: &mut Vec<usize>| {
                        kmap.indices_into(flow, idx_buf);
                        let k = idx_buf.len() as u64;
                        let p = value / k;
                        let q = (value % k) as usize;
                        let mut extra = [0u64; 64];
                        for _ in 0..q {
                            extra[rng.gen_range(0..idx_buf.len())] += 1;
                        }
                        for (slot, &idx) in idx_buf.iter().enumerate() {
                            let inc = p + extra[slot];
                            if inc > 0 {
                                sram.add(idx, inc);
                            }
                        }
                    };
                    for &flow in flows {
                        if Self::shard_of(flow, shards, cfg.seed) != shard {
                            continue;
                        }
                        if let Some(ev) = cache.record(flow) {
                            evictions += 1;
                            push(ev.flow, ev.value, &mut rng, &mut idx_buf);
                        }
                    }
                    for ev in cache.drain() {
                        evictions += 1;
                        push(ev.flow, ev.value, &mut rng, &mut idx_buf);
                    }
                    evictions
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });

        Self {
            cfg,
            shards,
            sram,
            kmap,
            evictions: eviction_counts.iter().sum(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CaesarConfig {
        &self.cfg
    }

    /// Number of shards used during construction.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total eviction events pushed off-chip.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The shared SRAM array.
    pub fn sram(&self) -> &AtomicCounterArray {
        &self.sram
    }

    /// Estimator parameters at the current state.
    pub fn params(&self) -> EstimateParams {
        EstimateParams {
            k: self.cfg.k,
            y: self.cfg.entry_capacity,
            counters: self.cfg.counters,
            total_packets: self.sram.total_added(),
        }
    }

    /// Query with an explicit estimator.
    pub fn estimate(&self, flow: u64, estimator: Estimator) -> Estimate {
        let w: Vec<u64> = self
            .kmap
            .indices(flow)
            .into_iter()
            .map(|i| self.sram.get(i))
            .collect();
        let params = self.params();
        match estimator {
            Estimator::Csm => csm::estimate(&w, &params),
            Estimator::Mlm => mlm::estimate(&w, &params),
        }
    }

    /// Clamped default-estimator query.
    pub fn query(&self, flow: u64) -> f64 {
        self.estimate(flow, self.cfg.estimator).clamped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CaesarConfig {
        CaesarConfig {
            cache_entries: 128,
            entry_capacity: 8,
            counters: 4096,
            k: 3,
            ..CaesarConfig::default()
        }
    }

    fn workload() -> Vec<u64> {
        // 64 flows with sizes 16·(i+1), deterministically interleaved.
        let mut flows = Vec::new();
        for round in 0..1040u64 {
            for f in 0..64u64 {
                if round < 16 * (f + 1) {
                    flows.push(mix64(f)); // spread IDs like real hashes
                }
            }
        }
        flows
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ConcurrentCaesar::build(cfg(), 0, &[]);
    }

    #[test]
    fn conserves_packets_across_threads() {
        let flows = workload();
        for shards in [1, 2, 4, 8] {
            let c = ConcurrentCaesar::build(cfg(), shards, &flows);
            assert_eq!(
                c.sram().total_added() as usize,
                flows.len(),
                "shards = {shards}"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let flows = workload();
        let a = ConcurrentCaesar::build(cfg(), 4, &flows);
        let b = ConcurrentCaesar::build(cfg(), 4, &flows);
        assert_eq!(a.sram().snapshot(), b.sram().snapshot());
    }

    #[test]
    fn accuracy_comparable_to_sequential() {
        let flows = workload();
        let conc = ConcurrentCaesar::build(cfg(), 4, &flows);
        let mut seq = crate::Caesar::new(cfg());
        for &f in &flows {
            seq.record(f);
        }
        seq.finish();
        // Both must recover the largest flow (size 1024) within a few
        // percent; the sketches differ (different cache partitioning)
        // but not materially.
        let big = mix64(63);
        let e_conc = conc.query(big);
        let e_seq = seq.query(big);
        assert!((e_conc - 1024.0).abs() < 64.0, "concurrent = {e_conc}");
        assert!((e_seq - 1024.0).abs() < 64.0, "sequential = {e_seq}");
    }

    #[test]
    fn single_shard_matches_sequential_exactly() {
        // With one shard and the same seeds, the eviction stream is the
        // sequential one: counters must agree exactly.
        let flows = workload();
        let conc = ConcurrentCaesar::build(cfg(), 1, &flows);
        let mut seq = crate::Caesar::new(CaesarConfig {
            cache_entries: conc.cfg.cache_entries,
            ..cfg()
        });
        for &f in &flows {
            seq.record(f);
        }
        seq.finish();
        // Same total mass; per-counter equality needs identical RNG
        // streams which the two paths don't share, so compare totals
        // and the large-flow estimate instead.
        assert_eq!(conc.sram().total_added(), seq.sram().total_added());
        let big = mix64(63);
        assert!((conc.query(big) - seq.query(big)).abs() < 16.0);
    }

    #[test]
    fn more_shards_than_flows_is_fine() {
        let flows: Vec<u64> = (0..10u64).map(mix64).collect();
        let c = ConcurrentCaesar::build(cfg(), 32, &flows);
        assert_eq!(c.sram().total_added(), 10);
    }
}
