//! Detached-thread online runtime with heartbeat supervision and
//! crash failover.
//!
//! [`crate::online::OnlineCaesar`] is the **deterministic oracle**: a
//! single-owner engine that holds both ring endpoints and pumps shard
//! workers itself at deterministic points, so every schedule — and
//! every injected fault — is a pure function of the offered stream.
//! [`ThreadedCaesar`] is the same machinery deployed the way a line
//! card actually runs it: each shard worker is a **real detached OS
//! thread** draining its bounded [`support::spsc`] ring through the
//! same batch hot path, supervised by **wall-clock heartbeats**
//! instead of logical pump-attempt ticks.
//!
//! * **Heartbeat slots.** Each worker publishes progress through a
//!   cache-line-padded atomic slot ([`support::spsc::CachePadded`]):
//!   a monotonic beat counter, the cumulative drained count, the
//!   engine epoch it has observed, and the last flush (checkpoint)
//!   sequence it acknowledged. The slot is the *only* state the
//!   supervisor reads without a lock.
//! * **A monitor thread** wakes a few times per heartbeat interval and
//!   compares each worker's beat against a wall-clock deadline. A
//!   worker whose beat has not moved for **two consecutive heartbeat
//!   deadlines** is declared hung: the monitor publishes a verdict the
//!   engine consumes at its next service point.
//! * **Crash failover.** A hung worker's ring is sealed, the lane's
//!   in-flight packets are **quarantined** (counted exactly, recorded
//!   in the lane's [`FaultLog`]), whatever accumulator state can be
//!   reached without racing the zombie is **salvaged** into the shared
//!   SRAM, and a fresh worker thread is respawned on a fresh ring. A
//!   generation fence keeps the zombie from ever touching shared state
//!   again: it stages into an orphaned accumulator that is never
//!   flushed.
//! * **Worker panics** are caught on the worker thread (the batch runs
//!   under `catch_unwind`), surfaced through the heartbeat slot, and
//!   serviced by the engine exactly like the pump does it: applied
//!   prefix counted recorded, remainder quarantined, surviving cache
//!   mass salvaged, worker respawned *in place* (same thread, fresh
//!   state machine).
//!
//! The mass-accounting invariant is preserved **exactly** at every
//! observation point, fault or no fault:
//!
//! ```text
//! offered == recorded + dropped + quarantined + in_flight
//! ```
//!
//! **Bit-identity.** On a fault-free run a `ThreadedCaesar` is
//! bit-identical to the pump oracle at every epoch boundary, and its
//! [`ThreadedCaesar::finish`] equals [`ConcurrentCaesar::build`]. This
//! is by construction, not luck: workers stage all evictions in
//! shard-local [`crate::WRITEBACK_ACCUMULATE_ALL`] segments (no
//! mid-epoch writes to shared SRAM), the batch kernel is
//! chunk-boundary-insensitive, and epoch rotation drains every lane
//! dry then serializes the per-shard flushes in ascending shard order
//! with acknowledgement waits — the same order the pump merges, so
//! even the saturation tallies match. Snapshots are taken at a
//! **quiesced** point (all accepted packets applied, workers parked)
//! and reuse the pump's exact encoders, so a quiesced threaded
//! snapshot is byte-identical to the pump's at the same boundary.
//!
//! The pump remains the test oracle precisely because it is
//! deterministic; this module is the thing it is an oracle *for*.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::atomic_sram::AtomicCounterArray;
use crate::concurrent::{
    panic_payload, ConcurrentCaesar, IngestStats, ShardWorker, STREAM_CHUNK,
};
use crate::config::{CaesarConfig, Estimator};
use crate::estimator::{csm, mlm, Estimate, EstimateParams};
use crate::merge::{SketchFingerprint, SketchPayload};
use crate::online::{
    encode_delta_prelude, encode_lane_section, encode_snapshot_prelude, BackpressurePolicy,
    ChainError, DeltaError, EngineHeader, FaultKind, FaultLog, FaultRecord, Lane, LaneEncodeParts,
    LaneStats, OnlineCaesar, OnlineStats, RestoreError,
};
use crate::query::{query_health, QueryHealth};
use crate::WRITEBACK_ACCUMULATE_ALL;
use hashkit::KCounterMap;
use support::bytesx::seal;
use support::spsc::{self, CachePadded};
use support::testkit::{FaultInjector, FaultSite, INJECTED_PANIC};

/// Built-in default heartbeat interval, in milliseconds. Generous on
/// purpose: supervision exists to catch *wedged* workers, and a false
/// failover quarantines real traffic. Latency-sensitive deployments
/// tune it down via `CAESAR_HEARTBEAT_MS` or
/// [`ThreadedCaesar::with_heartbeat_interval`].
pub const DEFAULT_HEARTBEAT_MS: u64 = 250;

/// The heartbeat interval actually in effect for new engines:
/// [`DEFAULT_HEARTBEAT_MS`] unless overridden through the
/// `CAESAR_HEARTBEAT_MS` environment variable (milliseconds, read
/// **once** per process — the same pattern as
/// [`crate::sram_prefetch_min_bytes`]). Unparsable or zero values warn
/// on stderr and keep the built-in default.
pub fn heartbeat_interval_ms() -> u64 {
    static CACHED: OnceLock<u64> = OnceLock::new();
    *CACHED.get_or_init(|| {
        parse_heartbeat_ms(std::env::var("CAESAR_HEARTBEAT_MS").ok().as_deref())
    })
}

/// Parse the env override; `None`/empty means "use the default".
fn parse_heartbeat_ms(raw: Option<&str>) -> u64 {
    match raw.map(str::trim) {
        None | Some("") => DEFAULT_HEARTBEAT_MS,
        Some(s) => match s.parse() {
            Ok(ms) if ms > 0 => ms,
            _ => {
                eprintln!(
                    "caesar: ignoring unparsable CAESAR_HEARTBEAT_MS={s:?} \
                     (want a positive millisecond count); using default {DEFAULT_HEARTBEAT_MS}"
                );
                DEFAULT_HEARTBEAT_MS
            }
        },
    }
}

// Worker lifecycle states published through the heartbeat slot.
const HB_RUNNING: u8 = 0;
const HB_PARKED: u8 = 1;
const HB_PANICKED: u8 = 2;
const HB_EXITED: u8 = 3;

/// The per-worker heartbeat slot: everything the supervisor learns
/// about a worker without taking a lock. Each field sits on its own
/// cache line so the worker's stores never bounce the monitor's reads
/// into the ingest hot path.
struct Heartbeat {
    /// Monotonic liveness counter: bumped once per worker loop
    /// iteration. The monitor judges *this* against the wall clock.
    beat: CachePadded<AtomicU64>,
    /// Cumulative packets applied by the current worker cell.
    recorded: CachePadded<AtomicU64>,
    /// The engine epoch the worker last observed (mirrored from the
    /// control word; diagnostic).
    epoch: CachePadded<AtomicU64>,
    /// Last flush / delta-checkpoint sequence the worker acknowledged.
    ckpt_seq: CachePadded<AtomicU64>,
    /// Lifecycle state (`HB_*`).
    state: CachePadded<AtomicU8>,
    /// Monitor verdict: non-zero means "missed two heartbeat
    /// deadlines"; the engine consumes it at its next service point.
    verdict: CachePadded<AtomicU8>,
}

impl Heartbeat {
    fn new() -> Self {
        Self {
            beat: CachePadded(AtomicU64::new(0)),
            recorded: CachePadded(AtomicU64::new(0)),
            epoch: CachePadded(AtomicU64::new(0)),
            ckpt_seq: CachePadded(AtomicU64::new(0)),
            state: CachePadded(AtomicU8::new(HB_RUNNING)),
            verdict: CachePadded(AtomicU8::new(0)),
        }
    }
}

/// Engine → worker control word.
struct Control {
    /// Generation fence: a worker that observes a generation other
    /// than the one it was spawned with exits immediately and never
    /// touches shared state again. Bumped exactly once, at failover.
    gen: AtomicU64,
    /// Park request (quiesce): the worker drains its ring dry, then
    /// idles at `HB_PARKED` until cleared.
    park: AtomicBool,
    /// Stop request: the worker exits once its ring is empty.
    stop: AtomicBool,
    /// Flush command sequence: when it advances past the worker's
    /// acknowledged sequence, the worker flushes its writeback segment
    /// into the shared SRAM and acks via `Heartbeat::ckpt_seq`.
    flush_seq: AtomicU64,
    /// Current engine epoch (workers mirror it into their heartbeat).
    epoch: AtomicU64,
}

impl Control {
    fn new() -> Self {
        Self {
            gen: AtomicU64::new(0),
            park: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            flush_seq: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }
}

/// What a worker panic left behind, for the engine to service.
struct PanicInfo {
    payload: String,
    unapplied: u64,
}

/// The mutable worker state, owned by whichever side holds the lock:
/// the worker thread while applying a batch, the engine while
/// salvaging, snapshotting, or respawning.
struct WorkerCell {
    worker: ShardWorker,
    /// Packets applied by this cell's workers since the cell was
    /// created (survives in-place panic respawns; reset only by
    /// failover, which folds it into the lane's `recorded_base`).
    recorded: u64,
    panic_info: Option<PanicInfo>,
}

/// Everything one worker thread and the engine share for a lane.
struct LaneShared {
    hb: Heartbeat,
    ctrl: Control,
    cell: Mutex<WorkerCell>,
}

impl LaneShared {
    fn new(worker: ShardWorker) -> Self {
        Self {
            hb: Heartbeat::new(),
            ctrl: Control::new(),
            cell: Mutex::new(WorkerCell { worker, recorded: 0, panic_info: None }),
        }
    }
}

/// Engine-side lane state: the producer endpoint, the shared slot,
/// the thread handle, and the exact accounting counters the worker
/// does not own.
struct ThreadLane {
    tx: spsc::Producer<u64>,
    /// The consumer endpoint, held until the worker thread is spawned
    /// (and returned by the thread when it exits).
    boot: Option<spsc::Consumer<u64>>,
    shared: Arc<LaneShared>,
    handle: Option<JoinHandle<spsc::Consumer<u64>>>,
    offered: u64,
    dropped: u64,
    quarantined: u64,
    /// Recorded count carried over from before the current worker cell
    /// existed (prior failovers, or the pump engine this lane was
    /// built from). Lane total = `recorded_base + hb.recorded`.
    recorded_base: u64,
    respawns: u64,
    /// Flush commands issued to the current worker cell (reset by
    /// failover along with the control word).
    flush_issued: u64,
    retired: IngestStats,
    log: FaultLog,
}

impl ThreadLane {
    fn new(cfg: &CaesarConfig, shard: usize, entries: usize, ring_capacity: usize) -> Self {
        let (tx, rx) = spsc::ring::<u64>(ring_capacity);
        Self {
            tx,
            boot: Some(rx),
            shared: Arc::new(LaneShared::new(ShardWorker::new(
                cfg,
                shard,
                entries,
                WRITEBACK_ACCUMULATE_ALL,
            ))),
            handle: None,
            offered: 0,
            dropped: 0,
            quarantined: 0,
            recorded_base: 0,
            respawns: 0,
            flush_issued: 0,
            retired: IngestStats::default(),
            log: FaultLog::default(),
        }
    }

    fn from_pump_lane(lane: Lane) -> Self {
        let Lane {
            tx,
            rx,
            worker,
            offered,
            recorded,
            dropped,
            quarantined,
            respawns,
            retired,
            log,
            ..
        } = lane;
        // The pump's transient watchdog state (`inline_fallback`,
        // `stalled_attempts`) does not transfer: the threaded runtime
        // has its own supervision. In-ring packets stay in the ring —
        // the worker drains them once spawned.
        Self {
            tx,
            boot: Some(rx),
            shared: Arc::new(LaneShared::new(worker)),
            handle: None,
            offered,
            dropped,
            quarantined,
            recorded_base: recorded,
            respawns,
            flush_issued: 0,
            retired,
            log,
        }
    }

    /// Lane total recorded: carried-over base plus the live cell's
    /// published count.
    fn recorded(&self) -> u64 {
        self.recorded_base + self.shared.hb.recorded.0.load(Ordering::Acquire)
    }

    /// Packets accepted but not yet applied (in the ring, or popped
    /// and mid-batch). Derived, so the mass invariant holds at every
    /// instant by construction.
    fn in_flight(&self) -> u64 {
        self.offered - self.dropped - self.quarantined - self.recorded()
    }
}

/// Monitor-thread shared state: the stop flag and the registry of
/// heartbeat slots to watch (slots are replaced on failover).
struct MonitorShared {
    stop: AtomicBool,
    lanes: Mutex<Vec<Arc<LaneShared>>>,
}

/// The supervisor monitor: stops and joins its thread on drop, so a
/// dropped engine never leaks it.
struct Monitor {
    shared: Arc<MonitorShared>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The heartbeat-supervised detached-thread online engine. See the
/// module docs for the architecture; the API mirrors
/// [`OnlineCaesar`] — same accounting, same snapshot format, same
/// finish semantics — with wall-clock supervision in place of logical
/// watchdog ticks.
///
/// ```
/// use caesar::{CaesarConfig, ThreadedCaesar};
/// use std::time::Duration;
/// let cfg = CaesarConfig { cache_entries: 64, entry_capacity: 8, counters: 2048, k: 3,
///                          ..CaesarConfig::default() };
/// let mut online = ThreadedCaesar::new(cfg, 2)
///     .with_heartbeat_interval(Duration::from_secs(5));
/// for i in 0..10_000u64 {
///     online.offer(i % 100);
/// }
/// let st = online.stats();
/// assert_eq!(st.offered, 10_000);
/// assert_eq!(st.offered, st.recorded + st.dropped + st.quarantined + st.in_flight);
/// let sketch = online.finish(); // joins workers, then drains + merges
/// assert_eq!(sketch.sram().total_added(), 10_000);
/// ```
pub struct ThreadedCaesar {
    cfg: CaesarConfig,
    shards: usize,
    policy: BackpressurePolicy,
    ring_capacity: usize,
    epoch_len: u64,
    /// Not used by this runtime (supervision is wall-clock), but
    /// carried and serialized so snapshots stay byte-compatible with
    /// the pump's layout.
    watchdog_deadline: u64,
    heartbeat: Duration,
    pin_workers: bool,
    sram: Arc<AtomicCounterArray>,
    kmap: Arc<KCounterMap>,
    entries: Vec<usize>,
    lanes: Vec<ThreadLane>,
    epoch: u64,
    merges: u64,
    offered_total: u64,
    injector: Arc<Mutex<FaultInjector>>,
    injector_live: bool,
    chain: Option<(u64, u64)>,
    monitor: Option<Monitor>,
    started: bool,
    quiesced: bool,
}

impl ThreadedCaesar {
    /// A fresh engine with the default policy
    /// ([`BackpressurePolicy::Block`]), ring capacity
    /// ([`crate::DEFAULT_RING_CAPACITY`]), epoch length
    /// ([`crate::DEFAULT_EPOCH_LEN`]) and heartbeat interval
    /// ([`heartbeat_interval_ms`]). Worker threads spawn lazily on the
    /// first offer (or rotation/snapshot), so an engine that is built
    /// and dropped costs nothing.
    ///
    /// # Panics
    /// Panics if `shards == 0` or the configuration is invalid.
    pub fn new(cfg: CaesarConfig, shards: usize) -> Self {
        let (sram, kmap, entries) = ConcurrentCaesar::scaffold(&cfg, shards);
        let ring_capacity = crate::DEFAULT_RING_CAPACITY;
        let lanes = (0..shards)
            .map(|shard| ThreadLane::new(&cfg, shard, entries[shard], ring_capacity))
            .collect();
        Self {
            cfg,
            shards,
            policy: BackpressurePolicy::Block,
            ring_capacity,
            epoch_len: crate::DEFAULT_EPOCH_LEN,
            watchdog_deadline: crate::DEFAULT_WATCHDOG_DEADLINE,
            heartbeat: Duration::from_millis(heartbeat_interval_ms()),
            pin_workers: false,
            sram: Arc::new(sram),
            kmap: Arc::new(kmap),
            entries,
            lanes,
            epoch: 0,
            merges: 0,
            offered_total: 0,
            injector: Arc::new(Mutex::new(FaultInjector::none())),
            injector_live: false,
            chain: None,
            monitor: None,
            started: false,
            quiesced: false,
        }
    }

    /// Take over a pump engine's complete state — counters, worker
    /// state machines, ring contents, fault logs, chain position —
    /// without a codec round trip. The inverse of
    /// [`ThreadedCaesar::into_online`].
    ///
    /// # Panics
    /// Panics if the pump is configured with
    /// [`BackpressurePolicy::DropOldest`], which requires consumer-side
    /// ownership the threaded runtime hands to its workers.
    pub fn from_online(online: OnlineCaesar) -> Self {
        let OnlineCaesar {
            cfg,
            shards,
            policy,
            ring_capacity,
            epoch_len,
            watchdog_deadline,
            sram,
            kmap,
            entries,
            lanes,
            epoch,
            merges,
            offered_total,
            injector,
            chain,
        } = online;
        assert!(
            policy != BackpressurePolicy::DropOldest,
            "DropOldest needs the consumer endpoint, which threaded workers own"
        );
        let injector_live = !injector.is_inert();
        let lanes: Vec<ThreadLane> =
            lanes.into_iter().map(ThreadLane::from_pump_lane).collect();
        let engine = Self {
            cfg,
            shards,
            policy,
            ring_capacity,
            epoch_len,
            watchdog_deadline,
            heartbeat: Duration::from_millis(heartbeat_interval_ms()),
            pin_workers: false,
            sram: Arc::new(sram),
            kmap: Arc::new(kmap),
            entries,
            lanes,
            epoch,
            merges,
            offered_total,
            injector: Arc::new(Mutex::new(injector)),
            injector_live,
            chain,
            monitor: None,
            started: false,
            quiesced: false,
        };
        for lane in &engine.lanes {
            lane.shared.ctrl.epoch.store(engine.epoch, Ordering::Release);
        }
        engine
    }

    /// Set the backpressure policy (builder-style; call before
    /// offering packets). [`BackpressurePolicy::DropOldest`] is not
    /// supported here: head drop needs the consumer endpoint, which
    /// the worker threads own.
    ///
    /// # Panics
    /// Panics on [`BackpressurePolicy::DropOldest`].
    pub fn with_policy(mut self, policy: BackpressurePolicy) -> Self {
        assert!(
            policy != BackpressurePolicy::DropOldest,
            "DropOldest needs the consumer endpoint, which threaded workers own"
        );
        self.policy = policy;
        self
    }

    /// Set the per-shard ring capacity (`>= 1`). Rebuilds the (empty)
    /// rings, so call before offering packets.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or packets have been offered.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        assert_eq!(self.offered_total, 0, "set ring capacity before offering");
        assert!(!self.started, "set ring capacity before workers spawn");
        self.ring_capacity = capacity;
        for (shard, lane) in self.lanes.iter_mut().enumerate() {
            *lane = ThreadLane::new(&self.cfg, shard, self.entries[shard], capacity);
        }
        self
    }

    /// Set the epoch length in offered packets (`>= 1`).
    ///
    /// # Panics
    /// Panics if `epoch_len == 0`.
    pub fn with_epoch_len(mut self, epoch_len: u64) -> Self {
        assert!(epoch_len >= 1, "epoch length must be at least 1");
        self.epoch_len = epoch_len;
        self
    }

    /// Set the wall-clock heartbeat interval. The monitor declares a
    /// worker hung when its beat misses **two** consecutive deadlines
    /// of this length. Choose generously on oversubscribed hosts: a
    /// false verdict quarantines real traffic.
    ///
    /// # Panics
    /// Panics if `interval` is zero or workers already spawned.
    pub fn with_heartbeat_interval(mut self, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "heartbeat interval must be non-zero");
        assert!(!self.started, "set the heartbeat interval before workers spawn");
        self.heartbeat = interval;
        self
    }

    /// Pin each worker thread to a core (shard *i* → CPU
    /// `i % cores`, via [`support::affinity::pin_shard`]). A loud
    /// no-op on hosts that cannot pin.
    ///
    /// # Panics
    /// Panics if workers already spawned.
    pub fn with_pinning(mut self, pin: bool) -> Self {
        assert!(!self.started, "set pinning before workers spawn");
        self.pin_workers = pin;
        self
    }

    /// Attach a deterministic fault-injection schedule (testing).
    /// Thread-aware sites: [`FaultSite::WorkerPanic`] panics the
    /// worker *on its own thread* between two packets;
    /// [`FaultSite::WorkerHang`] stops the worker's heartbeat entirely
    /// (until the failover fence releases it);
    /// [`FaultSite::SlowDrain`] delays one iteration by one heartbeat
    /// interval — visible to the monitor but inside the two-deadline
    /// budget, so it must **not** trip failover.
    /// [`FaultSite::RingStall`] has no meaning here (there are no pump
    /// attempts) and never fires.
    ///
    /// # Panics
    /// Panics if workers already spawned.
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        assert!(!self.started, "attach the injector before workers spawn");
        self.injector_live = !injector.is_inert();
        self.injector = Arc::new(Mutex::new(injector));
        self
    }

    // -----------------------------------------------------------------
    // Thread lifecycle
    // -----------------------------------------------------------------

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for shard in 0..self.shards {
            self.spawn_worker(shard);
        }
        let shared = Arc::new(MonitorShared {
            stop: AtomicBool::new(false),
            lanes: Mutex::new(self.lanes.iter().map(|l| Arc::clone(&l.shared)).collect()),
        });
        let for_thread = Arc::clone(&shared);
        let interval = self.heartbeat;
        let handle = std::thread::Builder::new()
            .name("caesar-monitor".into())
            .spawn(move || monitor_loop(&for_thread, interval))
            .expect("spawn heartbeat monitor thread");
        self.monitor = Some(Monitor { shared, handle: Some(handle) });
    }

    fn spawn_worker(&mut self, shard: usize) {
        let lane = &mut self.lanes[shard];
        let rx = lane.boot.take().expect("consumer endpoint available to spawn");
        let shared = Arc::clone(&lane.shared);
        let sram = Arc::clone(&self.sram);
        let kmap = Arc::clone(&self.kmap);
        let injector = if self.injector_live { Some(Arc::clone(&self.injector)) } else { None };
        let ctx = WorkerCtx {
            shard,
            shards: self.shards,
            interval: self.heartbeat,
            pin: self.pin_workers,
        };
        let handle = std::thread::Builder::new()
            .name(format!("caesar-worker-{shard}"))
            .spawn(move || worker_loop(ctx, rx, &shared, &sram, &kmap, injector.as_deref()))
            .expect("spawn shard worker thread");
        lane.handle = Some(handle);
    }

    /// Consume any pending worker event on `shard`: a surfaced panic
    /// first (cheap respawn-in-place), then a monitor verdict (full
    /// failover). Called on every offer and inside every wait loop.
    fn service_lane(&mut self, shard: usize) {
        if self.lanes[shard].shared.hb.state.0.load(Ordering::Acquire) == HB_PANICKED {
            self.service_panic(shard);
        }
        if self.lanes[shard].shared.hb.verdict.0.load(Ordering::Acquire) != 0 {
            self.heartbeat_failover(shard);
        }
    }

    /// A worker panicked and parked itself at `HB_PANICKED`: salvage
    /// the surviving cache mass into the shared SRAM (on *this*
    /// thread — the worker is waiting, not racing us), respawn the
    /// state machine in place, log the fault, release the worker.
    fn service_panic(&mut self, shard: usize) {
        let epoch = self.epoch;
        let Self { lanes, sram, kmap, cfg, entries, .. } = self;
        let lane = &mut lanes[shard];
        let shared = Arc::clone(&lane.shared);
        let mut cell = shared.cell.lock().expect("worker cell lock");
        let Some(PanicInfo { payload, unapplied }) = cell.panic_info.take() else {
            drop(cell);
            return;
        };
        lane.quarantined += unapplied;
        let salvaged_units = cell.worker.drain_cache(&**sram, kmap);
        cell.worker.flush_writeback(sram);
        lane.retired.merge(&cell.worker.ingest_stats());
        cell.worker = ShardWorker::new(cfg, shard, entries[shard], WRITEBACK_ACCUMULATE_ALL);
        drop(cell);
        lane.respawns += 1;
        let exact = payload == INJECTED_PANIC;
        lane.log.records.push(FaultRecord {
            kind: FaultKind::WorkerPanic,
            epoch,
            at_offered: lane.offered,
            quarantined: unapplied,
            salvaged_units,
            payload,
            exact,
        });
        // Releasing the state releases the worker thread, which loops
        // straight back into draining against the fresh state machine.
        lane.shared.hb.state.0.store(HB_RUNNING, Ordering::Release);
    }

    /// The monitor found a worker that missed two heartbeat deadlines.
    /// Seal the ring, fence the zombie behind a generation bump,
    /// salvage what can be reached without racing it, quarantine the
    /// exact in-flight residue, and respawn a fresh worker on a fresh
    /// ring.
    fn heartbeat_failover(&mut self, shard: usize) {
        let interval = self.heartbeat;
        let epoch = self.epoch;
        {
            let Self { lanes, sram, kmap, cfg, entries, ring_capacity, quiesced, .. } = self;
            let lane = &mut lanes[shard];
            // Seal first: nothing new enters the wedged ring, and a
            // zombie that wakes up sees a closed, abandoned ring.
            lane.tx.seal();
            let old = Arc::clone(&lane.shared);
            old.ctrl.gen.fetch_add(1, Ordering::Release);
            let (exact, salvaged_units) = match old.cell.try_lock() {
                Ok(mut cell) => {
                    // Hung at a batch boundary (the injected form):
                    // the cell is free, so the applied count is final
                    // and the accumulator is safe to salvage.
                    lane.recorded_base += cell.recorded;
                    let salvaged = cell.worker.drain_cache(&**sram, kmap);
                    cell.worker.flush_writeback(sram);
                    lane.retired.merge(&cell.worker.ingest_stats());
                    (true, salvaged)
                }
                Err(_) => {
                    // Genuinely wedged mid-batch: the zombie owns the
                    // cell. Its published prefix counts as recorded,
                    // but its staged mass is stranded in an orphaned
                    // accumulator the fence will never let it flush.
                    // Flagged inexact, like a genuine mid-record panic.
                    lane.recorded_base += old.hb.recorded.0.load(Ordering::Acquire);
                    (false, 0)
                }
            };
            let residual = lane.offered - lane.dropped - lane.quarantined - lane.recorded_base;
            lane.quarantined += residual;
            lane.respawns += 1;
            lane.log.records.push(FaultRecord {
                kind: FaultKind::WatchdogFailover,
                epoch,
                at_offered: lane.offered,
                quarantined: residual,
                salvaged_units,
                payload: format!(
                    "worker heartbeat missed two {}ms deadlines; lane failed over",
                    interval.as_millis()
                ),
                exact,
            });
            // Fresh ring, fresh shared slot, fresh state machine. The
            // old thread handle is dropped (detached); the zombie
            // exits on its next fence or closed-ring check.
            let (tx, rx) = spsc::ring::<u64>(*ring_capacity);
            lane.tx = tx;
            lane.boot = Some(rx);
            lane.shared = Arc::new(LaneShared::new(ShardWorker::new(
                cfg,
                shard,
                entries[shard],
                WRITEBACK_ACCUMULATE_ALL,
            )));
            lane.shared.ctrl.epoch.store(epoch, Ordering::Release);
            lane.shared.ctrl.park.store(*quiesced, Ordering::Release);
            lane.flush_issued = 0;
            let _zombie = lane.handle.take();
        }
        if self.started {
            if let Some(mon) = &self.monitor {
                let mut registry = mon.shared.lanes.lock().expect("monitor registry lock");
                registry[shard] = Arc::clone(&self.lanes[shard].shared);
            }
            self.spawn_worker(shard);
        }
    }

    // -----------------------------------------------------------------
    // Ingest
    // -----------------------------------------------------------------

    /// Which shard a flow routes to.
    fn route(&self, flow: u64) -> usize {
        if self.shards == 1 {
            0
        } else {
            ConcurrentCaesar::shard_of(flow, self.shards, self.cfg.seed)
        }
    }

    /// Offer one packet of `flow` to the engine. Never blocks the
    /// caller indefinitely: a wedged worker is bounded by the
    /// two-deadline heartbeat verdict, which fails the lane over.
    pub fn offer(&mut self, flow: u64) {
        self.ensure_started();
        let shard = self.route(flow);
        self.offered_total += 1;
        self.service_lane(shard);
        // The lane's `offered` counter moves only once the packet's
        // fate is settled (queued or shed). A failover can fire while
        // this packet is still in our hand — if it were pre-counted,
        // the failover's residual quarantine would cover it AND the
        // retry would queue it into the fresh ring, double-counting
        // one packet and wedging every drain wait on an underflowed
        // in-flight figure.
        let mut backoff = spsc::Backoff::new();
        loop {
            if self.lanes[shard].tx.try_push(flow).is_ok() {
                self.lanes[shard].offered += 1;
                break;
            }
            // Ring full: the worker is behind (or wedged — the monitor
            // decides which).
            match self.policy {
                BackpressurePolicy::Block => {
                    self.service_lane(shard);
                    backoff.wait();
                }
                BackpressurePolicy::DropNewest => {
                    let lane = &mut self.lanes[shard];
                    lane.offered += 1;
                    lane.dropped += 1;
                    break;
                }
                BackpressurePolicy::DropOldest => {
                    unreachable!("rejected by with_policy/from_online")
                }
            }
        }
        if self.offered_total.is_multiple_of(self.epoch_len) {
            self.rotate_epoch();
        }
    }

    /// Offer a batch of packets (`for` loop over
    /// [`ThreadedCaesar::offer`]).
    pub fn offer_batch(&mut self, flows: &[u64]) {
        for &flow in flows {
            self.offer(flow);
        }
    }

    /// Spin (servicing worker events) until `shard` has applied every
    /// accepted packet.
    fn wait_drained(&mut self, shard: usize) {
        let mut backoff = spsc::Backoff::new();
        loop {
            self.service_lane(shard);
            if self.lanes[shard].in_flight() == 0 {
                return;
            }
            backoff.wait();
        }
    }

    /// Command `shard`'s worker to flush its writeback segment and
    /// wait for the acknowledgement. Serialized per lane: the caller
    /// runs these in ascending shard order, so the shared SRAM sees
    /// the same merge order as the pump — bit-identical saturation
    /// tallies included.
    fn command_flush(&mut self, shard: usize) {
        self.lanes[shard].flush_issued += 1;
        let target = self.lanes[shard].flush_issued;
        self.lanes[shard].shared.ctrl.flush_seq.store(target, Ordering::Release);
        let mut backoff = spsc::Backoff::new();
        loop {
            if self.lanes[shard].shared.hb.ckpt_seq.0.load(Ordering::Acquire) >= target {
                return;
            }
            self.service_lane(shard);
            if self.lanes[shard].flush_issued == 0 {
                // A failover replaced the lane mid-flush: the salvage
                // already flushed everything the dead worker had
                // staged, and the fresh worker has nothing staged.
                return;
            }
            backoff.wait();
        }
    }

    /// Epoch boundary: drain every lane dry, then flush every lane's
    /// staged writeback into the shared SRAM in ascending shard order
    /// (each flush acknowledged before the next is commanded), and
    /// advance the epoch.
    fn rotate_epoch(&mut self) {
        self.ensure_started();
        for shard in 0..self.shards {
            self.wait_drained(shard);
        }
        if self.injector_live {
            // Deterministic saturation-degradation seam: one tick per
            // shard per epoch boundary, engine-side (same schedule as
            // the pump).
            let mut injector = self.injector.lock().expect("injector lock");
            for shard in 0..self.shards {
                if injector.tick(FaultSite::ForceSaturation, shard) {
                    self.sram.force_saturation(shard, 1);
                }
            }
        }
        for shard in 0..self.shards {
            self.command_flush(shard);
        }
        self.epoch += 1;
        self.merges += 1;
        for lane in &self.lanes {
            lane.shared.ctrl.epoch.store(self.epoch, Ordering::Release);
        }
    }

    /// Force an epoch rotation now (drain + merge), without waiting
    /// for the packet-count boundary.
    pub fn merge_now(&mut self) {
        self.rotate_epoch();
    }

    // -----------------------------------------------------------------
    // Quiesce (for snapshots)
    // -----------------------------------------------------------------

    /// Park every worker at a checkpoint-safe point: rings drained
    /// dry, all accepted packets applied, workers idling at
    /// `HB_PARKED`. The engine then owns every cell uncontended.
    fn quiesce(&mut self) {
        self.ensure_started();
        self.quiesced = true;
        for lane in &self.lanes {
            lane.shared.ctrl.park.store(true, Ordering::Release);
        }
        for shard in 0..self.shards {
            let mut backoff = spsc::Backoff::new();
            loop {
                self.service_lane(shard);
                let lane = &self.lanes[shard];
                if lane.shared.hb.state.0.load(Ordering::Acquire) == HB_PARKED
                    && lane.in_flight() == 0
                {
                    break;
                }
                backoff.wait();
            }
        }
    }

    /// Release parked workers back into their drain loops.
    fn resume(&mut self) {
        self.quiesced = false;
        for lane in &self.lanes {
            lane.shared.ctrl.park.store(false, Ordering::Release);
        }
    }

    // -----------------------------------------------------------------
    // Snapshot / delta checkpoints
    // -----------------------------------------------------------------

    fn header(&self) -> EngineHeader<'_> {
        EngineHeader {
            cfg: &self.cfg,
            shards: self.shards,
            policy: self.policy,
            ring_capacity: self.ring_capacity,
            epoch_len: self.epoch_len,
            watchdog_deadline: self.watchdog_deadline,
            epoch: self.epoch,
            merges: self.merges,
            offered_total: self.offered_total,
        }
    }

    fn encode_lanes(&mut self, buf: &mut Vec<u8>) {
        for lane in &self.lanes {
            let cell = lane.shared.cell.lock().expect("worker cell lock");
            encode_lane_section(
                buf,
                &LaneEncodeParts {
                    offered: lane.offered,
                    recorded: lane.recorded_base + cell.recorded,
                    dropped: lane.dropped,
                    quarantined: lane.quarantined,
                    respawns: lane.respawns,
                    // Quiesced: rings are empty and the pump-specific
                    // watchdog state has no threaded counterpart.
                    inline_fallback: false,
                    stalled_attempts: 0,
                    pending: &[],
                    retired: &lane.retired,
                    state: &cell.worker.snapshot_state(),
                    log: &lane.log,
                },
            );
        }
    }

    /// Serialize the complete dynamic state into a sealed blob in the
    /// **same format** as [`OnlineCaesar::snapshot`] — either engine
    /// restores the other's blobs. The engine is quiesced first (all
    /// accepted packets applied, workers parked), so the snapshot is
    /// taken at a boundary-equivalent point; ingest resumes before
    /// this returns. Anchors a delta-checkpoint chain, exactly like
    /// the pump.
    pub fn snapshot(&mut self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.snapshot_into(&mut buf);
        buf
    }

    /// [`ThreadedCaesar::snapshot`] into a caller-owned buffer
    /// (cleared first).
    pub fn snapshot_into(&mut self, buf: &mut Vec<u8>) {
        self.quiesce();
        buf.clear();
        encode_snapshot_prelude(buf, &self.header(), &self.sram);
        self.encode_lanes(buf);
        seal(buf);
        self.chain = Some((hashkit::fnv::fnv1a64(buf), 0));
        let _ = self.sram.take_dirty_blocks();
        self.resume();
    }

    /// Emit a sealed `CDLT` delta-checkpoint frame (see
    /// [`OnlineCaesar::checkpoint_delta`] — same format, same chain
    /// discipline). Quiesces, emits, resumes.
    ///
    /// # Errors
    /// [`DeltaError::NoBase`] when no snapshot has anchored a chain.
    pub fn checkpoint_delta(&mut self) -> Result<Vec<u8>, DeltaError> {
        let mut buf = Vec::new();
        self.checkpoint_delta_into(&mut buf)?;
        Ok(buf)
    }

    /// [`ThreadedCaesar::checkpoint_delta`] into a caller-owned buffer
    /// (cleared first).
    ///
    /// # Errors
    /// [`DeltaError::NoBase`] when no snapshot has anchored a chain.
    pub fn checkpoint_delta_into(&mut self, buf: &mut Vec<u8>) -> Result<(), DeltaError> {
        let (chain_id, seq) = self.chain.ok_or(DeltaError::NoBase)?;
        self.quiesce();
        buf.clear();
        encode_delta_prelude(buf, &self.header(), &self.sram, chain_id, seq + 1);
        self.encode_lanes(buf);
        seal(buf);
        self.chain = Some((chain_id, seq + 1));
        self.resume();
        Ok(())
    }

    /// Rebuild a threaded engine from a snapshot blob (the pump's or
    /// this runtime's — same format). Workers spawn lazily on the
    /// first offer.
    ///
    /// # Errors
    /// Everything [`OnlineCaesar::restore`] rejects.
    ///
    /// # Panics
    /// Panics if the blob encodes [`BackpressurePolicy::DropOldest`]
    /// (unsupported here — restore through [`OnlineCaesar`] instead).
    pub fn restore(bytes: &[u8]) -> Result<Self, RestoreError> {
        OnlineCaesar::restore(bytes).map(Self::from_online)
    }

    /// Rebuild a threaded engine from a full-snapshot anchor plus its
    /// ordered delta frames (see [`OnlineCaesar::restore_chain`]).
    ///
    /// # Errors
    /// [`ChainError::Base`] / [`ChainError::Delta`] as the pump.
    ///
    /// # Panics
    /// Panics if the chain encodes [`BackpressurePolicy::DropOldest`].
    pub fn restore_chain<B: AsRef<[u8]>>(base: &[u8], deltas: &[B]) -> Result<Self, ChainError> {
        OnlineCaesar::restore_chain(base, deltas).map(Self::from_online)
    }

    /// The engine's delta-chain position: `(chain id, deltas emitted
    /// since the anchoring snapshot)`, or `None` before any snapshot.
    pub fn chain_position(&self) -> Option<(u64, u64)> {
        self.chain
    }

    // -----------------------------------------------------------------
    // Teardown
    // -----------------------------------------------------------------

    /// Quiesce, stop the monitor and every worker thread, join them,
    /// and hand the complete state back as a deterministic pump
    /// engine. Bit-preserving: the pump's subsequent snapshots,
    /// queries and [`OnlineCaesar::finish`] behave exactly as if it
    /// had run the whole stream itself (fault-free).
    pub fn into_online(mut self) -> OnlineCaesar {
        self.quiesce();
        // Stop the monitor first so it cannot judge a worker that is
        // mid-shutdown.
        drop(self.monitor.take());
        for lane in &mut self.lanes {
            lane.shared.ctrl.stop.store(true, Ordering::Release);
            lane.shared.ctrl.park.store(false, Ordering::Release);
        }
        let Self {
            cfg,
            shards,
            policy,
            ring_capacity,
            epoch_len,
            watchdog_deadline,
            sram,
            kmap,
            entries,
            lanes,
            epoch,
            merges,
            offered_total,
            injector,
            injector_live,
            mut chain,
            ..
        } = self;
        let mut pump_lanes = Vec::with_capacity(shards);
        for lane in lanes {
            let ThreadLane {
                tx,
                boot,
                shared,
                handle,
                offered,
                dropped,
                quarantined,
                recorded_base,
                respawns,
                retired,
                log,
                ..
            } = lane;
            let rx = match handle {
                Some(h) => h.join().expect("shard worker thread exits cleanly"),
                None => boot.expect("unstarted lane retains its consumer endpoint"),
            };
            let shared = Arc::try_unwrap(shared)
                .ok()
                .expect("worker joined; engine holds the last reference");
            let cell = shared.cell.into_inner().expect("worker cell lock unpoisoned");
            pump_lanes.push(Lane {
                tx,
                rx,
                worker: cell.worker,
                buf: Vec::with_capacity(STREAM_CHUNK),
                offered,
                recorded: recorded_base + cell.recorded,
                dropped,
                quarantined,
                in_ring: 0,
                respawns,
                inline_fallback: false,
                stalled_attempts: 0,
                retired,
                log,
            });
        }
        let sram = Arc::try_unwrap(sram).unwrap_or_else(|arc| {
            // A fenced zombie from an earlier failover still holds a
            // reference; clone the state into a fresh array. The
            // original's dirty-block baseline goes with it, so the
            // delta chain (if any) must re-anchor.
            chain = None;
            AtomicCounterArray::restore(arc.bits(), &arc.snapshot(), &arc.tally_snapshot())
        });
        let kmap = Arc::try_unwrap(kmap).unwrap_or_else(|_| {
            // Same construction the pump's restore path uses — the
            // k-map is a pure function of the config.
            KCounterMap::new(cfg.k, cfg.counters, cfg.seed ^ 0x5EED_5EED)
        });
        let injector = if injector_live {
            Arc::try_unwrap(injector)
                .map(|m| m.into_inner().expect("injector lock unpoisoned"))
                .unwrap_or_else(|_| FaultInjector::none())
        } else {
            FaultInjector::none()
        };
        OnlineCaesar {
            cfg,
            shards,
            policy,
            ring_capacity,
            epoch_len,
            watchdog_deadline,
            sram,
            kmap,
            entries,
            lanes: pump_lanes,
            epoch,
            merges,
            offered_total,
            injector,
            chain,
        }
    }

    /// End of measurement: join every worker, dump every cache, merge
    /// every segment — then hand back a finished [`ConcurrentCaesar`].
    /// On a fault-free run this is **bit-identical** to
    /// [`ConcurrentCaesar::build`] over the same stream.
    pub fn finish(self) -> ConcurrentCaesar {
        self.into_online().finish()
    }

    // -----------------------------------------------------------------
    // Observability (mirrors the pump's API)
    // -----------------------------------------------------------------

    /// Aggregate accounting across all lanes.
    pub fn stats(&self) -> OnlineStats {
        let mut st = OnlineStats {
            offered: self.offered_total,
            recorded: 0,
            dropped: 0,
            quarantined: 0,
            in_flight: 0,
            epoch: self.epoch,
            merges: self.merges,
            respawns: 0,
            failovers: 0,
        };
        for lane in &self.lanes {
            // One load of the worker's recorded counter per lane, so
            // the reported snapshot satisfies the mass invariant even
            // while the worker races ahead.
            let recorded = lane.recorded();
            st.recorded += recorded;
            st.dropped += lane.dropped;
            st.quarantined += lane.quarantined;
            st.in_flight += lane.offered - lane.dropped - lane.quarantined - recorded;
            st.respawns += lane.respawns;
            st.failovers += lane.log.failovers() as u64;
        }
        st
    }

    /// Per-shard accounting snapshot.
    ///
    /// # Panics
    /// Panics if `shard >= shards`.
    pub fn lane_stats(&self, shard: usize) -> LaneStats {
        let lane = &self.lanes[shard];
        let recorded = lane.recorded();
        LaneStats {
            shard,
            offered: lane.offered,
            recorded,
            dropped: lane.dropped,
            quarantined: lane.quarantined,
            in_flight: lane.offered - lane.dropped - lane.quarantined - recorded,
            respawns: lane.respawns,
            inline_fallback: false,
        }
    }

    /// The shard's fault history.
    ///
    /// # Panics
    /// Panics if `shard >= shards`.
    pub fn fault_log(&self, shard: usize) -> &FaultLog {
        &self.lanes[shard].log
    }

    /// Inspect the fault-injection schedule (fired/pending counts).
    /// Unlike the pump's [`OnlineCaesar::injector`], the threaded
    /// injector is shared with the worker threads behind a mutex, so
    /// this borrows it to `f` under a brief lock.
    pub fn with_injector_state<R>(&self, f: impl FnOnce(&FaultInjector) -> R) -> R {
        f(&self.injector.lock().expect("fault injector lock"))
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configuration in use.
    pub fn config(&self) -> &CaesarConfig {
        &self.cfg
    }

    /// Current epoch ordinal.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The heartbeat interval in effect.
    pub fn heartbeat_interval(&self) -> Duration {
        self.heartbeat
    }

    /// The shared SRAM (query-visible state as of the last merge or
    /// salvage).
    pub fn sram(&self) -> &AtomicCounterArray {
        &self.sram
    }

    /// Unit mass recorded but not yet query-visible: resident in shard
    /// caches or staged in writeback segments. Takes each worker's
    /// cell lock briefly.
    pub fn unmerged_units(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| {
                let cell = l.shared.cell.lock().expect("worker cell lock");
                cell.worker.resident_units() + cell.worker.staged_units()
            })
            .sum()
    }

    /// Estimator parameters at the current visible state.
    pub fn params(&self) -> EstimateParams {
        EstimateParams {
            k: self.cfg.k,
            y: self.cfg.entry_capacity,
            counters: self.cfg.counters,
            total_packets: self.sram.total_added(),
        }
    }

    /// Query with an explicit estimator against the visible (merged)
    /// state. Ingest continues unaffected.
    pub fn estimate(&self, flow: u64, estimator: Estimator) -> Estimate {
        let w: Vec<u64> = self
            .kmap
            .indices(flow)
            .into_iter()
            .map(|i| self.sram.get(i))
            .collect();
        let params = self.params();
        match estimator {
            Estimator::Csm => csm::estimate(&w, &params),
            Estimator::Mlm => mlm::estimate(&w, &params),
        }
    }

    /// Clamped default-estimator query.
    pub fn query(&self, flow: u64) -> f64 {
        self.estimate(flow, self.cfg.estimator).clamped()
    }

    /// Health-annotated query: the estimate plus saturation flags and
    /// the flow's shard-exact loss fraction folded into a confidence
    /// score.
    pub fn query_health(&self, flow: u64) -> QueryHealth {
        let lane = &self.lanes[self.route(flow)];
        let lost = lane.dropped + lane.quarantined;
        let loss_fraction = if lane.offered == 0 {
            0.0
        } else {
            lost as f64 / lane.offered as f64
        };
        query_health(
            &self.kmap,
            &*self.sram,
            &self.params(),
            self.cfg.estimator,
            flow,
            loss_fraction,
        )
    }

    /// Export the current visible state as a wire-transportable
    /// [`SketchPayload`] — what a supervised measurement tap pushes to
    /// an aggregator. Call [`ThreadedCaesar::merge_now`] first if the
    /// payload should include everything offered so far.
    pub fn export_sketch(&self) -> SketchPayload {
        let mut evictions = 0;
        for lane in &self.lanes {
            let cell = lane.shared.cell.lock().expect("worker cell lock");
            evictions += lane.retired.evictions + cell.worker.ingest_stats().evictions;
        }
        SketchPayload {
            fingerprint: SketchFingerprint::of(&self.cfg),
            counters: self.sram.snapshot(),
            total_added: self.sram.total_added(),
            saturation_events: self.sram.saturations(),
            evictions,
        }
    }
}

/// Per-spawn worker parameters (bundled to keep the thread closure
/// readable).
struct WorkerCtx {
    shard: usize,
    shards: usize,
    interval: Duration,
    pin: bool,
}

/// The detached worker thread body. Returns the consumer endpoint so
/// [`ThreadedCaesar::into_online`] can reassemble the pump's lane.
///
/// Exit paths: generation fence (failover), stop request with an
/// empty ring (teardown), or a closed *and* empty ring (the engine
/// was dropped, or sealed the ring at failover).
fn worker_loop(
    ctx: WorkerCtx,
    mut rx: spsc::Consumer<u64>,
    shared: &LaneShared,
    sram: &AtomicCounterArray,
    kmap: &KCounterMap,
    injector: Option<&Mutex<FaultInjector>>,
) -> spsc::Consumer<u64> {
    if ctx.pin {
        let _ = support::affinity::pin_shard(ctx.shard, ctx.shards);
    }
    let my_gen = shared.ctrl.gen.load(Ordering::Acquire);
    let fenced = |rx: &mut spsc::Consumer<u64>| {
        shared.ctrl.gen.load(Ordering::Acquire) != my_gen
            || (rx.is_closed() && rx.is_empty())
    };
    let mut buf: Vec<u64> = Vec::with_capacity(STREAM_CHUNK);
    let mut flush_ack = 0u64;
    let mut idle = 0u32;
    loop {
        if shared.ctrl.gen.load(Ordering::Acquire) != my_gen {
            shared.hb.state.0.store(HB_EXITED, Ordering::Release);
            return rx;
        }
        shared.hb.beat.0.fetch_add(1, Ordering::Release);
        shared
            .hb
            .epoch
            .0
            .store(shared.ctrl.epoch.load(Ordering::Acquire), Ordering::Release);
        if let Some(inj) = injector {
            // Thread-aware fault hooks, at batch boundaries so the
            // accounting stays exact.
            let (hang, nap) = {
                let mut guard = inj.lock().expect("injector lock");
                (
                    guard.tick(FaultSite::WorkerHang, ctx.shard),
                    guard.tick(FaultSite::SlowDrain, ctx.shard),
                )
            };
            if hang {
                // Stop heartbeating entirely: the monitor must notice
                // and the engine must fail the lane over. Only the
                // fence (or an abandoned ring) releases the zombie.
                while !fenced(&mut rx) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                shared.hb.state.0.store(HB_EXITED, Ordering::Release);
                return rx;
            }
            if nap {
                // One heartbeat-interval stall: visibly late, but
                // inside the two-deadline budget — must NOT fail over.
                std::thread::sleep(ctx.interval);
            }
        }
        buf.clear();
        let n = rx.pop_batch(&mut buf, STREAM_CHUNK);
        if n == 0 {
            let seq = shared.ctrl.flush_seq.load(Ordering::Acquire);
            if seq != flush_ack {
                let mut cell = shared.cell.lock().expect("worker cell lock");
                if shared.ctrl.gen.load(Ordering::Acquire) != my_gen {
                    shared.hb.state.0.store(HB_EXITED, Ordering::Release);
                    return rx;
                }
                cell.worker.flush_writeback(sram);
                drop(cell);
                flush_ack = seq;
                shared.hb.ckpt_seq.0.store(seq, Ordering::Release);
                continue;
            }
            if shared.ctrl.park.load(Ordering::Acquire) {
                shared.hb.state.0.store(HB_PARKED, Ordering::Release);
                while shared.ctrl.park.load(Ordering::Acquire)
                    && !shared.ctrl.stop.load(Ordering::Acquire)
                    && !fenced(&mut rx)
                {
                    std::thread::sleep(Duration::from_micros(200));
                }
                shared.hb.state.0.store(HB_RUNNING, Ordering::Release);
                continue;
            }
            if (shared.ctrl.stop.load(Ordering::Acquire) || rx.is_closed()) && rx.is_empty() {
                shared.hb.state.0.store(HB_EXITED, Ordering::Release);
                return rx;
            }
            idle += 1;
            if idle > 64 {
                std::thread::sleep(Duration::from_micros(200));
            } else {
                std::thread::yield_now();
            }
            continue;
        }
        idle = 0;
        let mut cell = shared.cell.lock().expect("worker cell lock");
        if shared.ctrl.gen.load(Ordering::Acquire) != my_gen {
            // Fenced between pop and apply: the popped packets are
            // part of the residual the failover quarantined. Applying
            // them now would double-count.
            shared.hb.state.0.store(HB_EXITED, Ordering::Release);
            return rx;
        }
        match apply_batch(&mut cell.worker, &buf, sram, kmap, injector, ctx.shard) {
            Ok(()) => {
                cell.recorded += n as u64;
                let recorded = cell.recorded;
                drop(cell);
                shared.hb.recorded.0.store(recorded, Ordering::Release);
            }
            Err((prefix, payload)) => {
                cell.recorded += prefix;
                let recorded = cell.recorded;
                cell.panic_info = Some(PanicInfo { payload, unapplied: n as u64 - prefix });
                drop(cell);
                shared.hb.recorded.0.store(recorded, Ordering::Release);
                shared.hb.state.0.store(HB_PANICKED, Ordering::Release);
                // Keep beating while the engine salvages and respawns
                // the state machine in place — a panicked worker is
                // wounded, not hung.
                loop {
                    if fenced(&mut rx) {
                        shared.hb.state.0.store(HB_EXITED, Ordering::Release);
                        return rx;
                    }
                    if shared.hb.state.0.load(Ordering::Acquire) != HB_PANICKED {
                        break;
                    }
                    shared.hb.beat.0.fetch_add(1, Ordering::Release);
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }
}

/// Apply one popped batch under an unwind boundary. Returns the
/// applied prefix length and the panic payload on failure.
fn apply_batch(
    worker: &mut ShardWorker,
    buf: &[u64],
    sram: &AtomicCounterArray,
    kmap: &KCounterMap,
    injector: Option<&Mutex<FaultInjector>>,
    shard: usize,
) -> Result<(), (u64, String)> {
    let applied = Cell::new(0u64);
    let result = match injector {
        // Production fast path: the whole batch through the
        // probe-one-ahead kernel, still under the unwind boundary.
        None => catch_unwind(AssertUnwindSafe(|| {
            worker.record_batch(buf, sram, kmap);
            applied.set(buf.len() as u64);
        })),
        // Fault-schedule path: per-packet ticks so an injected panic
        // fires *between* two packets — the applied prefix is exact.
        Some(inj) => catch_unwind(AssertUnwindSafe(|| {
            for (i, &flow) in buf.iter().enumerate() {
                if inj.lock().expect("injector lock").tick(FaultSite::WorkerPanic, shard) {
                    panic!("{}", INJECTED_PANIC);
                }
                worker.record(flow, sram, kmap);
                applied.set(i as u64 + 1);
            }
        })),
    };
    match result {
        Ok(()) => Ok(()),
        Err(p) => Err((applied.get(), panic_payload(p))),
    }
}

/// The monitor thread body: wake a few times per heartbeat interval,
/// compare each registered worker's beat against the wall clock, and
/// publish a verdict when one misses two consecutive deadlines.
fn monitor_loop(shared: &MonitorShared, interval: Duration) {
    struct Track {
        identity: usize,
        beat: u64,
        since: Instant,
    }
    let poll = (interval / 4).clamp(Duration::from_millis(1), Duration::from_millis(25));
    let deadline = interval * 2;
    let mut tracks: Vec<Option<Track>> = Vec::new();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(poll);
        let lanes: Vec<Arc<LaneShared>> =
            shared.lanes.lock().expect("monitor registry lock").clone();
        tracks.resize_with(lanes.len(), || None);
        let now = Instant::now();
        for (slot, lane) in lanes.iter().enumerate() {
            // The slot's identity changes when a failover installs a
            // fresh LaneShared; the clock restarts with it.
            let identity = Arc::as_ptr(lane) as usize;
            let beat = lane.hb.beat.0.load(Ordering::Acquire);
            let state = lane.hb.state.0.load(Ordering::Acquire);
            let moved = !matches!(
                &tracks[slot],
                Some(t) if t.identity == identity && t.beat == beat
            );
            if moved || state != HB_RUNNING {
                // Fresh slot, fresh beat, or a worker that is parked /
                // being serviced / already exiting: restart its clock.
                tracks[slot] = Some(Track { identity, beat, since: now });
                continue;
            }
            let stalled_for = now.duration_since(tracks[slot].as_ref().expect("tracked").since);
            if stalled_for >= deadline {
                lane.hb.verdict.0.store(1, Ordering::Release);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_env_parse_defaults_and_rejects_garbage() {
        assert_eq!(parse_heartbeat_ms(None), DEFAULT_HEARTBEAT_MS);
        assert_eq!(parse_heartbeat_ms(Some("")), DEFAULT_HEARTBEAT_MS);
        assert_eq!(parse_heartbeat_ms(Some("  40 ")), 40);
        assert_eq!(parse_heartbeat_ms(Some("0")), DEFAULT_HEARTBEAT_MS);
        assert_eq!(parse_heartbeat_ms(Some("soon")), DEFAULT_HEARTBEAT_MS);
    }

    #[test]
    fn unstarted_engine_builds_and_drops_without_spawning() {
        let cfg = CaesarConfig {
            cache_entries: 32,
            entry_capacity: 8,
            counters: 1024,
            k: 3,
            ..CaesarConfig::default()
        };
        let engine = ThreadedCaesar::new(cfg, 2);
        assert_eq!(engine.stats().offered, 0);
        assert!(!engine.started);
        drop(engine);
    }

    #[test]
    #[should_panic(expected = "DropOldest")]
    fn drop_oldest_is_rejected() {
        let cfg = CaesarConfig {
            cache_entries: 32,
            entry_capacity: 8,
            counters: 1024,
            k: 3,
            ..CaesarConfig::default()
        };
        let _ = ThreadedCaesar::new(cfg, 1).with_policy(BackpressurePolicy::DropOldest);
    }
}
