//! Configuration of the CAESAR pipeline.

use cachesim::CachePolicy;
use support::json::{Json, ToJson};

/// Which de-noising estimator the query phase uses (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// Counter Sum estimation Method — the paper's default (§6.3.1).
    Csm,
    /// Maximum Likelihood estimation Method — slightly better on small
    /// flows, slightly costlier.
    Mlm,
}

/// Full configuration of a [`crate::Caesar`] instance.
///
/// Notation maps to the paper's Table 1: `cache_entries = M`,
/// `entry_capacity = y`, `counters = L`, `k = k`,
/// `counter_bits = log2(l)`.
#[derive(Debug, Clone, Copy)]
pub struct CaesarConfig {
    /// Number of on-chip cache entries `M`.
    pub cache_entries: usize,
    /// Per-entry capacity `y`; the paper recommends `y = ⌊2·n/Q⌋`
    /// so that overflows are negligible (§6.2).
    pub entry_capacity: u64,
    /// Cache replacement policy (LRU or random in the paper).
    pub policy: CachePolicy,
    /// Number of off-chip SRAM counters `L`.
    pub counters: usize,
    /// Mapped counters per flow `k` (the paper uses small `k`, e.g. 3).
    pub k: usize,
    /// Bits per SRAM counter (`l = 2^counter_bits − 1` max value).
    pub counter_bits: u32,
    /// Default estimator for [`crate::Caesar::query`].
    pub estimator: Estimator,
    /// Master seed (hash family, remainder scattering, random policy).
    pub seed: u64,
}

impl Default for CaesarConfig {
    /// Defaults mirror the paper's simulation operating point at 1/10
    /// scale: `k = 3`, 32-bit counters, LRU, `y = 54 ≈ 2·27.3`.
    fn default() -> Self {
        Self {
            cache_entries: 20_000,
            entry_capacity: 54,
            policy: CachePolicy::Lru,
            counters: 23_438,
            k: 3,
            counter_bits: 32,
            estimator: Estimator::Csm,
            seed: 0xCAE5A12D,
        }
    }
}

impl CaesarConfig {
    /// Off-chip SRAM size in KB: `L · log2(l) / (1024·8)` (§6.2).
    pub fn sram_kb(&self) -> f64 {
        self.counters as f64 * self.counter_bits as f64 / (1024.0 * 8.0)
    }

    /// On-chip cache size in KB with the given per-entry tag width.
    pub fn cache_kb(&self, tag_bits: u32) -> f64 {
        let counter_bits = 64 - (self.entry_capacity.max(2) - 1).leading_zeros();
        self.cache_entries as f64 * (counter_bits + tag_bits) as f64 / (1024.0 * 8.0)
    }

    /// Choose `L` to fit an SRAM budget in KB at this counter width.
    pub fn counters_for_sram_kb(kb: f64, counter_bits: u32) -> usize {
        ((kb * 1024.0 * 8.0) / counter_bits as f64).floor() as usize
    }

    /// Validate invariants, panicking with a clear message otherwise.
    pub fn validate(&self) {
        assert!(self.cache_entries > 0, "cache_entries (M) must be positive");
        assert!(self.entry_capacity >= 2, "entry_capacity (y) must be >= 2");
        assert!(self.counters > 0, "counters (L) must be positive");
        assert!(self.k >= 1, "k must be at least 1");
        assert!(
            self.k <= self.counters,
            "k ({}) cannot exceed the number of counters L ({})",
            self.k,
            self.counters
        );
        assert!(
            (1..=63).contains(&self.counter_bits),
            "counter_bits must be in 1..=63"
        );
    }
}

impl Estimator {
    /// Stable lowercase name (the CLI flag / JSON value).
    pub fn name(self) -> &'static str {
        match self {
            Estimator::Csm => "csm",
            Estimator::Mlm => "mlm",
        }
    }

    /// Parse [`Estimator::name`] back.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "csm" => Some(Estimator::Csm),
            "mlm" => Some(Estimator::Mlm),
            _ => None,
        }
    }
}

fn policy_name(p: CachePolicy) -> &'static str {
    match p {
        CachePolicy::Lru => "lru",
        CachePolicy::Random => "random",
        CachePolicy::Fifo => "fifo",
    }
}

fn policy_from_name(s: &str) -> Option<CachePolicy> {
    match s {
        "lru" => Some(CachePolicy::Lru),
        "random" => Some(CachePolicy::Random),
        "fifo" => Some(CachePolicy::Fifo),
        _ => None,
    }
}

impl ToJson for CaesarConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cache_entries", self.cache_entries.into()),
            ("entry_capacity", self.entry_capacity.into()),
            ("policy", policy_name(self.policy).into()),
            ("counters", self.counters.into()),
            ("k", self.k.into()),
            ("counter_bits", u64::from(self.counter_bits).into()),
            ("estimator", self.estimator.name().into()),
            ("seed", self.seed.into()),
        ])
    }
}

impl CaesarConfig {
    /// Rebuild a config from [`ToJson::to_json`] output. Returns `None`
    /// when a field is missing or malformed.
    pub fn from_json(j: &Json) -> Option<Self> {
        Some(Self {
            cache_entries: j.get("cache_entries")?.as_u64()? as usize,
            entry_capacity: j.get("entry_capacity")?.as_u64()?,
            policy: policy_from_name(j.get("policy")?.as_str()?)?,
            counters: j.get("counters")?.as_u64()? as usize,
            k: j.get("k")?.as_u64()? as usize,
            counter_bits: j.get("counter_bits")?.as_u64()? as u32,
            estimator: Estimator::from_name(j.get("estimator")?.as_str()?)?,
            seed: j.get("seed")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CaesarConfig::default().validate();
    }

    #[test]
    fn json_roundtrip() {
        let cfg = CaesarConfig {
            cache_entries: 512,
            entry_capacity: 54,
            policy: CachePolicy::Random,
            counters: 2048,
            k: 5,
            counter_bits: 20,
            estimator: Estimator::Mlm,
            seed: 0xDEADBEEF,
        };
        let text = cfg.to_json_string();
        let parsed = support::json::parse(&text).expect("valid json");
        let back = CaesarConfig::from_json(&parsed).expect("all fields");
        assert_eq!(back.cache_entries, cfg.cache_entries);
        assert_eq!(back.entry_capacity, cfg.entry_capacity);
        assert_eq!(back.policy, cfg.policy);
        assert_eq!(back.counters, cfg.counters);
        assert_eq!(back.k, cfg.k);
        assert_eq!(back.counter_bits, cfg.counter_bits);
        assert_eq!(back.estimator, cfg.estimator);
        assert_eq!(back.seed, cfg.seed);
    }

    #[test]
    fn sram_kb_matches_paper_formula() {
        // The paper's Fig. 4 SRAM point: 91.55 KB with 32-bit counters
        // is about 23,437 counters.
        let cfg = CaesarConfig {
            counters: 23_437,
            counter_bits: 32,
            ..CaesarConfig::default()
        };
        assert!((cfg.sram_kb() - 91.55).abs() < 0.05, "{}", cfg.sram_kb());
    }

    #[test]
    fn counters_for_budget_inverts_sram_kb() {
        let l = CaesarConfig::counters_for_sram_kb(91.55, 32);
        let cfg = CaesarConfig {
            counters: l,
            counter_bits: 32,
            ..CaesarConfig::default()
        };
        assert!(cfg.sram_kb() <= 91.55);
        assert!(cfg.sram_kb() > 91.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn k_bigger_than_l_invalid() {
        CaesarConfig {
            k: 10,
            counters: 5,
            ..CaesarConfig::default()
        }
        .validate();
    }
}
