//! The split-`k` eviction update (§3.1, Fig. 2).
//!
//! An evicted value `e = p·k + q` (`q < k`) is pushed to the flow's `k`
//! mapped counters: the aliquot `p` to each counter, then each of the
//! `q` remainder units to one of the `k` counters chosen independently
//! and uniformly at random — which makes the per-counter remainder
//! follow `B(q, 1/k)` exactly as the analysis assumes (Eq. 4).

use crate::sram::SramBacking;
use hashkit::K_MAX;
use support::rand::Rng;

/// Spread eviction value `value` over the counters at `indices`.
///
/// Returns the number of SRAM counter writes performed (every mapped
/// counter is written once per eviction on real hardware: the aliquot
/// and any remainder units for the same counter coalesce into one
/// read-modify-write).
///
/// **Zero-allocation**: for `k <= K_MAX` (every paper configuration)
/// the remainder accumulator lives in a stack array; larger `k` takes
/// a cold heap fallback. The RNG draw sequence — `q` calls of
/// `gen_range(0..k)` — is identical in both paths and identical to the
/// pre-optimization implementation, so recorded sketches stay
/// byte-for-byte the same.
#[inline]
pub fn spread_eviction<B: SramBacking, R: Rng + ?Sized>(
    sram: &mut B,
    indices: &[usize],
    value: u64,
    rng: &mut R,
) -> u64 {
    if indices.len() <= K_MAX {
        let mut extra = [0u64; K_MAX];
        spread_eviction_scratch(sram, indices, value, rng, &mut extra)
    } else {
        spread_eviction_large(sram, indices, value, rng)
    }
}

/// Cold path for `k > K_MAX`: keeps the old heap-allocating behavior
/// for pathological geometries without burdening the hot path.
#[cold]
#[inline(never)]
fn spread_eviction_large<B: SramBacking, R: Rng + ?Sized>(
    sram: &mut B,
    indices: &[usize],
    value: u64,
    rng: &mut R,
) -> u64 {
    let mut extra = vec![0u64; indices.len()];
    spread_eviction_scratch(sram, indices, value, rng, &mut extra)
}

/// [`spread_eviction`] with a **caller-provided scratch buffer** of at
/// least `indices.len()` words; only the first `indices.len()` entries
/// are used and they are re-zeroed on entry, so the same buffer can be
/// reused across calls without clearing.
///
/// # Panics
/// Panics if `scratch.len() < indices.len()`.
pub fn spread_eviction_scratch<B: SramBacking, R: Rng + ?Sized>(
    sram: &mut B,
    indices: &[usize],
    value: u64,
    rng: &mut R,
    scratch: &mut [u64],
) -> u64 {
    let k = indices.len() as u64;
    debug_assert!(k > 0, "need at least one mapped counter");
    let extra = &mut scratch[..indices.len()];
    extra.fill(0);
    let p = value / k;
    let q = (value % k) as usize;

    // Draw the remainder placement first so each counter gets exactly
    // one coalesced write.
    for _ in 0..q {
        extra[rng.gen_range(0..indices.len())] += 1;
    }
    // Fold the aliquot into the scatter accumulator in one
    // lane-parallel pass: `extra` becomes the finished per-counter
    // increment row, applied by a single coalesced `add_spread` call
    // (same writes, tallies, and slot order as the old per-slot `add`
    // loop — `add_spread` pins that equivalence).
    for inc in extra.iter_mut() {
        *inc += p;
    }
    sram.add_spread(indices, extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::CounterArray;
    use support::rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn conserves_value_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        for value in [0u64, 1, 2, 3, 7, 54, 1000] {
            let mut sram = CounterArray::new(10, 32);
            spread_eviction(&mut sram, &[1, 4, 7], value, &mut rng);
            assert_eq!(sram.sum(), value, "value {value} not conserved");
        }
    }

    #[test]
    fn divisible_value_splits_evenly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sram = CounterArray::new(6, 32);
        spread_eviction(&mut sram, &[0, 2, 4], 9, &mut rng);
        assert_eq!(sram.get(0), 3);
        assert_eq!(sram.get(2), 3);
        assert_eq!(sram.get(4), 3);
    }

    #[test]
    fn remainder_stays_within_mapped_counters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sram = CounterArray::new(8, 32);
        spread_eviction(&mut sram, &[1, 3], 5, &mut rng);
        // p = 2 each, remainder 1 lands on counter 1 or 3.
        assert_eq!(sram.get(0), 0);
        assert!(sram.get(1) + sram.get(3) == 5);
        assert!(sram.get(1) >= 2 && sram.get(3) >= 2);
    }

    #[test]
    fn remainder_distribution_is_binomial() {
        // With value < k, each unit picks a counter with prob 1/k:
        // counter 0's share over many trials must be ≈ q/k.
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 60_000;
        let mut hits = 0u64;
        for _ in 0..trials {
            let mut sram = CounterArray::new(3, 32);
            spread_eviction(&mut sram, &[0, 1, 2], 1, &mut rng);
            hits += sram.get(0);
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 1.0 / 3.0).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn write_count_is_at_most_k() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sram = CounterArray::new(10, 32);
        // value 2 with k = 3: at most 2 counters written (p = 0).
        let w = spread_eviction(&mut sram, &[0, 1, 2], 2, &mut rng);
        assert!(w <= 2);
        let w = spread_eviction(&mut sram, &[0, 1, 2], 30, &mut rng);
        assert_eq!(w, 3);
        // Zero value writes nothing.
        let w = spread_eviction(&mut sram, &[0, 1, 2], 0, &mut rng);
        assert_eq!(w, 0);
    }

    #[test]
    fn k_equals_one_puts_everything_in_one_counter() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut sram = CounterArray::new(4, 32);
        spread_eviction(&mut sram, &[2], 17, &mut rng);
        assert_eq!(sram.get(2), 17);
    }

    #[test]
    fn scratch_variant_is_bit_identical_and_reusable_dirty() {
        // Same seed, same calls: the caller-scratch path must consume
        // the RNG identically and leave the same SRAM state, even when
        // the scratch buffer arrives full of garbage.
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut a = CounterArray::new(16, 32);
        let mut b = CounterArray::new(16, 32);
        let mut scratch = [u64::MAX; K_MAX];
        for value in [0u64, 1, 2, 5, 9, 54, 1001] {
            let wa = spread_eviction(&mut a, &[1, 4, 7, 9], value, &mut rng_a);
            let wb =
                spread_eviction_scratch(&mut b, &[1, 4, 7, 9], value, &mut rng_b, &mut scratch);
            assert_eq!(wa, wb, "value {value}");
        }
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG streams diverged");
    }

    #[test]
    fn oversized_k_falls_back_without_misbehaving() {
        // k > K_MAX exercises the cold heap path; conservation and the
        // RNG stream must match a direct scratch call with a big buffer.
        let indices: Vec<usize> = (0..K_MAX + 5).collect();
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let mut a = CounterArray::new(K_MAX + 5, 32);
        let mut b = CounterArray::new(K_MAX + 5, 32);
        let mut big = vec![0u64; indices.len()];
        spread_eviction(&mut a, &indices, 1234, &mut rng_a);
        spread_eviction_scratch(&mut b, &indices, 1234, &mut rng_b, &mut big);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.sum(), 1234);
    }

    #[test]
    #[should_panic]
    fn short_scratch_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sram = CounterArray::new(8, 32);
        let mut scratch = [0u64; 2];
        spread_eviction_scratch(&mut sram, &[0, 1, 2], 5, &mut rng, &mut scratch);
    }
}
