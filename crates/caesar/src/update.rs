//! The split-`k` eviction update (§3.1, Fig. 2).
//!
//! An evicted value `e = p·k + q` (`q < k`) is pushed to the flow's `k`
//! mapped counters: the aliquot `p` to each counter, then each of the
//! `q` remainder units to one of the `k` counters chosen independently
//! and uniformly at random — which makes the per-counter remainder
//! follow `B(q, 1/k)` exactly as the analysis assumes (Eq. 4).

use crate::sram::CounterArray;
use support::rand::Rng;

/// Spread eviction value `value` over the counters at `indices`.
///
/// Returns the number of SRAM counter writes performed (every mapped
/// counter is written once per eviction on real hardware: the aliquot
/// and any remainder units for the same counter coalesce into one
/// read-modify-write).
pub fn spread_eviction<R: Rng + ?Sized>(
    sram: &mut CounterArray,
    indices: &[usize],
    value: u64,
    rng: &mut R,
) -> u64 {
    let k = indices.len() as u64;
    debug_assert!(k > 0, "need at least one mapped counter");
    let p = value / k;
    let q = (value % k) as usize;

    // Draw the remainder placement first so each counter gets exactly
    // one coalesced write.
    let mut extra = vec![0u64; indices.len()];
    for _ in 0..q {
        extra[rng.gen_range(0..indices.len())] += 1;
    }
    let mut writes = 0;
    for (slot, &idx) in indices.iter().enumerate() {
        let inc = p + extra[slot];
        if inc > 0 {
            sram.add(idx, inc);
            writes += 1;
        }
    }
    writes
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn conserves_value_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        for value in [0u64, 1, 2, 3, 7, 54, 1000] {
            let mut sram = CounterArray::new(10, 32);
            spread_eviction(&mut sram, &[1, 4, 7], value, &mut rng);
            assert_eq!(sram.sum(), value, "value {value} not conserved");
        }
    }

    #[test]
    fn divisible_value_splits_evenly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sram = CounterArray::new(6, 32);
        spread_eviction(&mut sram, &[0, 2, 4], 9, &mut rng);
        assert_eq!(sram.get(0), 3);
        assert_eq!(sram.get(2), 3);
        assert_eq!(sram.get(4), 3);
    }

    #[test]
    fn remainder_stays_within_mapped_counters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sram = CounterArray::new(8, 32);
        spread_eviction(&mut sram, &[1, 3], 5, &mut rng);
        // p = 2 each, remainder 1 lands on counter 1 or 3.
        assert_eq!(sram.get(0), 0);
        assert!(sram.get(1) + sram.get(3) == 5);
        assert!(sram.get(1) >= 2 && sram.get(3) >= 2);
    }

    #[test]
    fn remainder_distribution_is_binomial() {
        // With value < k, each unit picks a counter with prob 1/k:
        // counter 0's share over many trials must be ≈ q/k.
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 60_000;
        let mut hits = 0u64;
        for _ in 0..trials {
            let mut sram = CounterArray::new(3, 32);
            spread_eviction(&mut sram, &[0, 1, 2], 1, &mut rng);
            hits += sram.get(0);
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 1.0 / 3.0).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn write_count_is_at_most_k() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sram = CounterArray::new(10, 32);
        // value 2 with k = 3: at most 2 counters written (p = 0).
        let w = spread_eviction(&mut sram, &[0, 1, 2], 2, &mut rng);
        assert!(w <= 2);
        let w = spread_eviction(&mut sram, &[0, 1, 2], 30, &mut rng);
        assert_eq!(w, 3);
        // Zero value writes nothing.
        let w = spread_eviction(&mut sram, &[0, 1, 2], 0, &mut rng);
        assert_eq!(w, 0);
    }

    #[test]
    fn k_equals_one_puts_everything_in_one_counter() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut sram = CounterArray::new(4, 32);
        spread_eviction(&mut sram, &[2], 17, &mut rng);
        assert_eq!(sram.get(2), 17);
    }
}
