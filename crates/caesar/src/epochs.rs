//! Epoch-rotated measurement.
//!
//! The paper measures one interval and queries offline. Production
//! deployments (and the sliding-window follow-up work the paper cites,
//! \[42\]) measure continuously: time is cut into epochs, each epoch gets
//! a fresh sketch, and queries address one epoch or a sliding window of
//! the most recent ones. This module provides that operational wrapper
//! over [`Caesar`] with bounded memory: at most `retained` finished
//! epochs are kept, oldest dropped first.

use crate::concurrent::{ConcurrentCaesar, InlineIngest};
use crate::config::CaesarConfig;
use crate::pipeline::Caesar;
use std::collections::VecDeque;

/// A finished epoch's sketch plus its identity.
#[derive(Debug)]
pub struct Epoch {
    /// Epoch sequence number (0-based).
    pub index: u64,
    /// The finished, queryable sketch.
    pub sketch: Caesar,
}

/// Continuously measuring, epoch-rotated CAESAR.
///
/// ```
/// use caesar::{CaesarConfig, EpochedCaesar};
/// let cfg = CaesarConfig { cache_entries: 32, entry_capacity: 8, counters: 1024, k: 3,
///                          ..CaesarConfig::default() };
/// let mut monitor = EpochedCaesar::new(cfg, 4);
/// for _ in 0..300 { monitor.record(7); }
/// monitor.rotate();
/// for _ in 0..100 { monitor.record(7); }
/// monitor.rotate();
/// let e0 = monitor.query_epoch(0, 7).expect("retained");
/// assert!((e0 - 300.0).abs() < 20.0);
/// assert!((monitor.query_window(7, 2) - 400.0).abs() < 30.0);
/// ```
#[derive(Debug)]
pub struct EpochedCaesar {
    cfg: CaesarConfig,
    retained: usize,
    current: Caesar,
    current_index: u64,
    finished: VecDeque<Epoch>,
}

impl EpochedCaesar {
    /// Start measuring epoch 0. Keeps at most `retained` finished
    /// epochs (≥ 1).
    ///
    /// # Panics
    /// Panics if `retained == 0` or the configuration is invalid.
    pub fn new(cfg: CaesarConfig, retained: usize) -> Self {
        assert!(retained >= 1, "must retain at least one finished epoch");
        Self {
            current: Caesar::new(derive_epoch_config(&cfg, 0)),
            cfg,
            retained,
            current_index: 0,
            finished: VecDeque::new(),
        }
    }

    /// Record one packet into the current epoch.
    pub fn record(&mut self, flow: u64) {
        self.current.record(flow);
    }

    /// Close the current epoch and open the next. The closed epoch's
    /// cache is dumped (it becomes queryable); the oldest retained
    /// epoch is evicted if the buffer is full.
    pub fn rotate(&mut self) {
        let next_index = self.current_index + 1;
        let mut done = std::mem::replace(
            &mut self.current,
            Caesar::new(derive_epoch_config(&self.cfg, next_index)),
        );
        done.finish();
        self.finished.push_back(Epoch {
            index: self.current_index,
            sketch: done,
        });
        self.current_index = next_index;
        while self.finished.len() > self.retained {
            self.finished.pop_front();
        }
    }

    /// Index of the epoch currently being recorded.
    pub fn current_epoch(&self) -> u64 {
        self.current_index
    }

    /// The finished epochs, oldest first.
    pub fn epochs(&self) -> impl Iterator<Item = &Epoch> {
        self.finished.iter()
    }

    /// Query one finished epoch by index (`None` if not retained).
    pub fn query_epoch(&self, epoch: u64, flow: u64) -> Option<f64> {
        self.finished
            .iter()
            .find(|e| e.index == epoch)
            .map(|e| e.sketch.query(flow))
    }

    /// Sliding-window query: summed estimate over the most recent
    /// `window` finished epochs (fewer if not that many are retained).
    pub fn query_window(&self, flow: u64, window: usize) -> f64 {
        self.finished
            .iter()
            .rev()
            .take(window)
            .map(|e| e.sketch.query(flow))
            .sum()
    }
}

/// A finished epoch's **sharded** sketch plus its identity.
#[derive(Debug)]
pub struct ConcurrentEpoch {
    /// Epoch sequence number (0-based).
    pub index: u64,
    /// The finished, queryable sharded sketch.
    pub sketch: ConcurrentCaesar,
}

/// Continuously measuring, epoch-rotated **sharded** CAESAR: the
/// multi-core ingest pipeline ([`ConcurrentCaesar`]) wrapped in the
/// same rotate/retain scheme as [`EpochedCaesar`].
///
/// The live epoch is an owned [`InlineIngest`] — shard workers with
/// private caches and shard-local writeback segments, multiplexed on
/// the recording thread. [`EpochedConcurrentCaesar::rotate`] is the
/// epoch-boundary merge point the striped-writeback design calls for:
/// it drains every shard's cache, merges the shard-local delta
/// segments into the epoch's shared counter array (ascending shard
/// order — deterministic, and value-irrelevant since saturating adds
/// commute), and opens a fresh ingest for the next epoch. A finished
/// epoch's sketch is **bit-identical** to
/// [`ConcurrentCaesar::build`] over the same packets with the same
/// derived per-epoch seed (pinned by tests).
///
/// ```
/// use caesar::{CaesarConfig, EpochedConcurrentCaesar};
/// let cfg = CaesarConfig { cache_entries: 32, entry_capacity: 8, counters: 1024, k: 3,
///                          ..CaesarConfig::default() };
/// let mut monitor = EpochedConcurrentCaesar::new(cfg, 2, 4);
/// for _ in 0..300 { monitor.record(7); }
/// monitor.rotate();
/// for _ in 0..100 { monitor.record(7); }
/// monitor.rotate();
/// let e0 = monitor.query_epoch(0, 7).expect("retained");
/// assert!((e0 - 300.0).abs() < 20.0);
/// assert!((monitor.query_window(7, 2) - 400.0).abs() < 30.0);
/// ```
#[derive(Debug)]
pub struct EpochedConcurrentCaesar {
    cfg: CaesarConfig,
    shards: usize,
    retained: usize,
    current: InlineIngest,
    current_index: u64,
    finished: VecDeque<ConcurrentEpoch>,
}

impl EpochedConcurrentCaesar {
    /// Start measuring epoch 0 with `shards` shard workers. Keeps at
    /// most `retained` finished epochs (≥ 1).
    ///
    /// # Panics
    /// Panics if `retained == 0`, `shards == 0`, or the configuration
    /// is invalid.
    pub fn new(cfg: CaesarConfig, shards: usize, retained: usize) -> Self {
        assert!(retained >= 1, "must retain at least one finished epoch");
        Self {
            current: InlineIngest::new(derive_epoch_config(&cfg, 0), shards),
            cfg,
            shards,
            retained,
            current_index: 0,
            finished: VecDeque::new(),
        }
    }

    /// Record one packet into the current epoch (routed to its shard
    /// worker).
    pub fn record(&mut self, flow: u64) {
        self.current.record(flow);
    }

    /// Close the current epoch and open the next: drain every shard's
    /// cache, merge the shard-local writeback segments into the shared
    /// counter array, and retire the finished sketch (evicting the
    /// oldest retained epoch if the buffer is full).
    pub fn rotate(&mut self) {
        let next_index = self.current_index + 1;
        let done = std::mem::replace(
            &mut self.current,
            InlineIngest::new(derive_epoch_config(&self.cfg, next_index), self.shards),
        );
        self.finished.push_back(ConcurrentEpoch {
            index: self.current_index,
            sketch: done.finish(),
        });
        self.current_index = next_index;
        while self.finished.len() > self.retained {
            self.finished.pop_front();
        }
    }

    /// Index of the epoch currently being recorded.
    pub fn current_epoch(&self) -> u64 {
        self.current_index
    }

    /// Number of shard workers per epoch.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The finished epochs, oldest first.
    pub fn epochs(&self) -> impl Iterator<Item = &ConcurrentEpoch> {
        self.finished.iter()
    }

    /// Query one finished epoch by index (`None` if not retained).
    pub fn query_epoch(&self, epoch: u64, flow: u64) -> Option<f64> {
        self.finished
            .iter()
            .find(|e| e.index == epoch)
            .map(|e| e.sketch.query(flow))
    }

    /// Sliding-window query: summed estimate over the most recent
    /// `window` finished epochs (fewer if not that many are retained).
    pub fn query_window(&self, flow: u64, window: usize) -> f64 {
        self.finished
            .iter()
            .rev()
            .take(window)
            .map(|e| e.sketch.query(flow))
            .sum()
    }
}

/// Every epoch must hash and scatter independently or a flow's counters
/// would correlate across epochs; derive a per-epoch seed.
fn derive_epoch_config(cfg: &CaesarConfig, epoch: u64) -> CaesarConfig {
    CaesarConfig {
        seed: cfg.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ..*cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CaesarConfig {
        CaesarConfig {
            cache_entries: 64,
            entry_capacity: 8,
            counters: 2048,
            k: 3,
            ..CaesarConfig::default()
        }
    }

    #[test]
    fn per_epoch_isolation() {
        let mut e = EpochedCaesar::new(cfg(), 4);
        for _ in 0..500 {
            e.record(1);
        }
        e.rotate();
        for _ in 0..100 {
            e.record(1);
        }
        e.rotate();
        let epoch0 = e.query_epoch(0, 1).expect("epoch 0 retained");
        let epoch1 = e.query_epoch(1, 1).expect("epoch 1 retained");
        assert!((epoch0 - 500.0).abs() < 15.0, "epoch0 = {epoch0}");
        assert!((epoch1 - 100.0).abs() < 15.0, "epoch1 = {epoch1}");
        assert!(e.query_epoch(2, 1).is_none(), "epoch 2 still recording");
    }

    #[test]
    fn window_query_sums_recent_epochs() {
        let mut e = EpochedCaesar::new(cfg(), 8);
        for round in 0..4u64 {
            for _ in 0..100 * (round + 1) {
                e.record(7);
            }
            e.rotate();
        }
        // Last two epochs: 300 + 400 = 700.
        let w2 = e.query_window(7, 2);
        assert!((w2 - 700.0).abs() < 30.0, "w2 = {w2}");
        // Full window: 1000.
        let w4 = e.query_window(7, 10);
        assert!((w4 - 1000.0).abs() < 40.0, "w4 = {w4}");
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut e = EpochedCaesar::new(cfg(), 2);
        for _ in 0..5 {
            e.record(1);
            e.rotate();
        }
        assert_eq!(e.epochs().count(), 2);
        assert!(e.query_epoch(0, 1).is_none());
        assert!(e.query_epoch(3, 1).is_some());
        assert!(e.query_epoch(4, 1).is_some());
        assert_eq!(e.current_epoch(), 5);
    }

    #[test]
    fn epochs_use_independent_hash_mappings() {
        let mut e = EpochedCaesar::new(cfg(), 2);
        e.rotate();
        e.rotate();
        let mut it = e.epochs();
        let a = it.next().expect("epoch 0");
        let b = it.next().expect("epoch 1");
        let differs = (0..32u64).any(|f| a.sketch.counters_of(f) != b.sketch.counters_of(f));
        // counters_of returns values (all zero here); compare the index
        // mapping via the configs' seeds instead.
        let _ = differs;
        assert_ne!(a.sketch.config().seed, b.sketch.config().seed);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_retention_rejected() {
        EpochedCaesar::new(cfg(), 0);
    }

    #[test]
    fn concurrent_epochs_isolate_and_window() {
        let mut e = EpochedConcurrentCaesar::new(cfg(), 2, 4);
        for _ in 0..500 {
            e.record(1);
        }
        e.rotate();
        for _ in 0..100 {
            e.record(1);
        }
        e.rotate();
        let epoch0 = e.query_epoch(0, 1).expect("epoch 0 retained");
        let epoch1 = e.query_epoch(1, 1).expect("epoch 1 retained");
        assert!((epoch0 - 500.0).abs() < 15.0, "epoch0 = {epoch0}");
        assert!((epoch1 - 100.0).abs() < 15.0, "epoch1 = {epoch1}");
        let w = e.query_window(1, 2);
        assert!((w - 600.0).abs() < 25.0, "window = {w}");
        assert_eq!(e.current_epoch(), 2);
        assert_eq!(e.shards(), 2);
    }

    #[test]
    fn concurrent_epoch_matches_batch_build_bit_exactly() {
        // A rotated epoch is the same sketch ConcurrentCaesar::build
        // produces over that epoch's packets with the derived seed: the
        // drain/merge at the epoch boundary loses nothing and adds
        // nothing.
        use crate::concurrent::{BuildMode, ConcurrentCaesar};
        let flows: Vec<u64> = (0..4000u64).map(|i| i % 37).collect();
        let (first, second) = flows.split_at(2500);
        let mut e = EpochedConcurrentCaesar::new(cfg(), 3, 4);
        for &f in first {
            e.record(f);
        }
        e.rotate();
        for &f in second {
            e.record(f);
        }
        e.rotate();
        for (idx, part) in [(0u64, first), (1u64, second)] {
            let reference = ConcurrentCaesar::build_with_mode(
                derive_epoch_config(&cfg(), idx),
                3,
                part,
                BuildMode::Inline,
            );
            let epoch = e
                .epochs()
                .find(|ep| ep.index == idx)
                .expect("epoch retained");
            assert_eq!(
                epoch.sketch.sram().snapshot(),
                reference.sram().snapshot(),
                "epoch {idx}"
            );
            assert_eq!(epoch.sketch.evictions(), reference.evictions());
        }
    }

    #[test]
    fn concurrent_retention_evicts_oldest() {
        let mut e = EpochedConcurrentCaesar::new(cfg(), 2, 2);
        for _ in 0..5 {
            e.record(1);
            e.rotate();
        }
        assert_eq!(e.epochs().count(), 2);
        assert!(e.query_epoch(0, 1).is_none());
        assert!(e.query_epoch(4, 1).is_some());
        assert_eq!(e.current_epoch(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn concurrent_zero_shards_rejected() {
        EpochedConcurrentCaesar::new(cfg(), 0, 2);
    }
}
