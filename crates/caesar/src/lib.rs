//! # caesar — Cache Assisted randomizEd ShAring counteRs (ICPP 2018)
//!
//! The paper's primary contribution: a two-level per-flow traffic
//! measurement architecture.
//!
//! **Construction phase** (online, §3.1): every packet updates an
//! on-chip cache entry `(flow_id, count)`; on eviction the partial
//! count `e` is split `e = p·k + q` and pushed to the flow's `k` fixed,
//! distinct off-chip SRAM counters — `p` to each, plus `q` single units
//! to uniformly random ones of the `k`. At the end of measurement the
//! cache is dumped.
//!
//! **Query phase** (offline, §3.2): the flow's `k` counter values are
//! read, the expected noise of sharing flows (`Q·μ/L = n/L`) is
//! removed, and the size is estimated with one of two estimators:
//!
//! * [`estimator::csm`] — Counter Sum estimation Method (moment
//!   estimator, Eq. 20), unbiased (Eq. 21), variance Eq. 22;
//! * [`estimator::mlm`] — Maximum Likelihood estimation Method under
//!   the Gaussian approximation (closed form below Eq. 28), variance
//!   from the Fisher information (Eq. 31).
//!
//! Both come with confidence intervals (Eqs. 26/32) via
//! [`gaussian::z_alpha`].
//!
//! ## Quick start
//!
//! ```
//! use caesar::{Caesar, CaesarConfig};
//!
//! let mut sketch = Caesar::new(CaesarConfig {
//!     cache_entries: 64,
//!     entry_capacity: 8,
//!     counters: 1024,
//!     k: 3,
//!     ..CaesarConfig::default()
//! });
//! for _ in 0..100 {
//!     sketch.record(42);
//! }
//! sketch.finish();
//! let est = sketch.query(42);
//! assert!((est - 100.0).abs() < 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic_sram;
pub mod concurrent;
pub mod config;
pub mod epochs;
pub mod estimator;
pub mod gaussian;
pub mod heavy_hitters;
pub mod merge;
pub mod online;
pub mod packed;
pub mod pipeline;
pub mod query;
pub mod sram;
pub mod theory;
pub mod threaded;
pub mod update;

pub use atomic_sram::{
    AtomicCounterArray, SegmentSink, WritebackBuffer, WritebackSink, WRITEBACK_ACCUMULATE_ALL,
};
pub use concurrent::{
    per_shard_entries, BuildError, BuildMode, ConcurrentCaesar, IngestStats,
    DEFAULT_RING_CAPACITY,
};
pub use epochs::{ConcurrentEpoch, EpochedCaesar, EpochedConcurrentCaesar};
pub use heavy_hitters::{DetectionReport, Hitter};
pub use merge::{MergeError, PayloadError, SketchDelta, SketchFingerprint, SketchPayload};
pub use online::{
    BackpressurePolicy, ChainError, DeltaError, FaultKind, FaultLog, FaultRecord, LaneStats,
    OnlineCaesar, OnlineStats, RestoreError, DEFAULT_EPOCH_LEN, DEFAULT_WATCHDOG_DEADLINE,
};
pub use packed::PackedCounterArray;
pub use config::{CaesarConfig, Estimator};
pub use estimator::{Estimate, EstimateParams};
pub use pipeline::{sram_prefetch_min_bytes, Caesar, CaesarCore, CaesarStats, PackedCaesar};
pub use query::{estimate_all, query_batch_chunk_width, query_health, CounterView, QueryHealth, SaturationView};
pub use sram::{CounterArray, SramBacking, DIRTY_BLOCK_COUNTERS};
pub use threaded::{heartbeat_interval_ms, ThreadedCaesar, DEFAULT_HEARTBEAT_MS};
