//! Fault-tolerant **online** (non-terminating) ingest runtime.
//!
//! The finite builds in [`crate::concurrent`] run to completion and
//! abort (or now, with the `try_` family, *return an error*) when a
//! shard worker panics — acceptable for an offline trace replay,
//! useless for a line card that must keep measuring through faults.
//! [`OnlineCaesar`] is the supervised, long-running form of the same
//! machinery:
//!
//! * **Supervised shard workers.** Each shard lane owns a bounded
//!   [`support::spsc`] ring and a [`ShardWorker`] state machine. Every
//!   drain step runs under [`std::panic::catch_unwind`]; a panicking
//!   worker **quarantines** the unprocessed remainder of its batch
//!   (counted exactly), has its surviving cache mass **salvaged** into
//!   the shared SRAM (no recorded packet is lost), and is **respawned**
//!   fresh against the shard's surviving accumulator state. Every fault
//!   is appended to the lane's [`FaultLog`].
//! * **Loss-accounted backpressure.** A full ring is first relieved by
//!   pumping the consumer; only when the consumer makes no progress
//!   does the configured [`BackpressurePolicy`] apply — `Block` keeps
//!   pumping (bounded by the watchdog), `DropNewest`/`DropOldest` shed
//!   with exact per-shard loss counters that
//!   [`OnlineCaesar::query_health`] folds into query-time confidence.
//! * **Watchdog failover.** A lane whose consumer makes no progress for
//!   [`OnlineCaesar::with_watchdog_deadline`] consecutive pump attempts
//!   is declared hung: the supervisor drains the wedged ring inline,
//!   marks the lane `inline_fallback`, and serves it on the supervisor
//!   thread until the next epoch boundary re-arms the ring path.
//! * **Epoch-aligned merges.** Workers stage evictions in shard-local
//!   [`WRITEBACK_ACCUMULATE_ALL`] segments; at every epoch boundary
//!   ([`OnlineCaesar::with_epoch_len`] offered packets) all lanes are
//!   drained dry and their segments merged into the shared SRAM in
//!   ascending shard order. Queries read the SRAM at any time — a
//!   consistent (merge-aligned) snapshot — without stopping ingest.
//! * **Crash-consistent snapshot/restore.** [`OnlineCaesar::snapshot`]
//!   serializes the complete dynamic state (config, per-lane cache
//!   slots + memoized k-maps + RNG streams, staged writeback segments,
//!   SRAM words + tally stripes, in-ring packets, loss counters and
//!   fault logs) through [`support::bytesx`] and seals it with a
//!   checksum footer; [`OnlineCaesar::restore`] refuses truncated or
//!   bit-flipped blobs, and a restored engine **resumes byte-identical**
//!   to the uninterrupted run (pinned by `tests/fault_tolerance.rs`).
//!
//! Determinism: the runtime is a single-owner engine — the supervisor
//! holds both ring endpoints and pumps workers itself at deterministic
//! points (ring occupancy reaching a chunk, backpressure, epoch
//! boundaries), so the whole schedule, including every injected fault
//! from a [`FaultInjector`] plan, is a pure function of the offered
//! stream. A fault-free run's [`OnlineCaesar::finish`] is bit-identical
//! to [`ConcurrentCaesar::build`] on the same stream.
//!
//! Mass accounting invariant (checked by the property suite):
//!
//! ```text
//! offered == recorded + dropped + quarantined + in_flight
//! ```
//!
//! exactly, per shard and in aggregate, at every instant — injected
//! faults fire *between* packets, so no packet is ever half-counted.
//! (A genuine mid-record panic — a bug, not a scheduled fault — is
//! still caught and accounted, but its in-progress packet may have
//! left partial cache state; the lane's [`FaultRecord::exact`] flag
//! turns `false` to say so.)

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::atomic_sram::AtomicCounterArray;
use crate::concurrent::{
    panic_payload, ConcurrentCaesar, IngestStats, ShardWorker, ShardWorkerState, STREAM_CHUNK,
};
use crate::config::{CaesarConfig, Estimator};
use crate::estimator::{csm, mlm, Estimate, EstimateParams};
use crate::merge::{MergeError, SketchFingerprint};
use crate::query::{query_health, QueryHealth};
use crate::WRITEBACK_ACCUMULATE_ALL;
use cachesim::{CachePolicy, CacheStats, CacheTableState};
use hashkit::{KCounterMap, K_MAX};
use support::bytesx::{seal, unseal, ByteReader, PutBytes, SealError};
use support::spsc;
use support::testkit::{FaultInjector, FaultSite, INJECTED_PANIC};

/// Default epoch length in offered packets: a few ring-chunks per lane
/// between merges — frequent enough that queries lag ingest by a small
/// bounded window, rare enough that the merge CAS traffic stays
/// amortized.
pub const DEFAULT_EPOCH_LEN: u64 = 16 * STREAM_CHUNK as u64;

/// Default watchdog deadline: consecutive no-progress pump attempts on
/// a backpressured lane before the supervisor declares the consumer
/// hung and fails the lane over to inline processing.
pub const DEFAULT_WATCHDOG_DEADLINE: u64 = 8;

/// What the front end does with a packet whose shard ring is full *and*
/// whose consumer is making no progress (a healthy consumer is always
/// pumped first, so a drop can only happen under genuine backpressure).
///
/// Every shed packet is counted exactly in the lane's `dropped`
/// counter; [`OnlineCaesar::query_health`] folds the loss fraction
/// into the reported confidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Never drop: keep pumping the consumer until space frees. A hung
    /// consumer is bounded by the watchdog, which fails the lane over
    /// to inline processing — so `Block` guarantees `dropped == 0`.
    Block,
    /// Shed the *incoming* packet (tail drop — the classic NIC-queue
    /// behaviour). Loss is accounted against the incoming packet's
    /// shard.
    DropNewest,
    /// Shed the *oldest* queued packet to admit the new one (head
    /// drop — freshness-biased, as in time-decayed monitors).
    DropOldest,
}

impl BackpressurePolicy {
    fn to_u8(self) -> u8 {
        match self {
            BackpressurePolicy::Block => 0,
            BackpressurePolicy::DropNewest => 1,
            BackpressurePolicy::DropOldest => 2,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(BackpressurePolicy::Block),
            1 => Some(BackpressurePolicy::DropNewest),
            2 => Some(BackpressurePolicy::DropOldest),
            _ => None,
        }
    }
}

/// What kind of fault a [`FaultRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The shard worker panicked during a drain step.
    WorkerPanic,
    /// The watchdog declared the lane's consumer hung and failed the
    /// lane over to inline processing.
    WatchdogFailover,
}

/// One supervised fault, as recorded in a lane's [`FaultLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Fault kind.
    pub kind: FaultKind,
    /// Epoch in which the fault fired.
    pub epoch: u64,
    /// The lane's `offered` count when the fault fired.
    pub at_offered: u64,
    /// Packets quarantined by this fault (the unprocessed remainder of
    /// the batch a panicking worker was draining).
    pub quarantined: u64,
    /// Unit mass salvaged from the panicked worker's surviving cache
    /// into the shared SRAM before respawn.
    pub salvaged_units: u64,
    /// The panic payload (for [`FaultKind::WorkerPanic`]) or a
    /// human-readable reason (for [`FaultKind::WatchdogFailover`]).
    pub payload: String,
    /// Whether the mass accounting around this fault is exact.
    /// Injected faults fire *between* packets, so they are always
    /// exact; a genuine mid-record panic may have left the in-progress
    /// packet half-applied, which this flag surfaces.
    pub exact: bool,
}

/// Per-shard fault history: every worker panic and watchdog failover
/// the lane survived, in firing order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// The recorded faults, oldest first.
    pub records: Vec<FaultRecord>,
}

impl FaultLog {
    /// Number of worker panics survived.
    pub fn panics(&self) -> usize {
        self.records.iter().filter(|r| r.kind == FaultKind::WorkerPanic).count()
    }

    /// Number of watchdog failovers.
    pub fn failovers(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.kind == FaultKind::WatchdogFailover)
            .count()
    }

    /// True when every recorded fault kept exact mass accounting.
    pub fn is_exact(&self) -> bool {
        self.records.iter().all(|r| r.exact)
    }
}

/// Public per-shard accounting snapshot (see the module-level mass
/// invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneStats {
    /// Shard id.
    pub shard: usize,
    /// Packets routed to this shard.
    pub offered: u64,
    /// Packets fully applied to the shard's cache/sketch.
    pub recorded: u64,
    /// Packets shed by the backpressure policy.
    pub dropped: u64,
    /// Packets lost to worker panics (unprocessed batch remainders).
    pub quarantined: u64,
    /// Packets currently queued in the shard's ring.
    pub in_flight: u64,
    /// Times the worker was respawned after a panic.
    pub respawns: u64,
    /// Whether the lane is currently failed over to inline processing.
    pub inline_fallback: bool,
}

/// Aggregate accounting across all lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineStats {
    /// Packets offered to the engine.
    pub offered: u64,
    /// Packets fully applied.
    pub recorded: u64,
    /// Packets shed by backpressure.
    pub dropped: u64,
    /// Packets lost to worker panics.
    pub quarantined: u64,
    /// Packets currently in rings (not yet applied).
    pub in_flight: u64,
    /// Current epoch ordinal.
    pub epoch: u64,
    /// Epoch-aligned merges performed.
    pub merges: u64,
    /// Worker respawns across all lanes.
    pub respawns: u64,
    /// Watchdog failovers across all lanes.
    pub failovers: u64,
}

/// One shard lane: the ring, the worker state machine, and the exact
/// accounting counters. `pub(crate)` so the detached-thread runtime
/// ([`crate::threaded`]) can decompose a pump engine into thread lanes
/// and reassemble one (`from_online` / `into_online`) without a codec
/// round trip.
#[derive(Debug)]
pub(crate) struct Lane {
    pub(crate) tx: spsc::Producer<u64>,
    pub(crate) rx: spsc::Consumer<u64>,
    pub(crate) worker: ShardWorker,
    /// Pump scratch buffer (reused; capacity [`STREAM_CHUNK`]).
    pub(crate) buf: Vec<u64>,
    pub(crate) offered: u64,
    pub(crate) recorded: u64,
    pub(crate) dropped: u64,
    pub(crate) quarantined: u64,
    /// Packets currently queued in the ring.
    pub(crate) in_ring: u64,
    pub(crate) respawns: u64,
    pub(crate) inline_fallback: bool,
    /// Consecutive no-progress pump attempts (watchdog state).
    pub(crate) stalled_attempts: u64,
    /// Ingest stats retired from workers that have since been
    /// respawned (so the aggregate survives respawns).
    pub(crate) retired: IngestStats,
    pub(crate) log: FaultLog,
}

impl Lane {
    fn new(cfg: &CaesarConfig, shard: usize, entries: usize, ring_capacity: usize) -> Self {
        let (tx, rx) = spsc::ring::<u64>(ring_capacity);
        Self {
            tx,
            rx,
            worker: ShardWorker::new(cfg, shard, entries, WRITEBACK_ACCUMULATE_ALL),
            buf: Vec::with_capacity(STREAM_CHUNK),
            offered: 0,
            recorded: 0,
            dropped: 0,
            quarantined: 0,
            in_ring: 0,
            respawns: 0,
            inline_fallback: false,
            stalled_attempts: 0,
            retired: IngestStats::default(),
            log: FaultLog::default(),
        }
    }
}

/// The supervised online ingest engine. See the module docs for the
/// architecture; the short version:
///
/// ```
/// use caesar::{CaesarConfig, OnlineCaesar};
/// let cfg = CaesarConfig { cache_entries: 64, entry_capacity: 8, counters: 2048, k: 3,
///                          ..CaesarConfig::default() };
/// let mut online = OnlineCaesar::new(cfg, 2);
/// for i in 0..10_000u64 {
///     online.offer(i % 100);
/// }
/// let st = online.stats();
/// assert_eq!(st.offered, 10_000);
/// assert_eq!(st.offered, st.recorded + st.dropped + st.quarantined + st.in_flight);
/// let sketch = online.finish(); // drain + merge: now a finished ConcurrentCaesar
/// assert_eq!(sketch.sram().total_added(), 10_000);
/// ```
#[derive(Debug)]
pub struct OnlineCaesar {
    // Fields are `pub(crate)` so [`crate::threaded`] — the detached-
    // thread form of this same engine — can decompose and reassemble
    // one without going through the snapshot codec.
    pub(crate) cfg: CaesarConfig,
    pub(crate) shards: usize,
    pub(crate) policy: BackpressurePolicy,
    pub(crate) ring_capacity: usize,
    pub(crate) epoch_len: u64,
    pub(crate) watchdog_deadline: u64,
    pub(crate) sram: AtomicCounterArray,
    pub(crate) kmap: KCounterMap,
    pub(crate) entries: Vec<usize>,
    pub(crate) lanes: Vec<Lane>,
    pub(crate) epoch: u64,
    pub(crate) merges: u64,
    pub(crate) offered_total: u64,
    pub(crate) injector: FaultInjector,
    /// Delta-checkpoint chain position: `(chain id, deltas emitted)`.
    /// The chain id is the FNV-1a digest of the anchoring full
    /// snapshot's sealed bytes, so an uninterrupted engine and one
    /// restored from that same blob agree on it without coordination.
    /// `None` until the first [`OnlineCaesar::snapshot`] anchors a
    /// chain.
    pub(crate) chain: Option<(u64, u64)>,
}

impl OnlineCaesar {
    /// A fresh engine with the default policy ([`BackpressurePolicy::Block`]),
    /// ring capacity ([`crate::DEFAULT_RING_CAPACITY`]), epoch length
    /// ([`DEFAULT_EPOCH_LEN`]) and watchdog deadline
    /// ([`DEFAULT_WATCHDOG_DEADLINE`]).
    ///
    /// # Panics
    /// Panics if `shards == 0` or the configuration is invalid.
    pub fn new(cfg: CaesarConfig, shards: usize) -> Self {
        let (sram, kmap, entries) = ConcurrentCaesar::scaffold(&cfg, shards);
        let ring_capacity = crate::DEFAULT_RING_CAPACITY;
        let lanes = (0..shards)
            .map(|shard| Lane::new(&cfg, shard, entries[shard], ring_capacity))
            .collect();
        Self {
            cfg,
            shards,
            policy: BackpressurePolicy::Block,
            ring_capacity,
            epoch_len: DEFAULT_EPOCH_LEN,
            watchdog_deadline: DEFAULT_WATCHDOG_DEADLINE,
            sram,
            kmap,
            entries,
            lanes,
            epoch: 0,
            merges: 0,
            offered_total: 0,
            injector: FaultInjector::none(),
            chain: None,
        }
    }

    /// Set the backpressure policy (builder-style; call before
    /// offering packets).
    pub fn with_policy(mut self, policy: BackpressurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the per-shard ring capacity (`>= 1`). Rebuilds the (empty)
    /// rings, so call before offering packets.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        assert_eq!(self.offered_total, 0, "set ring capacity before offering");
        self.ring_capacity = capacity;
        for (shard, lane) in self.lanes.iter_mut().enumerate() {
            *lane = Lane::new(&self.cfg, shard, self.entries[shard], capacity);
        }
        self
    }

    /// Set the epoch length in offered packets (`>= 1`).
    ///
    /// # Panics
    /// Panics if `epoch_len == 0`.
    pub fn with_epoch_len(mut self, epoch_len: u64) -> Self {
        assert!(epoch_len >= 1, "epoch length must be at least 1");
        self.epoch_len = epoch_len;
        self
    }

    /// Set the watchdog deadline in consecutive no-progress pump
    /// attempts (`>= 1`).
    ///
    /// The pump's hang verdict counts **ticks, not time**: a lane is
    /// declared hung after `deadline` pump attempts that moved
    /// nothing, a count independent of scheduler jitter or host load.
    /// That determinism is what keeps this runtime the bit-identity
    /// oracle for the detached-thread runtime
    /// ([`crate::ThreadedCaesar`]), whose supervision must instead use
    /// wall-clock heartbeats ([`crate::ThreadedCaesar::with_heartbeat_interval`])
    /// because a hung OS thread makes no observable "attempts" to
    /// count.
    ///
    /// # Panics
    /// Panics if `deadline == 0`.
    pub fn with_watchdog_deadline(mut self, deadline: u64) -> Self {
        assert!(deadline >= 1, "watchdog deadline must be at least 1");
        self.watchdog_deadline = deadline;
        self
    }

    /// Attach a deterministic fault-injection schedule (testing).
    /// [`FaultInjector::none`] — the default — adds zero overhead to
    /// the batch drain path.
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = injector;
        self
    }

    /// Which shard a flow routes to.
    fn route(&self, flow: u64) -> usize {
        if self.shards == 1 {
            0
        } else {
            ConcurrentCaesar::shard_of(flow, self.shards, self.cfg.seed)
        }
    }

    /// Offer one packet of `flow` to the engine. Never blocks the
    /// caller indefinitely: a wedged lane is bounded by the watchdog.
    pub fn offer(&mut self, flow: u64) {
        let shard = self.route(flow);
        self.offered_total += 1;
        self.lanes[shard].offered += 1;
        loop {
            if self.lanes[shard].inline_fallback {
                // Failed-over lane: the supervisor serves it directly.
                self.ingest_inline(shard, flow);
                break;
            }
            if self.lanes[shard].tx.try_push(flow).is_ok() {
                self.lanes[shard].in_ring += 1;
                if self.lanes[shard].in_ring >= STREAM_CHUNK as u64 {
                    // A full chunk is ready: pump it through the worker
                    // so ring occupancy stays bounded by one chunk on a
                    // healthy lane.
                    self.pump(shard);
                }
                break;
            }
            // Ring full. A healthy consumer is always pumped first —
            // drops can only happen when it makes no progress.
            if self.pump(shard) > 0 || self.lanes[shard].inline_fallback {
                continue;
            }
            match self.policy {
                // Keep pumping: each retry is one watchdog tick, so a
                // hung consumer fails over after the deadline.
                BackpressurePolicy::Block => continue,
                BackpressurePolicy::DropNewest => {
                    self.lanes[shard].dropped += 1;
                    break;
                }
                BackpressurePolicy::DropOldest => {
                    if self.lanes[shard].rx.try_pop().is_some() {
                        self.lanes[shard].in_ring -= 1;
                        self.lanes[shard].dropped += 1;
                    }
                    continue; // admit the new packet into the freed slot
                }
            }
        }
        if self.offered_total.is_multiple_of(self.epoch_len) {
            self.rotate_epoch();
        }
    }

    /// Offer a batch of packets (`for` loop over [`OnlineCaesar::offer`]).
    pub fn offer_batch(&mut self, flows: &[u64]) {
        for &flow in flows {
            self.offer(flow);
        }
    }

    /// One supervised pump attempt on `shard`: returns the number of
    /// packets consumed from the ring (0 = no progress, which feeds
    /// the watchdog).
    fn pump(&mut self, shard: usize) -> u64 {
        // Every pump attempt is a RingStall tick: a scheduled stall
        // wedges the consumer at a deterministic pump ordinal.
        self.injector.tick(FaultSite::RingStall, shard);
        if self.injector.is_stalled(shard) {
            self.lanes[shard].stalled_attempts += 1;
            if self.lanes[shard].stalled_attempts >= self.watchdog_deadline {
                return self.failover(shard);
            }
            return 0;
        }
        self.lanes[shard].stalled_attempts = 0;
        self.drain_chunk(shard)
    }

    /// Pop one chunk off `shard`'s ring and run the supervised drain
    /// step. Returns packets popped.
    fn drain_chunk(&mut self, shard: usize) -> u64 {
        let lane = &mut self.lanes[shard];
        lane.buf.clear();
        let n = lane.rx.pop_batch(&mut lane.buf, STREAM_CHUNK);
        if n == 0 {
            return 0;
        }
        lane.in_ring -= n as u64;
        self.drain_step(shard);
        n as u64
    }

    /// Feed a single packet through the supervised drain step (the
    /// inline-fallback path).
    fn ingest_inline(&mut self, shard: usize, flow: u64) {
        let lane = &mut self.lanes[shard];
        lane.buf.clear();
        lane.buf.push(flow);
        self.drain_step(shard);
    }

    /// The supervised drain step: apply `lane.buf` to the worker under
    /// `catch_unwind`. On a panic: count the applied prefix as
    /// recorded, quarantine the unprocessed remainder, salvage the
    /// surviving cache mass into the shared SRAM, respawn the worker,
    /// and log the fault.
    fn drain_step(&mut self, shard: usize) {
        let Self { lanes, injector, sram, kmap, cfg, entries, epoch, .. } = self;
        let lane = &mut lanes[shard];
        let buf = std::mem::take(&mut lane.buf);
        let applied = Cell::new(0usize);
        let worker = &mut lane.worker;
        let result = if injector.is_inert() {
            // Production fast path: the whole chunk through the
            // probe-one-ahead batch kernel, still under the unwind
            // boundary.
            catch_unwind(AssertUnwindSafe(|| {
                worker.record_batch(&buf, sram, kmap);
                applied.set(buf.len());
            }))
        } else {
            // Fault-schedule path: per-packet ticks so an injected
            // panic fires *between* two packets — the applied prefix
            // is exact.
            catch_unwind(AssertUnwindSafe(|| {
                for (i, &flow) in buf.iter().enumerate() {
                    if injector.tick(FaultSite::WorkerPanic, shard) {
                        panic!("{}", INJECTED_PANIC);
                    }
                    worker.record(flow, sram, kmap);
                    applied.set(i + 1);
                }
            }))
        };
        let applied = applied.get();
        lane.recorded += applied as u64;
        if let Err(p) = result {
            let payload = panic_payload(p);
            let exact = payload == INJECTED_PANIC;
            let quarantined = (buf.len() - applied) as u64;
            lane.quarantined += quarantined;
            // Salvage: drain the surviving cache through the memoized
            // scatter path and merge it (plus anything already staged)
            // into the shared SRAM, so every *recorded* packet's mass
            // is query-visible even though the worker dies.
            let salvaged_units = lane.worker.drain_cache(sram, kmap);
            lane.worker.flush_writeback(sram);
            lane.retired.merge(&lane.worker.ingest_stats());
            // Respawn: a fresh worker (fresh cache + RNG streams)
            // against the shard's surviving accumulator state.
            lane.worker = ShardWorker::new(cfg, shard, entries[shard], WRITEBACK_ACCUMULATE_ALL);
            lane.respawns += 1;
            lane.log.records.push(FaultRecord {
                kind: FaultKind::WorkerPanic,
                epoch: *epoch,
                at_offered: lane.offered,
                quarantined,
                salvaged_units,
                payload,
                exact,
            });
        }
        lane.buf = buf;
    }

    /// Watchdog failover: the lane's consumer is declared hung. The
    /// supervisor takes ownership — drains the wedged ring inline and
    /// serves the lane on the calling thread until the next epoch
    /// boundary re-arms the ring path. Returns packets drained.
    fn failover(&mut self, shard: usize) -> u64 {
        // In the deterministic runtime the "hung consumer" is the
        // injector's sticky stall; failover clears it because the
        // supervisor, not the consumer loop, now drives the worker.
        self.injector.clear_stall(shard);
        let deadline = self.watchdog_deadline;
        let lane = &mut self.lanes[shard];
        lane.inline_fallback = true;
        lane.stalled_attempts = 0;
        lane.log.records.push(FaultRecord {
            kind: FaultKind::WatchdogFailover,
            epoch: self.epoch,
            at_offered: lane.offered,
            quarantined: 0,
            salvaged_units: 0,
            payload: format!("no consumer progress within {deadline} pump attempts"),
            exact: true,
        });
        let mut drained = 0;
        loop {
            let n = self.drain_chunk(shard);
            if n == 0 {
                break;
            }
            drained += n;
        }
        drained
    }

    /// Epoch boundary: drain every lane dry (failing over lanes still
    /// wedged), merge every shard-local writeback segment into the
    /// shared SRAM in ascending shard order, re-arm failed-over lanes,
    /// and advance the epoch. Queries between merges read the SRAM as
    /// of the last merge — a consistent snapshot — while ingest
    /// continues.
    fn rotate_epoch(&mut self) {
        for shard in 0..self.shards {
            loop {
                if self.lanes[shard].in_ring == 0 {
                    break;
                }
                if self.injector.is_stalled(shard) {
                    self.failover(shard);
                    continue;
                }
                self.drain_chunk(shard);
            }
            // Deterministic saturation-degradation seam: one tick per
            // shard per epoch boundary.
            if self.injector.tick(FaultSite::ForceSaturation, shard) {
                self.sram.force_saturation(shard, 1);
            }
        }
        let Self { lanes, sram, .. } = self;
        for lane in lanes.iter_mut() {
            lane.worker.flush_writeback(sram);
            lane.inline_fallback = false;
            lane.stalled_attempts = 0;
        }
        self.epoch += 1;
        self.merges += 1;
    }

    /// Force an epoch rotation now (drain + merge), without waiting
    /// for the packet-count boundary.
    pub fn merge_now(&mut self) {
        self.rotate_epoch();
    }

    /// Aggregate accounting across all lanes.
    pub fn stats(&self) -> OnlineStats {
        let mut st = OnlineStats {
            offered: self.offered_total,
            recorded: 0,
            dropped: 0,
            quarantined: 0,
            in_flight: 0,
            epoch: self.epoch,
            merges: self.merges,
            respawns: 0,
            failovers: 0,
        };
        for lane in &self.lanes {
            st.recorded += lane.recorded;
            st.dropped += lane.dropped;
            st.quarantined += lane.quarantined;
            st.in_flight += lane.in_ring;
            st.respawns += lane.respawns;
            st.failovers += lane.log.failovers() as u64;
        }
        st
    }

    /// Per-shard accounting snapshot.
    ///
    /// # Panics
    /// Panics if `shard >= shards`.
    pub fn lane_stats(&self, shard: usize) -> LaneStats {
        let lane = &self.lanes[shard];
        LaneStats {
            shard,
            offered: lane.offered,
            recorded: lane.recorded,
            dropped: lane.dropped,
            quarantined: lane.quarantined,
            in_flight: lane.in_ring,
            respawns: lane.respawns,
            inline_fallback: lane.inline_fallback,
        }
    }

    /// The shard's fault history.
    ///
    /// # Panics
    /// Panics if `shard >= shards`.
    pub fn fault_log(&self, shard: usize) -> &FaultLog {
        &self.lanes[shard].log
    }

    /// The attached fault injector (fired/pending schedule).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configuration in use.
    pub fn config(&self) -> &CaesarConfig {
        &self.cfg
    }

    /// Current epoch ordinal.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared SRAM (query-visible state as of the last merge or
    /// salvage).
    pub fn sram(&self) -> &AtomicCounterArray {
        &self.sram
    }

    /// Unit mass recorded but not yet query-visible: resident in shard
    /// caches or staged in writeback segments (rings hold *packets*
    /// that are not recorded yet — see [`OnlineStats::in_flight`]).
    pub fn unmerged_units(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.worker.resident_units() + l.worker.staged_units())
            .sum()
    }

    /// Estimator parameters at the current visible state.
    pub fn params(&self) -> EstimateParams {
        EstimateParams {
            k: self.cfg.k,
            y: self.cfg.entry_capacity,
            counters: self.cfg.counters,
            total_packets: self.sram.total_added(),
        }
    }

    /// Query with an explicit estimator against the visible (merged)
    /// state. Ingest continues unaffected.
    pub fn estimate(&self, flow: u64, estimator: Estimator) -> Estimate {
        let w: Vec<u64> = self
            .kmap
            .indices(flow)
            .into_iter()
            .map(|i| self.sram.get(i))
            .collect();
        let params = self.params();
        match estimator {
            Estimator::Csm => csm::estimate(&w, &params),
            Estimator::Mlm => mlm::estimate(&w, &params),
        }
    }

    /// Clamped default-estimator query.
    pub fn query(&self, flow: u64) -> f64 {
        self.estimate(flow, self.cfg.estimator).clamped()
    }

    /// Health-annotated query: the estimate plus saturation flags and
    /// the flow's shard-exact loss fraction folded into a confidence
    /// score (see [`QueryHealth`]).
    pub fn query_health(&self, flow: u64) -> QueryHealth {
        let lane = &self.lanes[self.route(flow)];
        let lost = lane.dropped + lane.quarantined;
        let loss_fraction = if lane.offered == 0 {
            0.0
        } else {
            lost as f64 / lane.offered as f64
        };
        query_health(
            &self.kmap,
            &self.sram,
            &self.params(),
            self.cfg.estimator,
            flow,
            loss_fraction,
        )
    }

    /// End of measurement: drain every ring, dump every cache, merge
    /// every segment — then hand back a finished [`ConcurrentCaesar`].
    /// On a fault-free run this is **bit-identical** to
    /// [`ConcurrentCaesar::build`] over the same stream (pinned by the
    /// fault-tolerance suite).
    pub fn finish(mut self) -> ConcurrentCaesar {
        for shard in 0..self.shards {
            loop {
                if self.lanes[shard].in_ring == 0 {
                    break;
                }
                if self.injector.is_stalled(shard) {
                    self.failover(shard);
                    continue;
                }
                self.drain_chunk(shard);
            }
        }
        let Self { cfg, shards, sram, kmap, lanes, .. } = self;
        let per_shard: Vec<IngestStats> = lanes
            .into_iter()
            .map(|lane| {
                let mut st = lane.retired;
                st.merge(&lane.worker.finish(&sram, &kmap));
                st
            })
            .collect();
        ConcurrentCaesar::assemble(cfg, shards, sram, kmap, per_shard)
    }

    // -----------------------------------------------------------------
    // Crash-consistent snapshot / restore
    // -----------------------------------------------------------------

    /// Serialize the complete dynamic state into a sealed,
    /// self-validating blob (see [`support::bytesx::seal`]).
    ///
    /// Takes `&mut self` because the in-ring packets are drained and
    /// re-queued (order-preserving) to serialize them; the engine's
    /// observable state is unchanged. The attached [`FaultInjector`]
    /// is test scaffolding and is **not** serialized — a restored
    /// engine gets an inert injector.
    ///
    /// A full snapshot **anchors a delta-checkpoint chain**: subsequent
    /// [`OnlineCaesar::checkpoint_delta`] frames name this blob (by
    /// digest) as their base and serialize only the SRAM blocks that
    /// changed since, so checkpoint cost drops from O(L) to O(changed).
    pub fn snapshot(&mut self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.snapshot_into(&mut buf);
        buf
    }

    /// [`OnlineCaesar::snapshot`] into a caller-owned buffer (cleared
    /// first), so a periodic checkpoint loop reuses one allocation
    /// instead of growing a fresh `Vec` every epoch.
    pub fn snapshot_into(&mut self, buf: &mut Vec<u8>) {
        buf.clear();
        encode_snapshot_prelude(buf, &self.header(), &self.sram);
        self.encode_lanes(buf);
        seal(buf);
        // This blob is now the chain anchor: future deltas diff against
        // it, so the dirty baseline resets here.
        self.chain = Some((hashkit::fnv::fnv1a64(buf), 0));
        let _ = self.sram.take_dirty_blocks();
    }

    /// The scalar engine header shared by full snapshots and delta
    /// frames (see [`EngineHeader`]).
    pub(crate) fn header(&self) -> EngineHeader<'_> {
        EngineHeader {
            cfg: &self.cfg,
            shards: self.shards,
            policy: self.policy,
            ring_capacity: self.ring_capacity,
            epoch_len: self.epoch_len,
            watchdog_deadline: self.watchdog_deadline,
            epoch: self.epoch,
            merges: self.merges,
            offered_total: self.offered_total,
        }
    }

    /// Per-lane dynamic state, shared verbatim by full snapshots and
    /// delta frames (the lane tail is O(cache + staged) — small and
    /// epoch-churned, so deltas carry it whole). Drains and re-queues
    /// each ring to serialize its contents; observably side-effect
    /// free.
    fn encode_lanes(&mut self, buf: &mut Vec<u8>) {
        for shard in 0..self.shards {
            // Drain the ring to serialize its contents, then re-queue
            // them in order (the ring is empty in between, so pushes
            // cannot fail).
            let mut pending: Vec<u64> = Vec::with_capacity(self.lanes[shard].in_ring as usize);
            while let Some(f) = self.lanes[shard].rx.try_pop() {
                pending.push(f);
            }
            debug_assert_eq!(pending.len() as u64, self.lanes[shard].in_ring);
            let lane = &mut self.lanes[shard];
            encode_lane_section(
                buf,
                &LaneEncodeParts {
                    offered: lane.offered,
                    recorded: lane.recorded,
                    dropped: lane.dropped,
                    quarantined: lane.quarantined,
                    respawns: lane.respawns,
                    inline_fallback: lane.inline_fallback,
                    stalled_attempts: lane.stalled_attempts,
                    pending: &pending,
                    retired: &lane.retired,
                    state: &lane.worker.snapshot_state(),
                    log: &lane.log,
                },
            );
            for f in pending {
                let pushed = lane.tx.try_push(f).is_ok();
                debug_assert!(pushed, "re-queue into an emptied ring cannot fail");
            }
        }
    }

    /// Emit a sealed `CDLT` delta-checkpoint frame: everything that
    /// changed since the chain's previous checkpoint. The SRAM section
    /// is **sparse** — only the [`crate::DIRTY_BLOCK_COUNTERS`]-counter
    /// blocks the dirty bitmap reports — so at large `L` with low
    /// per-epoch churn the frame is a small fraction of a full
    /// [`OnlineCaesar::snapshot`]. The lane tail (caches, RNG streams,
    /// staged writeback, rings, loss counters, fault logs) is carried
    /// whole: it is O(cache), independent of `L`, and churns fully
    /// every epoch anyway.
    ///
    /// Chain discipline: a full snapshot anchors the chain (its digest
    /// is the chain id); each delta carries the chain id and a 1-based
    /// sequence number. [`OnlineCaesar::restore_chain`] replays
    /// `base + deltas` to a state **byte-identical** to the
    /// uninterrupted engine at the moment this frame was emitted.
    ///
    /// # Errors
    /// [`DeltaError::NoBase`] when no [`OnlineCaesar::snapshot`] has
    /// anchored a chain yet.
    pub fn checkpoint_delta(&mut self) -> Result<Vec<u8>, DeltaError> {
        let mut buf = Vec::new();
        self.checkpoint_delta_into(&mut buf)?;
        Ok(buf)
    }

    /// [`OnlineCaesar::checkpoint_delta`] into a caller-owned buffer
    /// (cleared first) — the zero-realloc form for a periodic
    /// checkpoint loop.
    pub fn checkpoint_delta_into(&mut self, buf: &mut Vec<u8>) -> Result<(), DeltaError> {
        let (chain_id, seq) = self.chain.ok_or(DeltaError::NoBase)?;
        buf.clear();
        encode_delta_prelude(buf, &self.header(), &self.sram, chain_id, seq + 1);
        self.encode_lanes(buf);
        seal(buf);
        self.chain = Some((chain_id, seq + 1));
        Ok(())
    }

    /// Apply one `CDLT` delta frame emitted by
    /// [`OnlineCaesar::checkpoint_delta`] on the uninterrupted engine.
    /// The frame is fully decoded and validated **before** any state is
    /// touched, so a rejected delta leaves the engine unchanged.
    ///
    /// # Errors
    /// Typed rejection for every failure mode: sealed-envelope damage
    /// ([`DeltaError::Seal`]), frames that are not deltas
    /// ([`DeltaError::BadMagic`]), foreign sketches
    /// ([`DeltaError::Incompatible`]), deltas from another chain
    /// ([`DeltaError::ForeignChain`]), gaps / replays / out-of-order
    /// application ([`DeltaError::Sequence`]), and internal
    /// inconsistencies ([`DeltaError::Corrupt`]).
    pub fn apply_delta(&mut self, bytes: &[u8]) -> Result<(), DeltaError> {
        let (chain_id, seq) = self.chain.ok_or(DeltaError::NoBase)?;
        let payload = unseal(bytes)?;
        let mut r = ByteReader::new(payload);
        let magic = r.get_array::<4>().ok_or(DeltaError::Truncated)?;
        if &magic != DELTA_MAGIC {
            return Err(DeltaError::BadMagic);
        }
        let version = r.get_u16_le().ok_or(DeltaError::Truncated)?;
        if version != DELTA_VERSION {
            return Err(DeltaError::UnsupportedVersion(version));
        }
        let fingerprint = SketchFingerprint::decode_from(&mut r).ok_or(DeltaError::Truncated)?;
        SketchFingerprint::of(&self.cfg)
            .expect_matches(&fingerprint)
            .map_err(DeltaError::Incompatible)?;
        let found_chain = r.get_u64_le().ok_or(DeltaError::Truncated)?;
        if found_chain != chain_id {
            return Err(DeltaError::ForeignChain { expected: chain_id, found: found_chain });
        }
        let found_seq = r.get_u64_le().ok_or(DeltaError::Truncated)?;
        if found_seq != seq + 1 {
            return Err(DeltaError::Sequence { expected: seq + 1, found: found_seq });
        }
        let epoch = r.get_u64_le().ok_or(DeltaError::Truncated)?;
        let merges = r.get_u64_le().ok_or(DeltaError::Truncated)?;
        let offered_total = r.get_u64_le().ok_or(DeltaError::Truncated)?;
        let shards = r.get_u64_le().ok_or(DeltaError::Truncated)? as usize;
        if shards != self.shards {
            return Err(DeltaError::Corrupt("shard count disagrees with engine"));
        }
        let bits = r.get_u32_le().ok_or(DeltaError::Truncated)?;
        if bits != self.cfg.counter_bits {
            return Err(DeltaError::Corrupt("SRAM width disagrees with config"));
        }
        let counters = r.get_u64_le().ok_or(DeltaError::Truncated)? as usize;
        if counters != self.cfg.counters {
            return Err(DeltaError::Corrupt("SRAM length disagrees with config"));
        }
        let n_blocks_total = counters.div_ceil(crate::sram::DIRTY_BLOCK_COUNTERS);
        let max = self.sram.max_value();
        let n_blocks = r.get_u64_le().ok_or(DeltaError::Truncated)? as usize;
        if n_blocks > n_blocks_total {
            return Err(DeltaError::Corrupt("more dirty blocks than blocks"));
        }
        let mut blocks: Vec<(usize, Vec<u64>)> = Vec::with_capacity(n_blocks);
        let mut prev_block = None;
        for _ in 0..n_blocks {
            let b = r.get_u64_le().ok_or(DeltaError::Truncated)? as usize;
            if b >= n_blocks_total {
                return Err(DeltaError::Corrupt("dirty block index out of range"));
            }
            if prev_block.is_some_and(|p| b <= p) {
                return Err(DeltaError::Corrupt("dirty blocks not strictly ascending"));
            }
            prev_block = Some(b);
            let start = b * crate::sram::DIRTY_BLOCK_COUNTERS;
            let end = (start + crate::sram::DIRTY_BLOCK_COUNTERS).min(counters);
            let mut values = Vec::with_capacity(end - start);
            for _ in start..end {
                let v = r.get_u64_le().ok_or(DeltaError::Truncated)?;
                if v > max {
                    return Err(DeltaError::Corrupt("counter exceeds width"));
                }
                values.push(v);
            }
            blocks.push((start, values));
        }
        let n_tallies = r.get_u64_le().ok_or(DeltaError::Truncated)? as usize;
        if n_tallies != self.shards {
            return Err(DeltaError::Corrupt("tally stripe count disagrees with shards"));
        }
        let mut tallies = Vec::with_capacity(n_tallies);
        for _ in 0..n_tallies {
            let added = r.get_u64_le().ok_or(DeltaError::Truncated)?;
            let sat = r.get_u64_le().ok_or(DeltaError::Truncated)?;
            tallies.push((added, sat));
        }
        let mut lanes = Vec::with_capacity(self.shards);
        #[allow(clippy::needless_range_loop)] // shard indexes `entries` AND names the lane
        for shard in 0..self.shards {
            lanes.push(
                decode_lane(&mut r, &self.cfg, shard, self.entries[shard], self.ring_capacity)
                    .map_err(DeltaError::from)?,
            );
        }
        if r.remaining() != 0 {
            return Err(DeltaError::Corrupt("trailing bytes"));
        }
        // Everything validated — apply.
        self.epoch = epoch;
        self.merges = merges;
        self.offered_total = offered_total;
        for (start, values) in &blocks {
            self.sram.store_counters(*start, values);
        }
        self.sram.restore_tallies(&tallies);
        self.lanes = lanes;
        self.chain = Some((chain_id, found_seq));
        // Replayed state is the new baseline, exactly as it was on the
        // emitting engine the instant after its drain.
        let _ = self.sram.take_dirty_blocks();
        Ok(())
    }

    /// Rebuild an engine from a full-snapshot anchor plus its ordered
    /// delta frames. The result is **byte-identical** (its next
    /// [`OnlineCaesar::snapshot`] emits the same bytes) to the
    /// uninterrupted engine at the moment the last delta was emitted —
    /// and it can keep extending the same chain, since
    /// [`OnlineCaesar::restore`] re-derives the chain id from the base
    /// blob.
    ///
    /// # Errors
    /// [`ChainError::Base`] if the anchor fails to restore;
    /// [`ChainError::Delta`] (naming the offending index) if a delta is
    /// damaged, foreign, or out of sequence.
    pub fn restore_chain<B: AsRef<[u8]>>(base: &[u8], deltas: &[B]) -> Result<Self, ChainError> {
        let mut engine = Self::restore(base).map_err(ChainError::Base)?;
        for (index, delta) in deltas.iter().enumerate() {
            engine
                .apply_delta(delta.as_ref())
                .map_err(|source| ChainError::Delta { index, source })?;
        }
        Ok(engine)
    }

    /// The engine's delta-chain position: `(chain id, deltas emitted
    /// since the anchoring snapshot)`, or `None` before any snapshot.
    pub fn chain_position(&self) -> Option<(u64, u64)> {
        self.chain
    }

    /// Rebuild an engine from a [`OnlineCaesar::snapshot`] blob. The
    /// restored engine **resumes byte-identical** to the uninterrupted
    /// run: every RNG stream, cache slot, memo row, staged writeback
    /// segment, ring packet and counter continues exactly.
    ///
    /// # Errors
    /// Rejects truncated, bit-flipped, version-mismatched or
    /// internally inconsistent blobs.
    pub fn restore(bytes: &[u8]) -> Result<Self, RestoreError> {
        let payload = unseal(bytes)?;
        let mut r = ByteReader::new(payload);
        let version = r.get_u16_le().ok_or(RestoreError::Truncated)?;
        if version != SNAP_VERSION {
            return Err(RestoreError::UnsupportedVersion(version));
        }
        let fingerprint = SketchFingerprint::decode_from(&mut r).ok_or(RestoreError::Truncated)?;
        let cfg = decode_config(&mut r)?;
        if fingerprint != SketchFingerprint::of(&cfg) {
            return Err(RestoreError::Corrupt("fingerprint disagrees with config"));
        }
        let shards = get_usize(&mut r)?;
        if shards == 0 {
            return Err(RestoreError::Corrupt("zero shards"));
        }
        let policy = BackpressurePolicy::from_u8(get_u8(&mut r)?)
            .ok_or(RestoreError::Corrupt("backpressure policy"))?;
        let ring_capacity = get_usize(&mut r)?;
        if ring_capacity == 0 {
            return Err(RestoreError::Corrupt("zero ring capacity"));
        }
        let epoch_len = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        if epoch_len == 0 {
            return Err(RestoreError::Corrupt("zero epoch length"));
        }
        let watchdog_deadline = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        if watchdog_deadline == 0 {
            return Err(RestoreError::Corrupt("zero watchdog deadline"));
        }
        let epoch = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        let merges = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        let offered_total = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        // SRAM.
        let bits = r.get_u32_le().ok_or(RestoreError::Truncated)?;
        if bits != cfg.counter_bits {
            return Err(RestoreError::Corrupt("SRAM width disagrees with config"));
        }
        let n_words = get_usize(&mut r)?;
        if n_words != cfg.counters {
            return Err(RestoreError::Corrupt("SRAM length disagrees with config"));
        }
        let max = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            let w = r.get_u64_le().ok_or(RestoreError::Truncated)?;
            if w > max {
                return Err(RestoreError::Corrupt("counter exceeds width"));
            }
            words.push(w);
        }
        let n_tallies = get_usize(&mut r)?;
        if n_tallies != shards {
            return Err(RestoreError::Corrupt("tally stripe count disagrees with shards"));
        }
        let mut tallies = Vec::with_capacity(n_tallies);
        for _ in 0..n_tallies {
            let added = r.get_u64_le().ok_or(RestoreError::Truncated)?;
            let sat = r.get_u64_le().ok_or(RestoreError::Truncated)?;
            tallies.push((added, sat));
        }
        let sram = AtomicCounterArray::restore(bits, &words, &tallies);
        let kmap = KCounterMap::new(cfg.k, cfg.counters, cfg.seed ^ 0x5EED_5EED);
        let entries = crate::concurrent::per_shard_entries(cfg.cache_entries, shards);
        let mut lanes = Vec::with_capacity(shards);
        #[allow(clippy::needless_range_loop)] // shard indexes `entries` AND names the lane
        for shard in 0..shards {
            lanes.push(decode_lane(&mut r, &cfg, shard, entries[shard], ring_capacity)?);
        }
        if r.remaining() != 0 {
            return Err(RestoreError::Corrupt("trailing bytes"));
        }
        Ok(Self {
            cfg,
            shards,
            policy,
            ring_capacity,
            epoch_len,
            watchdog_deadline,
            sram,
            kmap,
            entries,
            lanes,
            epoch,
            merges,
            offered_total,
            injector: FaultInjector::none(),
            // Re-deriving the chain id from the blob's own bytes means a
            // restored engine continues the chain the blob anchored:
            // both sides hashed the same bytes.
            chain: Some((hashkit::fnv::fnv1a64(bytes), 0)),
        })
    }

    /// Read just the [`SketchFingerprint`] embedded in a snapshot blob
    /// — the cheap compatibility probe an aggregator runs before
    /// committing to a full [`OnlineCaesar::restore`] of a peer node's
    /// state. Validates the seal, so a truncated or bit-flipped blob
    /// is rejected here too.
    pub fn snapshot_fingerprint(bytes: &[u8]) -> Result<SketchFingerprint, RestoreError> {
        let payload = unseal(bytes)?;
        let mut r = ByteReader::new(payload);
        let version = r.get_u16_le().ok_or(RestoreError::Truncated)?;
        if version != SNAP_VERSION {
            return Err(RestoreError::UnsupportedVersion(version));
        }
        SketchFingerprint::decode_from(&mut r).ok_or(RestoreError::Truncated)
    }

    /// [`OnlineCaesar::restore`] gated on merge compatibility: the
    /// blob's embedded fingerprint must match `expected` (typically
    /// the local sketch's [`ConcurrentCaesar::fingerprint`]), so a
    /// node cannot accidentally restore-and-merge a peer snapshot
    /// built with different geometry, seed or estimator — the mismatch
    /// comes back as a typed [`MergeError`] naming the field.
    pub fn restore_expecting(
        bytes: &[u8],
        expected: &SketchFingerprint,
    ) -> Result<Self, RestoreError> {
        let found = Self::snapshot_fingerprint(bytes)?;
        expected
            .expect_matches(&found)
            .map_err(RestoreError::Incompatible)?;
        Self::restore(bytes)
    }
}

/// Snapshot payload layout version (bump on layout changes; the sealed
/// footer's own version is managed by [`support::bytesx`]).
const SNAP_VERSION: u16 = 2;

/// Why [`OnlineCaesar::restore`] rejected a blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The sealed envelope failed validation (truncation, bad magic,
    /// checksum mismatch).
    Seal(SealError),
    /// The payload ran out mid-field.
    Truncated,
    /// The payload's layout version is not supported.
    UnsupportedVersion(u16),
    /// A field decoded but violates an internal invariant.
    Corrupt(&'static str),
    /// The blob is valid but belongs to an incompatible sketch: its
    /// fingerprint differs from the expected one (see
    /// [`OnlineCaesar::restore_expecting`]).
    Incompatible(MergeError),
}

impl From<SealError> for RestoreError {
    fn from(e: SealError) -> Self {
        RestoreError::Seal(e)
    }
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Seal(e) => write!(f, "snapshot envelope invalid: {e}"),
            RestoreError::Truncated => write!(f, "snapshot payload truncated"),
            RestoreError::UnsupportedVersion(v) => {
                write!(f, "snapshot layout version {v} not supported")
            }
            RestoreError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            RestoreError::Incompatible(e) => {
                write!(f, "snapshot belongs to an incompatible sketch: {e}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Delta-frame payload magic: distinguishes a `CDLT` delta from a full
/// snapshot at the first four bytes, so feeding one to the other's
/// decoder fails typed, not garbled.
const DELTA_MAGIC: &[u8; 4] = b"CDLT";

/// Delta-frame payload layout version (bump on layout changes).
const DELTA_VERSION: u16 = 1;

/// Why [`OnlineCaesar::apply_delta`] (or
/// [`OnlineCaesar::checkpoint_delta`]) rejected a frame or refused to
/// emit one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The sealed envelope failed validation (truncation, bad magic,
    /// checksum mismatch).
    Seal(SealError),
    /// The payload ran out mid-field.
    Truncated,
    /// The payload is not a delta frame (e.g. a full snapshot blob was
    /// offered to [`OnlineCaesar::apply_delta`]).
    BadMagic,
    /// The delta's layout version is not supported.
    UnsupportedVersion(u16),
    /// A field decoded but violates an internal invariant.
    Corrupt(&'static str),
    /// The delta belongs to an incompatible sketch (geometry, seed or
    /// estimator differ); the inner error names the diverging field.
    Incompatible(MergeError),
    /// The delta extends a different chain (anchored by a different
    /// full snapshot) than the engine is on.
    ForeignChain {
        /// The engine's chain id.
        expected: u64,
        /// The frame's chain id.
        found: u64,
    },
    /// The delta is not the next link: a gap, a replay, or out-of-order
    /// application.
    Sequence {
        /// The sequence number the engine requires next.
        expected: u64,
        /// The frame's sequence number.
        found: u64,
    },
    /// No full snapshot has anchored a chain on this engine yet.
    NoBase,
}

impl From<SealError> for DeltaError {
    fn from(e: SealError) -> Self {
        DeltaError::Seal(e)
    }
}

impl From<RestoreError> for DeltaError {
    fn from(e: RestoreError) -> Self {
        match e {
            RestoreError::Seal(s) => DeltaError::Seal(s),
            RestoreError::Truncated => DeltaError::Truncated,
            RestoreError::UnsupportedVersion(v) => DeltaError::UnsupportedVersion(v),
            RestoreError::Corrupt(what) => DeltaError::Corrupt(what),
            RestoreError::Incompatible(m) => DeltaError::Incompatible(m),
        }
    }
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Seal(e) => write!(f, "delta envelope invalid: {e}"),
            DeltaError::Truncated => write!(f, "delta payload truncated"),
            DeltaError::BadMagic => write!(f, "payload is not a CDLT delta frame"),
            DeltaError::UnsupportedVersion(v) => {
                write!(f, "delta layout version {v} not supported")
            }
            DeltaError::Corrupt(what) => write!(f, "delta corrupt: {what}"),
            DeltaError::Incompatible(e) => {
                write!(f, "delta belongs to an incompatible sketch: {e}")
            }
            DeltaError::ForeignChain { expected, found } => write!(
                f,
                "delta extends chain {found:#018x}, engine is on {expected:#018x}"
            ),
            DeltaError::Sequence { expected, found } => {
                write!(f, "delta out of sequence: expected #{expected}, found #{found}")
            }
            DeltaError::NoBase => {
                write!(f, "no full snapshot has anchored a delta chain yet")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Why [`OnlineCaesar::restore_chain`] failed, locating the offending
/// link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The anchoring full snapshot failed to restore.
    Base(RestoreError),
    /// A delta frame was rejected; `index` is its position in the
    /// `deltas` slice.
    Delta {
        /// Zero-based position of the rejected frame.
        index: usize,
        /// Why it was rejected.
        source: DeltaError,
    },
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::Base(e) => write!(f, "chain base snapshot rejected: {e}"),
            ChainError::Delta { index, source } => {
                write!(f, "chain delta #{index} rejected: {source}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

// ---------------------------------------------------------------------
// Codec helpers
// ---------------------------------------------------------------------

/// The scalar engine state every checkpoint frame carries — shared
/// between [`OnlineCaesar`] and the detached-thread runtime
/// ([`crate::threaded`]) so both emit **byte-identical** layouts from
/// one encoder instead of two hand-kept copies.
pub(crate) struct EngineHeader<'a> {
    pub(crate) cfg: &'a CaesarConfig,
    pub(crate) shards: usize,
    pub(crate) policy: BackpressurePolicy,
    pub(crate) ring_capacity: usize,
    pub(crate) epoch_len: u64,
    pub(crate) watchdog_deadline: u64,
    pub(crate) epoch: u64,
    pub(crate) merges: u64,
    pub(crate) offered_total: u64,
}

/// Full-snapshot prelude: layout version, fingerprint, config, engine
/// scalars, then the complete SRAM (words + tally stripes). The lane
/// sections and the seal footer follow.
pub(crate) fn encode_snapshot_prelude(
    buf: &mut Vec<u8>,
    h: &EngineHeader<'_>,
    sram: &AtomicCounterArray,
) {
    buf.put_u16_le(SNAP_VERSION);
    // The sketch identity leads the blob so a peer can check merge
    // compatibility (see [`SketchFingerprint`]) without decoding —
    // or trusting — the rest of the state.
    SketchFingerprint::of(h.cfg).encode_into(buf);
    encode_config(buf, h.cfg);
    buf.put_u64_le(h.shards as u64);
    buf.put_slice(&[h.policy.to_u8()]);
    buf.put_u64_le(h.ring_capacity as u64);
    buf.put_u64_le(h.epoch_len);
    buf.put_u64_le(h.watchdog_deadline);
    buf.put_u64_le(h.epoch);
    buf.put_u64_le(h.merges);
    buf.put_u64_le(h.offered_total);
    // SRAM: counter words + per-stripe tallies.
    buf.put_u32_le(sram.bits());
    let words = sram.snapshot();
    buf.put_u64_le(words.len() as u64);
    for w in &words {
        buf.put_u64_le(*w);
    }
    let tallies = sram.tally_snapshot();
    buf.put_u64_le(tallies.len() as u64);
    for &(added, sat) in &tallies {
        buf.put_u64_le(added);
        buf.put_u64_le(sat);
    }
}

/// Delta-frame prelude: magic, chain discipline fields, engine
/// scalars, then the **sparse** SRAM section — absolute counter values
/// of every dirty block (replay is a plain store — no
/// read-modify-write, no saturation bookkeeping to re-derive) plus the
/// full tally stripes (O(shards), tiny). Consumes the dirty baseline
/// via [`AtomicCounterArray::take_dirty_blocks`].
pub(crate) fn encode_delta_prelude(
    buf: &mut Vec<u8>,
    h: &EngineHeader<'_>,
    sram: &AtomicCounterArray,
    chain_id: u64,
    next_seq: u64,
) {
    buf.put_slice(DELTA_MAGIC);
    buf.put_u16_le(DELTA_VERSION);
    SketchFingerprint::of(h.cfg).encode_into(buf);
    buf.put_u64_le(chain_id);
    buf.put_u64_le(next_seq);
    buf.put_u64_le(h.epoch);
    buf.put_u64_le(h.merges);
    buf.put_u64_le(h.offered_total);
    buf.put_u64_le(h.shards as u64);
    buf.put_u32_le(sram.bits());
    buf.put_u64_le(sram.len() as u64);
    let blocks = sram.take_dirty_blocks();
    buf.put_u64_le(blocks.len() as u64);
    for &b in &blocks {
        buf.put_u64_le(b as u64);
        let start = b * crate::sram::DIRTY_BLOCK_COUNTERS;
        let end = (start + crate::sram::DIRTY_BLOCK_COUNTERS).min(sram.len());
        for idx in start..end {
            buf.put_u64_le(sram.get(idx));
        }
    }
    let tallies = sram.tally_snapshot();
    buf.put_u64_le(tallies.len() as u64);
    for &(added, sat) in &tallies {
        buf.put_u64_le(added);
        buf.put_u64_le(sat);
    }
}

/// Everything one per-lane section serializes, borrowed from whichever
/// runtime owns the lane (the pump's [`Lane`] or a thread lane's
/// locked worker cell).
pub(crate) struct LaneEncodeParts<'a> {
    pub(crate) offered: u64,
    pub(crate) recorded: u64,
    pub(crate) dropped: u64,
    pub(crate) quarantined: u64,
    pub(crate) respawns: u64,
    pub(crate) inline_fallback: bool,
    pub(crate) stalled_attempts: u64,
    pub(crate) pending: &'a [u64],
    pub(crate) retired: &'a IngestStats,
    pub(crate) state: &'a ShardWorkerState,
    pub(crate) log: &'a FaultLog,
}

/// One lane's dynamic state, shared verbatim by full snapshots and
/// delta frames (the lane tail is O(cache + staged) — small and
/// epoch-churned, so deltas carry it whole).
pub(crate) fn encode_lane_section(buf: &mut Vec<u8>, parts: &LaneEncodeParts<'_>) {
    buf.put_u64_le(parts.offered);
    buf.put_u64_le(parts.recorded);
    buf.put_u64_le(parts.dropped);
    buf.put_u64_le(parts.quarantined);
    buf.put_u64_le(parts.respawns);
    buf.put_slice(&[u8::from(parts.inline_fallback)]);
    buf.put_u64_le(parts.stalled_attempts);
    buf.put_u64_le(parts.pending.len() as u64);
    for &f in parts.pending {
        buf.put_u64_le(f);
    }
    encode_ingest_stats(buf, parts.retired);
    encode_worker_state(buf, parts.state);
    encode_fault_log(buf, parts.log);
}

/// Decode one lane's dynamic state — the exact inverse of the per-lane
/// section [`OnlineCaesar`]'s `encode_lanes` writes, shared by
/// [`OnlineCaesar::restore`] and [`OnlineCaesar::apply_delta`].
fn decode_lane(
    r: &mut ByteReader<'_>,
    cfg: &CaesarConfig,
    shard: usize,
    entries: usize,
    ring_capacity: usize,
) -> Result<Lane, RestoreError> {
    let offered = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    let recorded = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    let dropped = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    let quarantined = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    let respawns = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    let inline_fallback = match get_u8(r)? {
        0 => false,
        1 => true,
        _ => return Err(RestoreError::Corrupt("inline flag")),
    };
    let stalled_attempts = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    let n_pending = get_usize(r)?;
    if n_pending > ring_capacity {
        return Err(RestoreError::Corrupt("ring contents exceed capacity"));
    }
    let mut pending = Vec::with_capacity(n_pending);
    for _ in 0..n_pending {
        pending.push(r.get_u64_le().ok_or(RestoreError::Truncated)?);
    }
    let retired = decode_ingest_stats(r)?;
    let state = decode_worker_state(r)?;
    if state.memo.len() != entries * cfg.k {
        return Err(RestoreError::Corrupt("memo geometry"));
    }
    if state.cache.slots.len() > entries {
        return Err(RestoreError::Corrupt("cache slot count"));
    }
    let log = decode_fault_log(r)?;
    let worker = ShardWorker::restore_state(cfg, shard, entries, state);
    let (mut tx, rx) = spsc::ring::<u64>(ring_capacity);
    let in_ring = pending.len() as u64;
    for f in pending {
        let pushed = tx.try_push(f).is_ok();
        debug_assert!(pushed, "capacity checked above");
    }
    Ok(Lane {
        tx,
        rx,
        worker,
        buf: Vec::with_capacity(STREAM_CHUNK),
        offered,
        recorded,
        dropped,
        quarantined,
        in_ring,
        respawns,
        inline_fallback,
        stalled_attempts,
        retired,
        log,
    })
}

fn get_u8(r: &mut ByteReader<'_>) -> Result<u8, RestoreError> {
    r.get_array::<1>().map(|[b]| b).ok_or(RestoreError::Truncated)
}

fn get_usize(r: &mut ByteReader<'_>) -> Result<usize, RestoreError> {
    let v = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    usize::try_from(v).map_err(|_| RestoreError::Corrupt("length exceeds usize"))
}

fn policy_to_u8(p: CachePolicy) -> u8 {
    match p {
        CachePolicy::Lru => 0,
        CachePolicy::Random => 1,
        CachePolicy::Fifo => 2,
    }
}

fn policy_from_u8(v: u8) -> Option<CachePolicy> {
    match v {
        0 => Some(CachePolicy::Lru),
        1 => Some(CachePolicy::Random),
        2 => Some(CachePolicy::Fifo),
        _ => None,
    }
}

fn encode_config(buf: &mut Vec<u8>, cfg: &CaesarConfig) {
    buf.put_u64_le(cfg.cache_entries as u64);
    buf.put_u64_le(cfg.entry_capacity);
    buf.put_slice(&[policy_to_u8(cfg.policy)]);
    buf.put_u64_le(cfg.counters as u64);
    buf.put_u64_le(cfg.k as u64);
    buf.put_u32_le(cfg.counter_bits);
    buf.put_slice(&[match cfg.estimator {
        Estimator::Csm => 0,
        Estimator::Mlm => 1,
    }]);
    buf.put_u64_le(cfg.seed);
}

fn decode_config(r: &mut ByteReader<'_>) -> Result<CaesarConfig, RestoreError> {
    let cache_entries = get_usize(r)?;
    let entry_capacity = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    let policy = policy_from_u8(get_u8(r)?).ok_or(RestoreError::Corrupt("cache policy"))?;
    let counters = get_usize(r)?;
    let k = get_usize(r)?;
    let counter_bits = r.get_u32_le().ok_or(RestoreError::Truncated)?;
    let estimator = match get_u8(r)? {
        0 => Estimator::Csm,
        1 => Estimator::Mlm,
        _ => return Err(RestoreError::Corrupt("estimator")),
    };
    let seed = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    let cfg = CaesarConfig {
        cache_entries,
        entry_capacity,
        policy,
        counters,
        k,
        counter_bits,
        estimator,
        seed,
    };
    // Manual validation (CaesarConfig::validate panics; restore must
    // surface bad data as an error).
    if cache_entries == 0
        || entry_capacity < 2
        || counters == 0
        || k == 0
        || k > K_MAX
        || k > counters
        || !(1..=63).contains(&counter_bits)
    {
        return Err(RestoreError::Corrupt("config out of range"));
    }
    Ok(cfg)
}

fn encode_ingest_stats(buf: &mut Vec<u8>, st: &IngestStats) {
    buf.put_u64_le(st.evictions);
    buf.put_u64_le(st.staged_updates);
    buf.put_u64_le(st.flushed_updates);
    buf.put_u64_le(st.flushes);
}

fn decode_ingest_stats(r: &mut ByteReader<'_>) -> Result<IngestStats, RestoreError> {
    Ok(IngestStats {
        evictions: r.get_u64_le().ok_or(RestoreError::Truncated)?,
        staged_updates: r.get_u64_le().ok_or(RestoreError::Truncated)?,
        flushed_updates: r.get_u64_le().ok_or(RestoreError::Truncated)?,
        flushes: r.get_u64_le().ok_or(RestoreError::Truncated)?,
    })
}

fn encode_worker_state(buf: &mut Vec<u8>, st: &ShardWorkerState) {
    // Cache.
    buf.put_u64_le(st.cache.slots.len() as u64);
    for &(flow, count, prev, next) in &st.cache.slots {
        buf.put_u64_le(flow);
        buf.put_u64_le(count);
        buf.put_u32_le(prev);
        buf.put_u32_le(next);
    }
    buf.put_u32_le(st.cache.head);
    buf.put_u32_le(st.cache.tail);
    for &s in &st.cache.rng {
        buf.put_u64_le(s);
    }
    buf.put_u64_le(st.cache.stats.hits);
    buf.put_u64_le(st.cache.stats.misses);
    buf.put_u64_le(st.cache.stats.overflow_evictions);
    buf.put_u64_le(st.cache.stats.replacement_evictions);
    buf.put_u64_le(st.cache.stats.final_dump_entries);
    // Scatter RNG.
    for &s in &st.rng {
        buf.put_u64_le(s);
    }
    // Memo rows.
    buf.put_u64_le(st.memo.len() as u64);
    for &m in &st.memo {
        buf.put_u64_le(m as u64);
    }
    // Writeback segment.
    buf.put_u64_le(st.wb.pending.len() as u64);
    for &(idx, v) in &st.wb.pending {
        buf.put_u64_le(idx as u64);
        buf.put_u64_le(v);
    }
    buf.put_u64_le(st.wb.capacity as u64);
    buf.put_u64_le(st.wb.stripe as u64);
    buf.put_u64_le(st.wb.flushes);
    buf.put_u64_le(st.wb.staged_updates);
    buf.put_u64_le(st.wb.flushed_updates);
    buf.put_u64_le(st.evictions);
}

fn get_rng_state(r: &mut ByteReader<'_>) -> Result<[u64; 4], RestoreError> {
    let mut s = [0u64; 4];
    for slot in &mut s {
        *slot = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    }
    Ok(s)
}

fn decode_worker_state(r: &mut ByteReader<'_>) -> Result<ShardWorkerState, RestoreError> {
    let n_slots = get_usize(r)?;
    let mut slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        let flow = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        let count = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        let prev = r.get_u32_le().ok_or(RestoreError::Truncated)?;
        let next = r.get_u32_le().ok_or(RestoreError::Truncated)?;
        slots.push((flow, count, prev, next));
    }
    let head = r.get_u32_le().ok_or(RestoreError::Truncated)?;
    let tail = r.get_u32_le().ok_or(RestoreError::Truncated)?;
    let cache_rng = get_rng_state(r)?;
    let stats = CacheStats {
        hits: r.get_u64_le().ok_or(RestoreError::Truncated)?,
        misses: r.get_u64_le().ok_or(RestoreError::Truncated)?,
        overflow_evictions: r.get_u64_le().ok_or(RestoreError::Truncated)?,
        replacement_evictions: r.get_u64_le().ok_or(RestoreError::Truncated)?,
        final_dump_entries: r.get_u64_le().ok_or(RestoreError::Truncated)?,
    };
    let rng = get_rng_state(r)?;
    let n_memo = get_usize(r)?;
    let mut memo = Vec::with_capacity(n_memo);
    for _ in 0..n_memo {
        memo.push(get_usize(r)?);
    }
    let n_pending = get_usize(r)?;
    let mut pending = Vec::with_capacity(n_pending);
    for _ in 0..n_pending {
        let idx = get_usize(r)?;
        let v = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        pending.push((idx, v));
    }
    let capacity = get_usize(r)?;
    let stripe = get_usize(r)?;
    let flushes = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    let staged_updates = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    let flushed_updates = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    let evictions = r.get_u64_le().ok_or(RestoreError::Truncated)?;
    Ok(ShardWorkerState {
        cache: CacheTableState { slots, head, tail, rng: cache_rng, stats },
        rng,
        memo,
        wb: crate::atomic_sram::WritebackState {
            pending,
            capacity,
            stripe,
            flushes,
            staged_updates,
            flushed_updates,
        },
        evictions,
    })
}

fn encode_fault_log(buf: &mut Vec<u8>, log: &FaultLog) {
    buf.put_u64_le(log.records.len() as u64);
    for rec in &log.records {
        buf.put_slice(&[match rec.kind {
            FaultKind::WorkerPanic => 0,
            FaultKind::WatchdogFailover => 1,
        }]);
        buf.put_u64_le(rec.epoch);
        buf.put_u64_le(rec.at_offered);
        buf.put_u64_le(rec.quarantined);
        buf.put_u64_le(rec.salvaged_units);
        buf.put_slice(&[u8::from(rec.exact)]);
        buf.put_u64_le(rec.payload.len() as u64);
        buf.put_slice(rec.payload.as_bytes());
    }
}

fn decode_fault_log(r: &mut ByteReader<'_>) -> Result<FaultLog, RestoreError> {
    let n = get_usize(r)?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = match get_u8(r)? {
            0 => FaultKind::WorkerPanic,
            1 => FaultKind::WatchdogFailover,
            _ => return Err(RestoreError::Corrupt("fault kind")),
        };
        let epoch = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        let at_offered = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        let quarantined = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        let salvaged_units = r.get_u64_le().ok_or(RestoreError::Truncated)?;
        let exact = match get_u8(r)? {
            0 => false,
            1 => true,
            _ => return Err(RestoreError::Corrupt("exact flag")),
        };
        let len = get_usize(r)?;
        let mut bytes = vec![0u8; len];
        for b in &mut bytes {
            *b = get_u8(r)?;
        }
        let payload =
            String::from_utf8(bytes).map_err(|_| RestoreError::Corrupt("payload utf-8"))?;
        records.push(FaultRecord {
            kind,
            epoch,
            at_offered,
            quarantined,
            salvaged_units,
            payload,
            exact,
        });
    }
    Ok(FaultLog { records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use support::testkit::FaultEvent;

    fn cfg() -> CaesarConfig {
        CaesarConfig {
            cache_entries: 96,
            entry_capacity: 8,
            counters: 2048,
            k: 3,
            ..CaesarConfig::default()
        }
    }

    fn workload(n: u64) -> Vec<u64> {
        (0..n).map(|i| hashkit::mix::mix64(i % 257)).collect()
    }

    fn assert_conserved(o: &OnlineCaesar) {
        let st = o.stats();
        assert_eq!(
            st.offered,
            st.recorded + st.dropped + st.quarantined + st.in_flight,
            "mass conservation"
        );
    }

    #[test]
    fn fault_free_online_equals_batch_build() {
        let flows = workload(40_000);
        for shards in [1usize, 2, 4] {
            let mut online = OnlineCaesar::new(cfg(), shards);
            online.offer_batch(&flows);
            assert_conserved(&online);
            let finished = online.finish();
            let reference = ConcurrentCaesar::build(cfg(), shards, &flows);
            assert_eq!(
                finished.sram().snapshot(),
                reference.sram().snapshot(),
                "shards = {shards}"
            );
            assert_eq!(finished.evictions(), reference.evictions());
            assert_eq!(finished.sram().total_added(), reference.sram().total_added());
        }
    }

    #[test]
    fn injected_panic_keeps_engine_serving_with_exact_accounting() {
        let flows = workload(30_000);
        let plan = FaultInjector::with_events(vec![FaultEvent {
            site: FaultSite::WorkerPanic,
            shard: 0,
            at_tick: 1_000,
        }]);
        let mut online = OnlineCaesar::new(cfg(), 2).with_injector(plan);
        online.offer_batch(&flows);
        assert_conserved(&online);
        let st = online.stats();
        assert_eq!(st.respawns, 1, "worker respawned once");
        assert!(st.quarantined > 0, "the fault batch remainder was quarantined");
        assert_eq!(online.fault_log(0).panics(), 1);
        assert!(online.fault_log(0).is_exact());
        // Still serving queries.
        let q = online.query(flows[0]);
        assert!(q.is_finite() && q >= 0.0);
        // And mass: visible + cache-resident == recorded (merges flush
        // staged evictions; live cache mass stays on-chip by design).
        online.merge_now();
        assert_eq!(
            online.sram().total_added() + online.unmerged_units(),
            online.stats().recorded
        );
    }

    #[test]
    fn stalled_ring_fails_over_and_blocks_policy_never_drops() {
        let flows = workload(20_000);
        let plan = FaultInjector::with_events(vec![FaultEvent {
            site: FaultSite::RingStall,
            shard: 0,
            at_tick: 3,
        }]);
        let mut online = OnlineCaesar::new(cfg(), 2)
            .with_injector(plan)
            .with_ring_capacity(64)
            .with_watchdog_deadline(4);
        online.offer_batch(&flows);
        assert_conserved(&online);
        let st = online.stats();
        assert_eq!(st.dropped, 0, "Block never drops");
        assert_eq!(st.failovers, 1, "watchdog failed the lane over once");
        assert!(online.fault_log(0).failovers() == 1);
        let finished = online.finish();
        assert_eq!(finished.sram().total_added(), flows.len() as u64);
    }

    #[test]
    fn drop_policies_account_losses_exactly() {
        let flows = workload(10_000);
        for policy in [BackpressurePolicy::DropNewest, BackpressurePolicy::DropOldest] {
            let plan = FaultInjector::with_events(vec![FaultEvent {
                site: FaultSite::RingStall,
                shard: 0,
                at_tick: 0,
            }]);
            let mut online = OnlineCaesar::new(cfg(), 1)
                .with_injector(plan)
                .with_policy(policy)
                .with_ring_capacity(16)
                .with_watchdog_deadline(1_000_000); // never fail over
            online.offer_batch(&flows);
            assert_conserved(&online);
            let st = online.stats();
            assert!(st.dropped > 0, "{policy:?} sheds under a wedged consumer");
            let finished = online.finish();
            assert_eq!(
                finished.sram().total_added() + st.dropped,
                flows.len() as u64,
                "{policy:?}: every packet is either measured or counted lost"
            );
        }
    }

    #[test]
    fn query_health_folds_losses_into_confidence() {
        let flows = workload(10_000);
        let plan = FaultInjector::with_events(vec![FaultEvent {
            site: FaultSite::RingStall,
            shard: 0,
            at_tick: 0,
        }]);
        let mut online = OnlineCaesar::new(cfg(), 1)
            .with_injector(plan)
            .with_policy(BackpressurePolicy::DropNewest)
            .with_ring_capacity(16)
            .with_watchdog_deadline(1_000_000);
        online.offer_batch(&flows);
        online.merge_now();
        let h = online.query_health(flows[0]);
        assert!(h.loss_fraction > 0.0, "losses surface at query time");
        assert!(h.confidence < 1.0);
        assert!(h.is_degraded());
    }

    #[test]
    fn forced_saturation_degrades_health() {
        let flows = workload(9_000);
        let plan = FaultInjector::with_events(vec![FaultEvent {
            site: FaultSite::ForceSaturation,
            shard: 0,
            at_tick: 0,
        }]);
        let mut online = OnlineCaesar::new(cfg(), 1)
            .with_injector(plan)
            .with_epoch_len(4_096);
        online.offer_batch(&flows);
        assert!(online.sram().saturations() > 0);
        let h = online.query_health(flows[0]);
        assert!(h.saturation_events > 0);
        assert!(h.is_degraded());
        // Forced saturation bumps the tally only — mass is unaffected.
        assert_conserved(&online);
    }

    #[test]
    fn epochs_rotate_and_merge_visibly() {
        let flows = workload(20_000);
        let mut online = OnlineCaesar::new(cfg(), 2).with_epoch_len(5_000);
        online.offer_batch(&flows);
        let st = online.stats();
        assert_eq!(st.epoch, 4, "20k packets / 5k epoch length");
        assert_eq!(st.merges, 4);
        // After a merge every recorded packet's evicted mass is
        // visible; residue lives only in the caches.
        assert_eq!(
            online.sram().total_added() + online.unmerged_units(),
            st.recorded
        );
    }

    #[test]
    fn snapshot_restore_resume_is_byte_identical() {
        let flows = workload(24_000);
        let (first, rest) = flows.split_at(11_000);
        // Uninterrupted reference.
        let mut a = OnlineCaesar::new(cfg(), 2).with_epoch_len(4_096);
        a.offer_batch(&flows);
        let fa = a.finish();
        // Interrupted: snapshot mid-stream, restore, resume.
        let mut b = OnlineCaesar::new(cfg(), 2).with_epoch_len(4_096);
        b.offer_batch(first);
        let blob = b.snapshot();
        drop(b); // the "crash"
        let mut c = OnlineCaesar::restore(&blob).expect("snapshot restores");
        c.offer_batch(rest);
        let fc = c.finish();
        assert_eq!(fa.sram().snapshot(), fc.sram().snapshot(), "SRAM byte-identical");
        assert_eq!(fa.evictions(), fc.evictions());
        assert_eq!(fa.ingest_stats(), fc.ingest_stats());
    }

    #[test]
    fn snapshot_is_side_effect_free() {
        let flows = workload(8_000);
        let mut a = OnlineCaesar::new(cfg(), 2);
        let mut b = OnlineCaesar::new(cfg(), 2);
        for (i, &f) in flows.iter().enumerate() {
            a.offer(f);
            b.offer(f);
            if i % 1_000 == 0 {
                let _ = b.snapshot(); // drain + re-queue must be invisible
            }
        }
        assert_eq!(a.finish().sram().snapshot(), b.finish().sram().snapshot());
    }

    #[test]
    fn delta_chain_replays_byte_identical() {
        let flows = workload(30_000);
        let (base_part, tail) = flows.split_at(10_000);
        let (mid, last) = tail.split_at(10_000);
        let mut live = OnlineCaesar::new(cfg(), 2).with_epoch_len(4_096);
        live.offer_batch(base_part);
        let base = live.snapshot();
        assert_eq!(live.chain_position(), Some((hashkit::fnv::fnv1a64(&base), 0)));
        live.offer_batch(mid);
        let d1 = live.checkpoint_delta().expect("anchored chain emits");
        live.offer_batch(last);
        let d2 = live.checkpoint_delta().expect("second link");
        assert_eq!(live.chain_position().map(|(_, s)| s), Some(2));
        // Replica replays the chain and lands byte-identical: its next
        // full snapshot emits the same bytes as the live engine's.
        let mut replica =
            OnlineCaesar::restore_chain(&base, &[&d1, &d2]).expect("chain replays");
        assert_conserved(&replica);
        assert_eq!(live.snapshot(), replica.snapshot(), "state byte-identical");
        // And both keep measuring identically.
        let more = workload(6_000);
        live.offer_batch(&more);
        replica.offer_batch(&more);
        assert_eq!(live.finish().sram().snapshot(), replica.finish().sram().snapshot());
    }

    #[test]
    fn checkpoint_delta_requires_an_anchor() {
        let mut online = OnlineCaesar::new(cfg(), 2);
        online.offer_batch(&workload(1_000));
        assert_eq!(online.checkpoint_delta(), Err(DeltaError::NoBase));
        let _ = online.snapshot();
        assert!(online.checkpoint_delta().is_ok());
    }

    #[test]
    fn apply_delta_rejects_gaps_replays_foreign_and_corrupt_frames() {
        let flows = workload(20_000);
        let mut live = OnlineCaesar::new(cfg(), 2);
        live.offer_batch(&flows[..8_000]);
        let base = live.snapshot();
        live.offer_batch(&flows[8_000..14_000]);
        let d1 = live.checkpoint_delta().expect("link 1");
        live.offer_batch(&flows[14_000..]);
        let d2 = live.checkpoint_delta().expect("link 2");

        // Gap: skipping d1 is a typed sequence error, and the rejected
        // frame leaves the replica untouched — d1 then d2 still apply.
        let mut replica = OnlineCaesar::restore(&base).expect("base restores");
        assert_eq!(
            replica.apply_delta(&d2),
            Err(DeltaError::Sequence { expected: 1, found: 2 })
        );
        replica.apply_delta(&d1).expect("in-order link applies");
        // Replay: the same link twice is also out of sequence.
        assert_eq!(
            replica.apply_delta(&d1),
            Err(DeltaError::Sequence { expected: 2, found: 1 })
        );
        replica.apply_delta(&d2).expect("chain completes after rejections");
        assert_eq!(replica.snapshot(), live.snapshot());

        // Foreign chain: a delta anchored to a *different* snapshot.
        let mut other = OnlineCaesar::new(cfg(), 2);
        other.offer_batch(&flows[..500]);
        let other_base = other.snapshot();
        let other_delta = {
            other.offer_batch(&flows[500..900]);
            other.checkpoint_delta().expect("foreign link")
        };
        let mut fresh = OnlineCaesar::restore(&base).expect("base restores");
        assert!(matches!(
            fresh.apply_delta(&other_delta),
            Err(DeltaError::ForeignChain { .. })
        ));
        // A full snapshot blob is not a delta frame.
        assert_eq!(fresh.apply_delta(&other_base), Err(DeltaError::BadMagic));
        // ... and a delta frame is not a snapshot blob.
        assert!(OnlineCaesar::restore(&d1).is_err());
        // Bit-flip → seal rejection before any decoding.
        let mut flipped = d1.clone();
        flipped[d1.len() / 2] ^= 0x10;
        assert!(matches!(
            fresh.apply_delta(&flipped),
            Err(DeltaError::Seal(SealError::BadChecksum))
        ));
        // Unanchored engines cannot apply deltas at all.
        let mut unanchored = OnlineCaesar::new(cfg(), 2);
        assert_eq!(unanchored.apply_delta(&d1), Err(DeltaError::NoBase));
    }

    #[test]
    fn restore_chain_names_the_offending_link() {
        let mut live = OnlineCaesar::new(cfg(), 1);
        live.offer_batch(&workload(4_000));
        let base = live.snapshot();
        live.offer_batch(&workload(2_000));
        let d1 = live.checkpoint_delta().expect("link 1");
        live.offer_batch(&workload(2_000));
        let d2 = live.checkpoint_delta().expect("link 2");
        // Out of order: the failure points at slice index 0.
        assert!(matches!(
            OnlineCaesar::restore_chain(&base, &[&d2, &d1]),
            Err(ChainError::Delta { index: 0, source: DeltaError::Sequence { .. } })
        ));
        // Damaged base.
        assert!(matches!(
            OnlineCaesar::restore_chain(&base[..base.len() - 2], &[&d1]),
            Err(ChainError::Base(_))
        ));
        // The intact chain replays.
        assert!(OnlineCaesar::restore_chain(&base, &[&d1, &d2]).is_ok());
    }

    #[test]
    fn restore_rejects_corruption() {
        let mut online = OnlineCaesar::new(cfg(), 2);
        online.offer_batch(&workload(5_000));
        let blob = online.snapshot();
        // Bit flip anywhere in the payload → checksum mismatch.
        let mut flipped = blob.clone();
        flipped[blob.len() / 2] ^= 0x40;
        assert!(matches!(
            OnlineCaesar::restore(&flipped),
            Err(RestoreError::Seal(SealError::BadChecksum))
        ));
        // Truncation.
        assert!(OnlineCaesar::restore(&blob[..blob.len() - 3]).is_err());
        // Empty.
        assert!(matches!(
            OnlineCaesar::restore(&[]),
            Err(RestoreError::Seal(SealError::Truncated))
        ));
        // The pristine blob still restores.
        assert!(OnlineCaesar::restore(&blob).is_ok());
    }

    #[test]
    fn snapshot_embeds_fingerprint() {
        let mut online = OnlineCaesar::new(cfg(), 2);
        online.offer_batch(&workload(2_000));
        let blob = online.snapshot();
        let fp = OnlineCaesar::snapshot_fingerprint(&blob).expect("peek");
        assert_eq!(fp, SketchFingerprint::of(&cfg()));
        // Peeking validates the seal too.
        assert!(OnlineCaesar::snapshot_fingerprint(&blob[..8]).is_err());
    }

    #[test]
    fn restore_expecting_rejects_mismatched_sketches() {
        let mut online = OnlineCaesar::new(cfg(), 2);
        online.offer_batch(&workload(2_000));
        let blob = online.snapshot();

        // Matching expectation restores and resumes.
        let ours = SketchFingerprint::of(&cfg());
        let restored = OnlineCaesar::restore_expecting(&blob, &ours).expect("compatible");
        assert_eq!(restored.stats().offered, 2_000);

        // A node running different geometry gets a typed field-level
        // rejection instead of a silently wrong merge.
        let other_k = SketchFingerprint::of(&CaesarConfig { k: 4, ..cfg() });
        assert!(matches!(
            OnlineCaesar::restore_expecting(&blob, &other_k),
            Err(RestoreError::Incompatible(MergeError::Geometry { field: "k", .. }))
        ));
        let other_seed = SketchFingerprint::of(&CaesarConfig { seed: 7, ..cfg() });
        assert!(matches!(
            OnlineCaesar::restore_expecting(&blob, &other_seed),
            Err(RestoreError::Incompatible(MergeError::Seed { .. }))
        ));
    }

    #[test]
    fn restored_engine_finishes_into_a_mergeable_sketch() {
        // The cross-node flow the service layer builds on: node B's
        // snapshot travels to node A, restores there (fingerprint
        // checked), finishes, and merges into A's cluster view.
        let flows = workload(10_000);
        let (fa, fb) = flows.split_at(flows.len() / 2);
        let mut node_a = OnlineCaesar::new(cfg(), 2);
        node_a.offer_batch(fa);
        let mut node_b = OnlineCaesar::new(cfg(), 4);
        node_b.offer_batch(fb);
        let blob = node_b.snapshot();

        let a = node_a.finish();
        let b = OnlineCaesar::restore_expecting(&blob, &a.fingerprint())
            .expect("same fleet config")
            .finish();
        let mut view = ConcurrentCaesar::empty(cfg());
        view.merge(&a).unwrap();
        view.merge(&b).unwrap();
        assert_eq!(view.sram().total_added() as usize, flows.len());
    }
}
