//! Event-driven line-card pipeline model.
//!
//! The batch cost model (`cost.rs`) sums event prices; this module
//! resolves *when* things happen: packets enter a front-end stage
//! (hash + cache) at line rate, and eviction writebacks queue for the
//! off-chip SRAM port. When the writeback FIFO fills, the front end
//! stalls — exactly how an FPGA pipeline behaves when the memory port
//! is the bottleneck. The model yields the makespan, the stall count,
//! and the peak queue depth, which the Fig. 8 harness can report next
//! to the batch numbers.


/// What one packet did in the front end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketWork {
    /// Off-chip counter writes this packet's eviction(s) enqueued
    /// (0 for the common cache-hit case).
    pub writebacks: u32,
    /// Extra front-end computation in nanoseconds (e.g. CASE's power
    /// operations), serialized with the packet.
    pub compute_ns: f64,
}

impl PacketWork {
    /// A plain cache hit: no writebacks, no extra compute.
    pub const HIT: PacketWork = PacketWork { writebacks: 0, compute_ns: 0.0 };
}

/// Pipeline configuration.
///
/// ```
/// use memsim::{PacketWork, Pipeline};
/// let pl = Pipeline::default(); // 1 ns arrivals, 10 ns SRAM port
/// // Every packet needs an off-chip RMW: the port is 20x oversubscribed.
/// let report = pl.run((0..10_000).map(|_| PacketWork { writebacks: 2, compute_ns: 0.0 }));
/// assert!(report.stall_fraction() > 0.8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Pipeline {
    /// Packet arrival spacing (line rate), ns.
    pub arrival_ns: f64,
    /// Front-end service per packet (hash + on-chip access), ns.
    pub front_ns: f64,
    /// Off-chip SRAM port service per counter write, ns.
    pub sram_ns: f64,
    /// Writeback FIFO capacity (pending counter writes). When full,
    /// the front end stalls until the port drains.
    pub fifo_capacity: usize,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self {
            arrival_ns: 1.0,
            front_ns: 2.0, // 1 ns hash + 1 ns cache
            sram_ns: 10.0,
            fifo_capacity: 64,
        }
    }
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Packets processed.
    pub packets: u64,
    /// Time the last packet (and its writebacks) completed, ns.
    pub makespan_ns: f64,
    /// Time the front end spent stalled on a full FIFO, ns.
    pub stall_ns: f64,
    /// Counter writes pushed through the SRAM port.
    pub writebacks: u64,
    /// Largest FIFO occupancy observed.
    pub peak_fifo: usize,
}

impl PipelineReport {
    /// Average per-packet processing time.
    pub fn ns_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.makespan_ns / self.packets as f64
        }
    }

    /// Fraction of the run spent stalled.
    pub fn stall_fraction(&self) -> f64 {
        if self.makespan_ns == 0.0 {
            0.0
        } else {
            self.stall_ns / self.makespan_ns
        }
    }
}

impl support::json::ToJson for PipelineReport {
    fn to_json(&self) -> support::json::Json {
        support::json::Json::obj([
            ("packets", self.packets.into()),
            ("makespan_ns", self.makespan_ns.into()),
            ("stall_ns", self.stall_ns.into()),
            ("writebacks", self.writebacks.into()),
            ("peak_fifo", self.peak_fifo.into()),
            ("ns_per_packet", self.ns_per_packet().into()),
        ])
    }
}

impl Pipeline {
    /// Run the pipeline over a packet work stream with fixed arrival
    /// spacing (`arrival_ns`).
    ///
    /// # Panics
    /// Panics on non-positive timing parameters or zero FIFO capacity.
    pub fn run(&self, work: impl IntoIterator<Item = PacketWork>) -> PipelineReport {
        let spacing = self.arrival_ns;
        self.run_timed(
            work.into_iter()
                .enumerate()
                .map(move |(i, w)| (i as f64 * spacing, w)),
        )
    }

    /// Run the pipeline over `(arrival_ns, work)` pairs with explicit,
    /// non-decreasing arrival times — the entry point for bursty or
    /// Poisson arrival processes (see `flowtrace`'s timing module).
    ///
    /// # Panics
    /// Panics on non-positive timing parameters, zero FIFO capacity,
    /// or arrivals that go backwards in time.
    pub fn run_timed(&self, work: impl IntoIterator<Item = (f64, PacketWork)>) -> PipelineReport {
        assert!(self.arrival_ns > 0.0 && self.front_ns > 0.0 && self.sram_ns > 0.0);
        assert!(self.fifo_capacity > 0, "FIFO capacity must be positive");

        // Front-end availability and the SRAM port's drain horizon.
        let mut front_free = 0.0f64;
        let mut port_free = 0.0f64;
        let mut stall_ns = 0.0f64;
        let mut packets = 0u64;
        let mut writebacks = 0u64;
        let mut peak_fifo = 0usize;
        let mut last_arrival = 0.0f64;

        for (arrival, w) in work {
            assert!(arrival >= last_arrival, "arrivals must be non-decreasing");
            last_arrival = arrival;
            let mut start = arrival.max(front_free);

            if w.writebacks > 0 {
                assert!(
                    (w.writebacks as usize) <= self.fifo_capacity,
                    "a single packet's writebacks cannot exceed the FIFO"
                );
                // FIFO occupancy when this packet wants to enqueue: the
                // port drains one write every sram_ns.
                let backlog = ((port_free - start) / self.sram_ns).ceil().max(0.0) as usize;
                peak_fifo = peak_fifo.max(backlog);
                if backlog + w.writebacks as usize > self.fifo_capacity {
                    // Stall until occupancy drops to capacity − new:
                    // port_free − t ≤ (capacity − new)·sram_ns.
                    let stall_until = port_free
                        - (self.fifo_capacity - w.writebacks as usize) as f64 * self.sram_ns;
                    if stall_until > start {
                        stall_ns += stall_until - start;
                        start = stall_until;
                    }
                }
                port_free = port_free.max(start) + w.writebacks as f64 * self.sram_ns;
                writebacks += w.writebacks as u64;
            }

            front_free = start + self.front_ns + w.compute_ns;
            packets += 1;
        }

        PipelineReport {
            packets,
            makespan_ns: front_free.max(port_free),
            stall_ns,
            writebacks,
            peak_fifo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(n: usize) -> Vec<PacketWork> {
        vec![PacketWork::HIT; n]
    }

    #[test]
    fn pure_hits_run_at_front_speed() {
        let p = Pipeline { arrival_ns: 5.0, ..Pipeline::default() };
        let r = p.run(hits(1000));
        // Arrivals slower than the 2 ns front end: makespan = last
        // arrival + front service.
        assert!((r.makespan_ns - (999.0 * 5.0 + 2.0)).abs() < 1e-9);
        assert_eq!(r.stall_ns, 0.0);
        assert_eq!(r.writebacks, 0);
    }

    #[test]
    fn sparse_writebacks_absorbed_by_fifo() {
        let p = Pipeline::default();
        // One eviction (3 writes) every 100 packets: the port (30 ns of
        // work per 100 ns of packets) keeps up, no stalls.
        let work: Vec<PacketWork> = (0..10_000)
            .map(|i| {
                if i % 100 == 0 {
                    PacketWork { writebacks: 3, compute_ns: 0.0 }
                } else {
                    PacketWork::HIT
                }
            })
            .collect();
        let r = p.run(work);
        assert_eq!(r.stall_ns, 0.0, "{r:?}");
        assert_eq!(r.writebacks, 300);
    }

    #[test]
    fn dense_writebacks_stall_the_front_end() {
        let p = Pipeline { fifo_capacity: 8, ..Pipeline::default() };
        // Every packet evicts 3 writes: the port needs 30 ns per 1 ns
        // arrival — massively oversubscribed.
        let work: Vec<PacketWork> = (0..5_000)
            .map(|_| PacketWork { writebacks: 3, compute_ns: 0.0 })
            .collect();
        let r = p.run(work);
        assert!(r.stall_ns > 0.0);
        // Throughput degrades to the port rate: ≈ 30 ns/packet.
        assert!(
            (r.ns_per_packet() - 30.0).abs() < 2.0,
            "ns/pkt = {}",
            r.ns_per_packet()
        );
        assert!(r.peak_fifo <= 8);
    }

    #[test]
    fn compute_cost_serializes_with_packets() {
        let p = Pipeline::default();
        let work: Vec<PacketWork> = (0..1_000)
            .map(|_| PacketWork { writebacks: 0, compute_ns: 35.0 })
            .collect();
        let r = p.run(work);
        // 2 + 35 ns per packet, arrivals every 1 ns: front-bound.
        assert!((r.ns_per_packet() - 37.0).abs() < 1.0, "{}", r.ns_per_packet());
    }

    #[test]
    fn empty_stream() {
        let r = Pipeline::default().run(std::iter::empty());
        assert_eq!(r.packets, 0);
        assert_eq!(r.makespan_ns, 0.0);
        assert_eq!(r.ns_per_packet(), 0.0);
    }

    #[test]
    #[should_panic(expected = "FIFO capacity")]
    fn zero_fifo_rejected() {
        Pipeline { fifo_capacity: 0, ..Pipeline::default() }.run(hits(1));
    }
}
