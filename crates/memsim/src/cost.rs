//! Per-scheme processing-cost accounting (drives Fig. 8).
//!
//! Every scheme's data path is a sequence of countable events — hash
//! computations, on-chip accesses, off-chip SRAM accesses, DISCO power
//! operations. The experiment harness tallies the events its scheme
//! actually performed on a trace prefix and this module converts the
//! tally into nanoseconds.
//!
//! The constants are documented in DESIGN.md §7; the latency figures
//! are the paper's own (§1.1), the computation costs are chosen so the
//! Fig. 8 crossover between CASE and RCS lands near 10⁴ packets as in
//! the paper.

use crate::tech::MemoryModel;

/// Cost constants (nanoseconds per event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessCosts {
    /// One hash evaluation (flow-ID or counter-index).
    pub hash_ns: f64,
    /// One on-chip cache access.
    pub on_chip_ns: f64,
    /// One off-chip SRAM access.
    pub sram_ns: f64,
    /// One floating-point power/log operation (CASE's DISCO step).
    pub pow_op_ns: f64,
    /// One-time setup of the compression tables (CASE precomputes the
    /// DISCO bucket boundaries with repeated power operations).
    pub case_setup_ns: f64,
}

impl Default for AccessCosts {
    fn default() -> Self {
        let mem = MemoryModel::default();
        Self {
            hash_ns: 1.0,
            on_chip_ns: mem.on_chip_ns,
            sram_ns: mem.sram_ns,
            pow_op_ns: 35.0,
            case_setup_ns: 150_000.0,
        }
    }
}

/// Mutable tally of events a scheme performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostTally {
    /// Hash evaluations.
    pub hashes: u64,
    /// On-chip accesses.
    pub on_chip: u64,
    /// Off-chip SRAM accesses.
    pub sram: u64,
    /// Power/log operations.
    pub pow_ops: u64,
    /// Number of one-time setups performed (0 or 1 normally).
    pub setups: u64,
}

impl support::json::ToJson for CostTally {
    fn to_json(&self) -> support::json::Json {
        support::json::Json::obj([
            ("hashes", self.hashes.into()),
            ("on_chip", self.on_chip.into()),
            ("sram", self.sram.into()),
            ("pow_ops", self.pow_ops.into()),
            ("setups", self.setups.into()),
        ])
    }
}

impl CostTally {
    /// Fresh empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record hash evaluations.
    #[inline]
    pub fn hash(&mut self, n: u64) {
        self.hashes += n;
    }

    /// Record on-chip accesses.
    #[inline]
    pub fn on_chip(&mut self, n: u64) {
        self.on_chip += n;
    }

    /// Record SRAM accesses.
    #[inline]
    pub fn sram(&mut self, n: u64) {
        self.sram += n;
    }

    /// Record power operations.
    #[inline]
    pub fn pow_op(&mut self, n: u64) {
        self.pow_ops += n;
    }

    /// Record a one-time setup.
    #[inline]
    pub fn setup(&mut self) {
        self.setups += 1;
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &CostTally) {
        self.hashes += other.hashes;
        self.on_chip += other.on_chip;
        self.sram += other.sram;
        self.pow_ops += other.pow_ops;
        self.setups += other.setups;
    }

    /// CAESAR's event tally for `n` packets: one flow-ID hash and one
    /// on-chip access per packet, `k` counter-index hashes per
    /// eviction, and a read-modify-write (2 accesses) per coalesced
    /// SRAM counter write.
    pub fn caesar(n: u64, evictions: u64, k: u64, sram_writes: u64) -> Self {
        let mut t = Self::new();
        t.hash(n);
        t.on_chip(n);
        t.hash(evictions * k);
        t.sram(sram_writes * 2);
        t
    }

    /// CASE's event tally: per-packet hash + cache access, a one-time
    /// compression-table setup, and per-eviction counter addressing,
    /// SRAM accesses and power operations.
    pub fn case(n: u64, evictions: u64, sram_accesses: u64, pow_ops: u64) -> Self {
        let mut t = Self::new();
        t.setup();
        t.hash(n);
        t.on_chip(n);
        t.hash(evictions);
        t.sram(sram_accesses);
        t.pow_op(pow_ops);
        t
    }

    /// RCS's event tally: flow-ID hash plus counter-choice hash per
    /// packet, and an off-chip read-modify-write per recorded packet.
    pub fn rcs(n: u64, recorded: u64) -> Self {
        let mut t = Self::new();
        t.hash(n * 2);
        t.sram(recorded * 2);
        t
    }

    /// Total processing time under the given cost constants.
    pub fn total_ns(&self, costs: &AccessCosts) -> f64 {
        self.hashes as f64 * costs.hash_ns
            + self.on_chip as f64 * costs.on_chip_ns
            + self.sram as f64 * costs.sram_ns
            + self.pow_ops as f64 * costs.pow_op_ns
            + self.setups as f64 * costs.case_setup_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_arithmetic() {
        let mut t = CostTally::new();
        t.hash(10);
        t.on_chip(10);
        t.sram(3);
        t.pow_op(2);
        let c = AccessCosts::default();
        let expect = 10.0 * 1.0 + 10.0 * 1.0 + 3.0 * 10.0 + 2.0 * 35.0;
        assert!((t.total_ns(&c) - expect).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CostTally { hashes: 1, on_chip: 2, sram: 3, pow_ops: 4, setups: 1 };
        let b = a;
        a.merge(&b);
        assert_eq!(a, CostTally { hashes: 2, on_chip: 4, sram: 6, pow_ops: 8, setups: 2 });
    }

    #[test]
    fn presets_match_manual_assembly() {
        let c = AccessCosts::default();
        let caesar = CostTally::caesar(1000, 50, 3, 120);
        let mut manual = CostTally::new();
        manual.hash(1000);
        manual.on_chip(1000);
        manual.hash(150);
        manual.sram(240);
        assert_eq!(caesar, manual);
        // RCS is 2 hashes + one RMW per packet.
        let rcs = CostTally::rcs(1000, 1000);
        assert_eq!(rcs.hashes, 2000);
        assert_eq!(rcs.sram, 2000);
        assert!(rcs.total_ns(&c) > caesar.total_ns(&c));
    }

    #[test]
    fn setup_cost_dominates_small_runs() {
        // The CASE table setup must exceed the per-packet cost of a
        // thousand-packet run — that is what makes CASE the slowest
        // scheme at the left edge of Fig. 8.
        let c = AccessCosts::default();
        let mut case = CostTally::new();
        case.setup();
        case.hash(1000);
        case.on_chip(1000);
        let mut rcs = CostTally::new();
        rcs.hash(1000);
        rcs.sram(2000); // read + write per packet
        assert!(case.total_ns(&c) > rcs.total_ns(&c));
    }
}
