//! The paper's FPGA prototype arithmetic (§6.2).
//!
//! The authors implement all three schemes on a Xilinx Virtex-7:
//! maximal design clock 18.912 MHz, a 36-bit packet-ID input bus fed
//! once per cycle, hence 18.912 MHz × 36 bit = 680.832 Mbps ingest.
//! This module reproduces that arithmetic so the Fig. 8 harness can
//! express simulated nanoseconds in prototype clock cycles and check
//! throughput claims.


/// Static description of an FPGA prototype.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaSpec {
    /// Design clock in Hz.
    pub clock_hz: f64,
    /// Input bus width in bits (one word per cycle).
    pub bus_bits: u32,
    /// Block RAM capacity in bytes.
    pub block_ram_bytes: u64,
}

impl FpgaSpec {
    /// The Virtex-7 configuration from §6.2.
    pub fn virtex7() -> Self {
        Self {
            clock_hz: 18.912e6,
            bus_bits: 36,
            block_ram_bytes: 68 * 1024 * 1024,
        }
    }

    /// One clock period in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1e9 / self.clock_hz
    }

    /// Ingest throughput in bits per second (bus width × clock).
    pub fn throughput_bps(&self) -> f64 {
        self.clock_hz * self.bus_bits as f64
    }

    /// Convert a simulated duration to whole clock cycles (rounded up).
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns / self.cycle_ns()).ceil() as u64
    }

    /// Time to ingest `n` packet IDs, one bus word per cycle.
    pub fn ingest_time_ns(&self, n: u64) -> f64 {
        n as f64 * self.cycle_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtex7_throughput_matches_paper() {
        let f = FpgaSpec::virtex7();
        // §6.2: "it supports streams up to 680.832 Mbps".
        assert!((f.throughput_bps() - 680.832e6).abs() < 1.0);
    }

    #[test]
    fn cycle_time_is_about_53ns() {
        let f = FpgaSpec::virtex7();
        assert!((f.cycle_ns() - 52.876).abs() < 0.01);
    }

    #[test]
    fn cycles_round_up() {
        let f = FpgaSpec::virtex7();
        assert_eq!(f.ns_to_cycles(0.0), 0);
        assert_eq!(f.ns_to_cycles(1.0), 1);
        assert_eq!(f.ns_to_cycles(f.cycle_ns() * 2.5), 3);
    }

    #[test]
    fn ingest_scales_linearly() {
        let f = FpgaSpec::virtex7();
        assert!((f.ingest_time_ns(1000) - 1000.0 * f.cycle_ns()).abs() < 1e-6);
    }
}
