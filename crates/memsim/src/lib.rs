//! # memsim — memory-hierarchy timing, ingress queueing and loss
//!
//! The paper's architecture argument is about *speed*: on-chip memory
//! answers in 1 ns, off-chip QDR SRAM in 3–10 ns, DRAM in 40 ns (§1.1).
//! A cache-free scheme like RCS must touch off-chip SRAM on **every**
//! packet, so at line rate its ingress queue overflows and it drops
//! packets — the paper uses the resulting "empirical" loss rates of 2/3
//! (SRAM 3× slower than arrivals) and 9/10 (10× slower) for Fig. 7, and
//! measures processing time on an FPGA for Fig. 8.
//!
//! This crate is the substitute for that FPGA testbed:
//!
//! * [`tech`] — access-latency constants and the [`tech::Technology`] enum;
//! * [`queue`] — a deterministic D/D/1/B ingress queue: given arrival
//!   spacing, service time, and buffer capacity it yields the loss rate
//!   and makespan (the 2/3 and 9/10 rates *emerge* from the latencies);
//! * [`cost`] — per-scheme access tallies → nanoseconds (Fig. 8);
//! * [`fpga`] — the Virtex-7 prototype's clock/bus arithmetic (§6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod fpga;
pub mod pipeline;
pub mod queue;
pub mod tech;

pub use cost::{AccessCosts, CostTally};
pub use pipeline::{PacketWork, Pipeline, PipelineReport};
pub use queue::{IngressQueue, QueueReport, QueueState};
pub use tech::{MemoryModel, Technology};
