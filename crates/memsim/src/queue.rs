//! Deterministic D/D/1/B ingress queue.
//!
//! Packets arrive with fixed spacing `arrival_ns` (line rate); the
//! measurement engine serves them FIFO, one every `service_ns`; at most
//! `capacity` packets can wait. When the buffer is full an arriving
//! packet is dropped — exactly how a cache-free scheme like RCS loses
//! packets when its per-packet off-chip access cannot keep up (§6.3.3).
//!
//! With `service_ns = r · arrival_ns`, the steady-state loss converges
//! to `1 − 1/r` independent of the buffer size: SRAM 3× slower than the
//! line gives the paper's 2/3, 10× gives 9/10.


/// Queue configuration.
#[derive(Debug, Clone, Copy)]
pub struct IngressQueue {
    /// Inter-arrival spacing (ns).
    pub arrival_ns: f64,
    /// Per-packet service time (ns).
    pub service_ns: f64,
    /// Buffer capacity (packets waiting or in service).
    pub capacity: usize,
}

/// Outcome of pushing a packet stream through the queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueReport {
    /// Packets offered.
    pub offered: u64,
    /// Packets accepted (served or still in the buffer at the end).
    pub accepted: u64,
    /// Packets dropped on arrival.
    pub dropped: u64,
    /// Time at which the last accepted packet finishes service (ns).
    pub makespan_ns: f64,
}

impl QueueReport {
    /// Fraction of offered packets that were dropped.
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }
}

impl support::json::ToJson for QueueReport {
    fn to_json(&self) -> support::json::Json {
        support::json::Json::obj([
            ("offered", self.offered.into()),
            ("accepted", self.accepted.into()),
            ("dropped", self.dropped.into()),
            ("makespan_ns", self.makespan_ns.into()),
            ("loss_rate", self.loss_rate().into()),
        ])
    }
}

impl IngressQueue {
    /// Begin a packet-by-packet simulation (used by schemes that must
    /// decide acceptance per arrival, e.g. lossy RCS).
    pub fn start(&self) -> QueueState {
        assert!(self.arrival_ns > 0.0, "arrival spacing must be positive");
        assert!(self.service_ns > 0.0, "service time must be positive");
        assert!(self.capacity > 0, "buffer capacity must be positive");
        QueueState {
            queue: *self,
            arrivals: 0,
            accepted: 0,
            dropped: 0,
            horizon: 0.0,
        }
    }

    /// Simulate `n` back-to-back arrivals.
    ///
    /// The simulation is O(n) time, O(1) space: with deterministic
    /// arrivals and service, the buffer occupancy at an arrival instant
    /// is derived from the server's backlog horizon.
    ///
    /// # Panics
    /// Panics if any timing parameter is non-positive or the capacity
    /// is zero.
    pub fn simulate(&self, n: u64) -> QueueReport {
        let mut st = self.start();
        for _ in 0..n {
            st.offer();
        }
        st.report()
    }
}

/// Incremental queue simulation: call [`QueueState::offer`] once per
/// arriving packet and learn immediately whether it was accepted.
#[derive(Debug, Clone, Copy)]
pub struct QueueState {
    queue: IngressQueue,
    arrivals: u64,
    accepted: u64,
    dropped: u64,
    /// Time at which the server finishes everything accepted so far.
    horizon: f64,
}

impl QueueState {
    /// Offer the next packet (arriving `arrival_ns` after the previous
    /// one). Returns `true` if the packet was accepted.
    pub fn offer(&mut self) -> bool {
        let t = self.arrivals as f64 * self.queue.arrival_ns;
        self.arrivals += 1;
        // Packets still in the system when this one arrives.
        let in_system = if self.horizon > t {
            ((self.horizon - t) / self.queue.service_ns).ceil() as usize
        } else {
            0
        };
        if in_system >= self.queue.capacity {
            self.dropped += 1;
            false
        } else {
            self.accepted += 1;
            self.horizon = self.horizon.max(t) + self.queue.service_ns;
            true
        }
    }

    /// Report of everything offered so far.
    pub fn report(&self) -> QueueReport {
        QueueReport {
            offered: self.arrivals,
            accepted: self.accepted,
            dropped: self.dropped,
            makespan_ns: self.horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underload_accepts_everything() {
        let q = IngressQueue { arrival_ns: 10.0, service_ns: 1.0, capacity: 4 };
        let r = q.simulate(1000);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.accepted, 1000);
        // Last arrival at 9990, service done 1 ns later.
        assert!((r.makespan_ns - 9991.0).abs() < 1e-9);
    }

    #[test]
    fn loss_two_thirds_with_3x_slower_service() {
        let q = IngressQueue { arrival_ns: 1.0, service_ns: 3.0, capacity: 64 };
        let r = q.simulate(3_000_000);
        assert!((r.loss_rate() - 2.0 / 3.0).abs() < 1e-3, "loss = {}", r.loss_rate());
    }

    #[test]
    fn loss_nine_tenths_with_10x_slower_service() {
        let q = IngressQueue { arrival_ns: 1.0, service_ns: 10.0, capacity: 64 };
        let r = q.simulate(3_000_000);
        assert!((r.loss_rate() - 0.9).abs() < 1e-3, "loss = {}", r.loss_rate());
    }

    #[test]
    fn loss_rate_independent_of_buffer_size() {
        for cap in [1usize, 8, 1024] {
            let q = IngressQueue { arrival_ns: 1.0, service_ns: 4.0, capacity: cap };
            let r = q.simulate(1_000_000);
            assert!(
                (r.loss_rate() - 0.75).abs() < 1e-2,
                "cap {cap}: loss = {}",
                r.loss_rate()
            );
        }
    }

    #[test]
    fn critically_loaded_queue_keeps_up() {
        let q = IngressQueue { arrival_ns: 2.0, service_ns: 2.0, capacity: 2 };
        let r = q.simulate(100_000);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn makespan_scales_with_service_under_overload() {
        let q = IngressQueue { arrival_ns: 1.0, service_ns: 5.0, capacity: 16 };
        let n = 100_000u64;
        let r = q.simulate(n);
        // Server is always busy: makespan ≈ accepted * service.
        assert!((r.makespan_ns - r.accepted as f64 * 5.0).abs() / r.makespan_ns < 1e-3);
    }

    #[test]
    fn conservation() {
        let q = IngressQueue { arrival_ns: 1.0, service_ns: 2.5, capacity: 7 };
        let r = q.simulate(12345);
        assert_eq!(r.accepted + r.dropped, r.offered);
    }

    #[test]
    fn zero_packets() {
        let q = IngressQueue { arrival_ns: 1.0, service_ns: 1.0, capacity: 1 };
        let r = q.simulate(0);
        assert_eq!(r.offered, 0);
        assert_eq!(r.loss_rate(), 0.0);
        assert_eq!(r.makespan_ns, 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        IngressQueue { arrival_ns: 1.0, service_ns: 1.0, capacity: 0 }.simulate(1);
    }
}
