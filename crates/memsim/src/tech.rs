//! Memory technologies and their access latencies.
//!
//! All numbers come from the paper's §1.1: "the average access time of
//! slow DRAM is 40 ns, while that of expensive SRAM (e.g., QDRII+SRAM)
//! is 3–10 ns ... on-chip fast memory with just 1 ns for once access".


/// A memory technology in the measurement data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// On-chip cache RAM (1 ns).
    OnChip,
    /// Fast off-chip QDRII+ SRAM (3 ns) — the optimistic end of §1.1.
    SramFast,
    /// Off-chip SRAM, pessimistic end (10 ns).
    Sram,
    /// Commodity DRAM (40 ns).
    Dram,
}

impl Technology {
    /// Access latency in nanoseconds.
    pub const fn access_ns(self) -> f64 {
        match self {
            Technology::OnChip => 1.0,
            Technology::SramFast => 3.0,
            Technology::Sram => 10.0,
            Technology::Dram => 40.0,
        }
    }

    /// Sustainable random-access rate in accesses/second.
    pub fn access_rate(self) -> f64 {
        1e9 / self.access_ns()
    }
}

/// A configurable latency model, defaulting to the paper's numbers but
/// overridable for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// On-chip access latency (ns).
    pub on_chip_ns: f64,
    /// Off-chip SRAM access latency (ns).
    pub sram_ns: f64,
    /// DRAM access latency (ns).
    pub dram_ns: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        Self {
            on_chip_ns: Technology::OnChip.access_ns(),
            sram_ns: Technology::Sram.access_ns(),
            dram_ns: Technology::Dram.access_ns(),
        }
    }
}

impl MemoryModel {
    /// Model with the fast (3 ns) SRAM figure.
    pub fn fast_sram() -> Self {
        Self {
            sram_ns: Technology::SramFast.access_ns(),
            ..Self::default()
        }
    }

    /// The paper's "empirical speed difference" ratio between off-chip
    /// SRAM and the on-chip cache — 3 or 10 — which directly becomes
    /// RCS's loss rate `1 − 1/ratio` (2/3 or 9/10, §6.3.3).
    pub fn sram_slowdown(&self) -> f64 {
        self.sram_ns / self.on_chip_ns
    }

    /// Predicted steady-state loss of a cache-free scheme whose every
    /// packet costs one SRAM access, with arrivals at on-chip speed.
    pub fn cache_free_loss_rate(&self) -> f64 {
        1.0 - 1.0 / self.sram_slowdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_paper() {
        assert_eq!(Technology::OnChip.access_ns(), 1.0);
        assert_eq!(Technology::SramFast.access_ns(), 3.0);
        assert_eq!(Technology::Sram.access_ns(), 10.0);
        assert_eq!(Technology::Dram.access_ns(), 40.0);
    }

    #[test]
    fn loss_rates_match_paper_figures() {
        // Fig. 7 uses loss 2/3 (SRAM 3 ns) and 9/10 (SRAM 10 ns).
        let fast = MemoryModel::fast_sram();
        assert!((fast.cache_free_loss_rate() - 2.0 / 3.0).abs() < 1e-12);
        let slow = MemoryModel::default();
        assert!((slow.cache_free_loss_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn access_rate_is_inverse_latency() {
        assert!((Technology::Sram.access_rate() - 1e8).abs() < 1.0);
    }
}
