//! Property tests: queue and pipeline invariants, on the deterministic
//! `support::testkit` harness.

use memsim::{IngressQueue, PacketWork, Pipeline};
use support::rand::Rng;
use support::testkit::{for_each_seed, for_each_seed_n, GenExt};

/// D/D/1/B conservation and the loss law: with service r× slower
/// than arrivals, steady-state acceptance is 1/r.
#[test]
fn queue_loss_law() {
    // Heavier per-case work (200k offered packets); fewer cases keep
    // the suite quick while still sweeping the (ratio, capacity) grid.
    for_each_seed_n(32, |rng| {
        let ratio = rng.gen_range(1u32..20);
        let capacity = rng.gen_range(1usize..64);
        let q = IngressQueue {
            arrival_ns: 1.0,
            service_ns: ratio as f64,
            capacity,
        };
        let n = 200_000u64;
        let r = q.simulate(n);
        assert_eq!(r.accepted + r.dropped, n);
        let predicted = 1.0 - 1.0 / ratio as f64;
        assert!(
            (r.loss_rate() - predicted).abs() < 0.01,
            "ratio {}: loss {} vs predicted {}",
            ratio,
            r.loss_rate(),
            predicted
        );
    });
}

/// Incremental offers match the batch simulation exactly.
#[test]
fn queue_state_matches_batch() {
    for_each_seed(|rng| {
        let n = rng.gen_range(0u64..5_000);
        let arrival = rng.gen_range(1u32..10);
        let service = rng.gen_range(1u32..30);
        let capacity = rng.gen_range(1usize..32);
        let q = IngressQueue {
            arrival_ns: arrival as f64,
            service_ns: service as f64,
            capacity,
        };
        let batch = q.simulate(n);
        let mut st = q.start();
        for _ in 0..n {
            st.offer();
        }
        assert_eq!(st.report(), batch);
    });
}

/// The pipeline makespan is bounded below by both the arrival span
/// and the total port work, and above by their serialized sum plus
/// compute.
#[test]
fn pipeline_makespan_bounds() {
    for_each_seed(|rng| {
        let work =
            rng.vec_with(1..1000, |r| (r.gen_range(0u32..4), r.gen_range(0u32..50)));
        let arrival = rng.gen_range(1u32..8);
        let p = Pipeline {
            arrival_ns: arrival as f64,
            ..Pipeline::default()
        };
        let items: Vec<PacketWork> = work
            .iter()
            .map(|&(wb, comp)| PacketWork { writebacks: wb, compute_ns: comp as f64 })
            .collect();
        let r = p.run(items.iter().copied());
        let n = items.len() as f64;
        let port_work: f64 = items.iter().map(|w| w.writebacks as f64 * p.sram_ns).sum();
        let compute: f64 = items.iter().map(|w| w.compute_ns).sum();
        let front_work = n * p.front_ns + compute;
        let lower = ((n - 1.0) * p.arrival_ns + p.front_ns)
            .max(port_work)
            .max(0.0);
        let upper = (n - 1.0) * p.arrival_ns + front_work + port_work + p.front_ns;
        assert!(r.makespan_ns >= lower - 1e-6, "{} < {}", r.makespan_ns, lower);
        assert!(r.makespan_ns <= upper + 1e-6, "{} > {}", r.makespan_ns, upper);
        assert_eq!(r.writebacks, items.iter().map(|w| w.writebacks as u64).sum::<u64>());
    });
}

/// Adding writebacks to a stream never makes it finish earlier.
#[test]
fn pipeline_monotone_in_work() {
    for_each_seed(|rng| {
        let base = rng.vec_with(1..300, |r| r.gen_range(0u32..2));
        let bump_at = rng.gen_range(0usize..300);
        let p = Pipeline::default();
        let items: Vec<PacketWork> = base
            .iter()
            .map(|&wb| PacketWork { writebacks: wb, compute_ns: 0.0 })
            .collect();
        let mut heavier = items.clone();
        let at = bump_at % heavier.len();
        heavier[at].writebacks += 2;
        let a = p.run(items.iter().copied());
        let b = p.run(heavier.iter().copied());
        assert!(b.makespan_ns >= a.makespan_ns - 1e-9);
    });
}
