//! Umbrella crate for the CAESAR reproduction workspace.
//!
//! Re-exports the public API of every member crate so that examples and
//! downstream users can depend on a single package:
//!
//! ```
//! use caesar_repro::prelude::*;
//! let cfg = CaesarConfig::default();
//! assert!(cfg.k >= 1);
//! ```

pub use baselines;
pub use cachesim;
pub use caesar;
pub use experiments;
pub use flowtrace;
pub use hashkit;
pub use memsim;
pub use metrics;
pub use service;

/// One-stop imports for the most common types.
pub mod prelude {
    pub use baselines::{case::Case, case::CaseConfig, rcs::Rcs, rcs::RcsConfig};
    pub use cachesim::{CachePolicy, CacheTable};
    pub use caesar::{Caesar, CaesarConfig, ConcurrentCaesar, Estimator, SketchPayload};
    pub use flowtrace::{
        synth::{ArrivalOrder, SynthConfig, TraceGenerator},
        ExactCounter, FiveTuple, FlowId, Packet, Trace,
    };
    pub use memsim::{MemoryModel, Technology};
    pub use metrics::{AccuracyReport, RelativeError};
}
