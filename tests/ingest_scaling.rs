//! Ingest-**scaling** equivalence suite (PR 4): the lock-free
//! ring-based stream build must be a pure transport change.
//!
//! Over randomized `(cfg, workload)` cases the suite pins, at 1/2/4
//! shards:
//!
//! * ring-fed stream build ≡ `build_replay` ≡ `build` — byte-for-byte
//!   counter snapshots, for **every** ring capacity tried (including
//!   capacity 1, where every chunk hand-off rides full-ring
//!   backpressure);
//! * at one shard, all of the above ≡ the sequential `Caesar` oracle
//!   byte-for-byte (shard 0 runs the sequential seeds, so the whole
//!   concurrent family is anchored to the paper's reference sketch);
//! * the empty-shard edges (shards > distinct flows, shards > trace
//!   length, empty trace) terminate and conserve counts.

use caesar::{BuildMode, CaesarConfig, ConcurrentCaesar, DEFAULT_RING_CAPACITY};
use caesar_repro::prelude::*;
use cachesim::CachePolicy;
use support::rand::{rngs::StdRng, Rng};
use support::testkit::{for_each_seed_n, GenExt};

/// Each case spins up `shards` threads several times over; keep the
/// case count modest (the workload/geometry randomization covers the
/// space jointly).
const CASES: u32 = 12;

fn random_cfg(rng: &mut StdRng) -> CaesarConfig {
    let counters = rng.gen_range(64usize..2048);
    CaesarConfig {
        cache_entries: rng.gen_range(1usize..160),
        entry_capacity: rng.gen_range(2u64..40),
        policy: rng.pick(&[CachePolicy::Lru, CachePolicy::Random, CachePolicy::Fifo]),
        counters,
        k: rng.gen_range(1usize..6).min(counters),
        counter_bits: rng.pick(&[4u32, 8, 16, 32]),
        seed: rng.gen(),
        ..CaesarConfig::default()
    }
}

fn random_workload(rng: &mut StdRng) -> Vec<u64> {
    let population = rng.gen_range(1u64..80);
    rng.vec_with(0..3000, |r| {
        if r.gen_bool(0.8) {
            hashkit::mix::mix64(r.gen_range(0..population))
        } else {
            r.gen()
        }
    })
}

#[test]
fn ring_stream_matches_replay_and_build_at_1_2_4_shards() {
    for_each_seed_n(CASES, |rng| {
        let cfg = random_cfg(rng);
        let flows = random_workload(rng);
        for shards in [1usize, 2, 4] {
            let replay = ConcurrentCaesar::build_replay(cfg, shards, &flows);
            let build = ConcurrentCaesar::build(cfg, shards, &flows);
            assert_eq!(
                build.sram().snapshot(),
                replay.sram().snapshot(),
                "build vs replay: {cfg:?} shards={shards}"
            );
            // Ring capacities: the degenerate ping-pong (1), a couple
            // of mid-sizes that wrap many times, and the default.
            for cap in [1usize, rng.gen_range(2..64), 256, DEFAULT_RING_CAPACITY] {
                let stream = ConcurrentCaesar::build_stream_with_ring(
                    cfg,
                    shards,
                    flows.iter().copied(),
                    cap,
                );
                assert_eq!(
                    stream.sram().snapshot(),
                    replay.sram().snapshot(),
                    "stream(cap={cap}) vs replay: {cfg:?} shards={shards}"
                );
                assert_eq!(stream.evictions(), replay.evictions(), "cap={cap}");
                assert_eq!(
                    stream.sram().total_added(),
                    replay.sram().total_added(),
                    "cap={cap}"
                );
                // Transport must not leak into the ingest statistics
                // either: same staging, same coalescing, same merges.
                assert_eq!(stream.ingest_stats(), build.ingest_stats(), "cap={cap}");
            }
        }
    });
}

#[test]
fn one_shard_ring_stream_matches_sequential_oracle() {
    for_each_seed_n(CASES, |rng| {
        let cfg = random_cfg(rng);
        let flows = random_workload(rng);
        let mut seq = Caesar::new(cfg);
        for &f in &flows {
            seq.record(f);
        }
        seq.finish();
        for cap in [1usize, 17, DEFAULT_RING_CAPACITY] {
            let stream =
                ConcurrentCaesar::build_stream_with_ring(cfg, 1, flows.iter().copied(), cap);
            assert_eq!(
                stream.sram().snapshot(),
                seq.sram().as_slice(),
                "cap={cap}: {cfg:?}"
            );
            assert_eq!(stream.evictions(), seq.stats().evictions, "cap={cap}");
        }
    });
}

#[test]
fn capacity_one_full_backpressure_conserves_large_workload() {
    // A workload much larger than shards × capacity: every single chunk
    // hand-off exercises the full-ring backpressure path, across
    // several policies and shard counts.
    let cfg = CaesarConfig {
        cache_entries: 64,
        entry_capacity: 8,
        counters: 1024,
        k: 3,
        ..CaesarConfig::default()
    };
    let flows: Vec<u64> = (0..40_000u64).map(|i| hashkit::mix::mix64(i % 500)).collect();
    for shards in [2usize, 4] {
        let reference = ConcurrentCaesar::build(cfg, shards, &flows);
        let squeezed =
            ConcurrentCaesar::build_stream_with_ring(cfg, shards, flows.iter().copied(), 1);
        assert_eq!(squeezed.sram().total_added() as usize, flows.len());
        assert_eq!(
            squeezed.sram().snapshot(),
            reference.sram().snapshot(),
            "shards={shards}"
        );
    }
}

#[test]
fn empty_shard_edges_terminate_and_conserve() {
    let cfg = CaesarConfig {
        cache_entries: 32,
        entry_capacity: 8,
        counters: 512,
        k: 3,
        ..CaesarConfig::default()
    };
    // Shards ≫ distinct flows: most rings never see an item.
    let tiny: Vec<u64> = (0..5u64).map(hashkit::mix::mix64).collect();
    for mode in [BuildMode::Threaded, BuildMode::Inline, BuildMode::Pinned] {
        let c = ConcurrentCaesar::build_with_mode(cfg, 16, &tiny, mode);
        assert_eq!(c.sram().total_added(), 5, "{mode:?}");
    }
    let stream = ConcurrentCaesar::build_stream_with_ring(cfg, 16, tiny.iter().copied(), 1);
    assert_eq!(stream.sram().total_added(), 5);
    // Shards > trace length and the empty trace.
    let one = [hashkit::mix::mix64(9)];
    let c = ConcurrentCaesar::build_stream(cfg, 8, one.iter().copied());
    assert_eq!(c.sram().total_added(), 1);
    let empty = ConcurrentCaesar::build_stream_with_ring(cfg, 8, std::iter::empty(), 1);
    assert_eq!(empty.sram().total_added(), 0);
    assert_eq!(empty.evictions(), 0);
}
