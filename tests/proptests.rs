//! Property-based tests over the core invariants, spanning crates,
//! on the deterministic `support::testkit` harness.

use caesar::update::spread_eviction;
use caesar::CounterArray;
use caesar_repro::prelude::*;
use flowtrace::binfmt;
use hashkit::sha1::Sha1;
use hashkit::KCounterMap;
use memsim::IngressQueue;
use support::rand::{rngs::StdRng, Rng, SeedableRng};
use support::testkit::{for_each_seed, for_each_seed_n, GenExt};

/// CAESAR never loses or invents a packet: for any packet stream
/// and any (valid) geometry, the SRAM total equals the stream
/// length after finish().
#[test]
fn caesar_conserves_packets() {
    for_each_seed(|rng| {
        let flows = rng.vec_with(1..2000, |r| r.gen_range(0u64..200));
        let entries = rng.gen_range(1usize..64);
        let capacity = rng.gen_range(2u64..40);
        let counters = rng.gen_range(3usize..512);
        let seed: u64 = rng.gen();
        let mut c = Caesar::new(CaesarConfig {
            cache_entries: entries,
            entry_capacity: capacity,
            counters,
            k: 3,
            seed,
            ..CaesarConfig::default()
        });
        for &f in &flows {
            c.record(f);
        }
        c.finish();
        assert_eq!(c.sram().total_added() as usize, flows.len());
        assert_eq!(c.sram().sum() as usize, flows.len());
    });
}

/// The split-k update conserves any eviction value over any set of
/// distinct counter indices.
#[test]
fn spread_conserves() {
    for_each_seed(|rng| {
        let value = rng.gen_range(0u64..100_000);
        let k = rng.gen_range(1usize..16);
        let seed: u64 = rng.gen();
        let mut sram = CounterArray::new(64, 40);
        let indices: Vec<usize> = (0..k).map(|i| i * 3).collect();
        let mut rng2 = StdRng::seed_from_u64(seed);
        spread_eviction(&mut sram, &indices, value, &mut rng2);
        assert_eq!(sram.sum(), value);
        // Aliquot floor: every mapped counter got at least value/k.
        for &i in &indices {
            assert!(sram.get(i) >= value / k as u64);
        }
    });
}

/// KCounterMap always yields k distinct in-range indices,
/// deterministically.
#[test]
fn kmap_distinct_indices() {
    for_each_seed(|rng| {
        let k = rng.gen_range(1usize..8);
        let l_extra = rng.gen_range(0usize..100);
        let flow: u64 = rng.gen();
        let seed: u64 = rng.gen();
        let l = k + l_extra + 1;
        let map = KCounterMap::new(k, l, seed);
        let a = map.indices(flow);
        assert_eq!(a.len(), k);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k);
        assert!(a.iter().all(|&i| i < l));
        assert_eq!(a, map.indices(flow));
    });
}

/// The ingress queue conserves packets and never reports loss
/// when service keeps up with arrivals.
#[test]
fn queue_conservation() {
    for_each_seed(|rng| {
        let n = rng.gen_range(0u64..50_000);
        let arrival = rng.gen_range(1u32..50);
        let service = rng.gen_range(1u32..50);
        let capacity = rng.gen_range(1usize..128);
        let q = IngressQueue {
            arrival_ns: arrival as f64,
            service_ns: service as f64,
            capacity,
        };
        let r = q.simulate(n);
        assert_eq!(r.accepted + r.dropped, n);
        if service <= arrival {
            assert_eq!(r.dropped, 0);
        }
        assert!(
            r.makespan_ns
                <= n as f64 * arrival as f64 + service as f64 * (capacity as f64 + 1.0)
        );
    });
}

/// Binary trace format round-trips arbitrary traces.
#[test]
fn binfmt_roundtrip() {
    for_each_seed(|rng| {
        let packets =
            rng.vec_with(0..500, |r| (r.gen::<u64>(), r.gen::<u32>()));
        let num_flows = rng.gen_range(0usize..1000);
        let trace = Trace {
            packets: packets
                .iter()
                .map(|&(flow, byte_len)| Packet { flow, byte_len })
                .collect(),
            num_flows,
        };
        let decoded = binfmt::decode(&binfmt::encode(&trace)).expect("roundtrip");
        assert_eq!(decoded.packets, trace.packets);
        assert_eq!(decoded.num_flows, trace.num_flows);
    });
}

/// SHA-1 streaming equals one-shot for arbitrary data and chunking.
#[test]
fn sha1_streaming_equivalence() {
    for_each_seed(|rng| {
        let data = rng.bytes(0..600);
        let chunk = rng.gen_range(1usize..70);
        let mut h = Sha1::new();
        for piece in data.chunks(chunk) {
            h.update(piece);
        }
        assert_eq!(h.finalize(), Sha1::digest(&data));
    });
}

/// Every zoo family is a pure function of its seed (byte-identical
/// traces via the binary codec) and conserves packets exactly (the
/// ground truth sums to the packet count) — for arbitrary seeds, not
/// just the blessed `ZOO_SEED`.
#[test]
fn zoo_conserves_packets() {
    let zoo = flowtrace::zoo::standard_zoo(96).expect("standard zoo params are valid");
    for_each_seed_n(6, |rng| {
        let seed: u64 = rng.gen();
        for w in &zoo {
            let (trace, truth) = w.generate(seed);
            assert_eq!(
                truth.values().sum::<u64>() as usize,
                trace.num_packets(),
                "{}: truth must sum to packet count",
                w.name()
            );
            assert_eq!(truth.len(), trace.num_flows, "{}", w.name());
            let again = w.generate(seed).0;
            assert_eq!(
                binfmt::encode(&trace),
                binfmt::encode(&again),
                "{}: same seed must give byte-identical traces",
                w.name()
            );
        }
    });
}

/// CSM is exact when a single flow owns the whole array (noise
/// subtraction removes exactly the flow's own mass share).
#[test]
fn single_flow_csm_is_near_exact() {
    for_each_seed(|rng| {
        let x = rng.gen_range(1u64..5_000);
        let seed: u64 = rng.gen();
        let mut c = Caesar::new(CaesarConfig {
            cache_entries: 4,
            entry_capacity: 16,
            counters: 4096,
            k: 3,
            seed,
            ..CaesarConfig::default()
        });
        for _ in 0..x {
            c.record(42);
        }
        c.finish();
        let est = c.query(42);
        // The only inaccuracy is subtracting the flow's own k·x/L noise
        // share: bounded by k·x/L + 1.
        let slack = 3.0 * x as f64 / 4096.0 + 1.0;
        assert!((est - x as f64).abs() <= slack, "x={x} est={est}");
    });
}
