//! Cross-crate integration: the full measurement pipeline, all three
//! schemes side by side on one trace.

use caesar_repro::prelude::*;
use baselines::case::CaseConfig;
use baselines::rcs::RcsConfig;
use baselines::LossModel;
use std::collections::HashMap;

fn small_trace() -> (Trace, HashMap<FlowId, u64>) {
    TraceGenerator::new(SynthConfig {
        num_flows: 5_000,
        seed: 0xE2E,
        ..SynthConfig::default()
    })
    .generate()
}

fn are_over(pairs: &[(u64, f64)], min: u64) -> f64 {
    let sel: Vec<_> = pairs.iter().filter(|&&(x, _)| x >= min).collect();
    sel.iter()
        .map(|&&(x, e)| (e - x as f64).abs() / x as f64)
        .sum::<f64>()
        / sel.len().max(1) as f64
}

#[test]
fn all_three_schemes_conserve_and_rank_as_in_paper() {
    let (trace, truth) = small_trace();
    let y = trace.recommended_entry_capacity();

    // CAESAR.
    let mut caesar = Caesar::new(CaesarConfig {
        cache_entries: 1024,
        entry_capacity: y,
        counters: 4096,
        k: 3,
        ..CaesarConfig::default()
    });
    for p in &trace.packets {
        caesar.record(p.flow);
    }
    caesar.finish();
    // Conservation: every packet landed in SRAM exactly once.
    assert_eq!(caesar.sram().total_added() as usize, trace.num_packets());

    // RCS with the 2/3-loss ingress queue.
    let mut rcs = Rcs::new(RcsConfig {
        counters: 4096,
        k: 3,
        loss: LossModel::Uniform(2.0 / 3.0),
        seed: 5,
    });
    for p in &trace.packets {
        rcs.record(p.flow);
    }
    let loss = rcs.stats().loss_rate();
    assert!((loss - 2.0 / 3.0).abs() < 0.01, "loss = {loss}");

    // CASE at a starved budget (1 bit per flow).
    let mut case = Case::new(CaseConfig {
        counters: truth.len(),
        counter_bits: 1,
        max_expected_flow: trace.num_packets() as f64,
        cache_entries: 1024,
        entry_capacity: y,
        ..CaseConfig::default()
    });
    for p in &trace.packets {
        case.record(p.flow);
    }
    case.finish();

    // Score everything on large flows, where the paper's ordering is
    // defined (see EXPERIMENTS.md on the sharing-noise floor).
    let score = |f: &dyn Fn(u64) -> f64| -> Vec<(u64, f64)> {
        truth.iter().map(|(&fl, &x)| (x, f(fl))).collect()
    };
    let caesar_pairs = score(&|fl| caesar.query(fl));
    let rcs_pairs = score(&|fl| rcs.query(fl));
    let case_pairs = score(&|fl| case.query(fl));

    let min = 1000;
    let (a, r, c) = (
        are_over(&caesar_pairs, min),
        are_over(&rcs_pairs, min),
        are_over(&case_pairs, min),
    );
    assert!(a < r, "CAESAR {a} must beat lossy RCS {r}");
    assert!(a < c, "CAESAR {a} must beat starved CASE {c}");
    assert!((r - 2.0 / 3.0).abs() < 0.15, "lossy RCS ARE {r} ≈ loss rate");
    assert!(c > 0.9, "starved CASE ARE {c} ≈ 100%");
}

#[test]
fn caesar_equals_rcs_with_unit_cache_in_spirit() {
    // Fig. 6's argument: the cache stage adds no accuracy cost. Compare
    // CAESAR against lossless RCS with identical SRAM geometry.
    let (trace, truth) = small_trace();
    let mut caesar = Caesar::new(CaesarConfig {
        cache_entries: 512,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 2048,
        k: 3,
        ..CaesarConfig::default()
    });
    let mut rcs = Rcs::new(RcsConfig {
        counters: 2048,
        k: 3,
        loss: LossModel::Lossless,
        seed: 9,
    });
    for p in &trace.packets {
        caesar.record(p.flow);
        rcs.record(p.flow);
    }
    caesar.finish();

    let pairs_caesar: Vec<(u64, f64)> =
        truth.iter().map(|(&f, &x)| (x, caesar.query(f))).collect();
    let pairs_rcs: Vec<(u64, f64)> = truth.iter().map(|(&f, &x)| (x, rcs.query(f))).collect();
    let (a, r) = (are_over(&pairs_caesar, 500), are_over(&pairs_rcs, 500));
    assert!(
        (a - r).abs() < 0.2 || a < r,
        "CAESAR {a} and lossless RCS {r} should be comparable"
    );
}

#[test]
fn byte_mode_distribution_resembles_packet_mode() {
    // §3.1: "the flow size and flow volume have almost the same
    // distribution, except for the magnitude."
    let (trace, _) = small_trace();
    let counter = ExactCounter::from_trace(&trace);
    let sizes: Vec<u64> = counter.iter().map(|(_, s)| s).collect();
    let volumes: Vec<u64> = counter.iter().map(|(f, _)| counter.volume(f)).collect();
    let st_s = flowtrace::stats::FlowStats::from_sizes(&sizes);
    let st_v = flowtrace::stats::FlowStats::from_sizes(&volumes);
    // Same tail shape: both > 90% below their own means.
    assert!(st_s.frac_below_mean > 0.9);
    assert!(st_v.frac_below_mean > 0.85);
    // Magnitude differs by roughly the mean packet length.
    let ratio = st_v.mean / st_s.mean;
    assert!((64.0..1500.0).contains(&ratio), "bytes/packet = {ratio}");
}
