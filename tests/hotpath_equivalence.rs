//! Equivalence suite for the PR-3 zero-alloc hot path.
//!
//! Three independently checked invariants:
//!
//! 1. the allocation-free k-map APIs (`fill_indices`, `indices_iter`)
//!    return exactly the indices of the allocating `indices()` API for
//!    10k random flows across random `(k, L, seed)` geometries — the
//!    foundation of the slot-memoization argument (memo rows are
//!    written with `fill_indices` at insert time and consumed at
//!    eviction time; indices are a pure function of the flow);
//! 2. the prefetching `record_batch` ingest produces a **byte-identical
//!    recorded sketch** to one-at-a-time `record` (same SRAM words,
//!    same eviction/write counts, same estimates);
//! 3. the chunk-parallel batch query engine is **bit-identical** to the
//!    sequential per-flow estimators for CSM and MLM at 1, 2 and 4
//!    threads, for both the sequential and the concurrent sketch.

use caesar::{Caesar, CaesarConfig, ConcurrentCaesar, Estimator};
use caesar_repro::prelude::*;
use hashkit::{KCounterMap, K_MAX};
use support::rand::{rngs::StdRng, Rng};
use support::testkit::{for_each_seed_n, GenExt};

fn random_cfg(rng: &mut StdRng) -> CaesarConfig {
    let counters = rng.gen_range(64usize..2048);
    CaesarConfig {
        cache_entries: rng.gen_range(1usize..200),
        entry_capacity: rng.gen_range(2u64..40),
        policy: rng.pick(&[CachePolicy::Lru, CachePolicy::Random, CachePolicy::Fifo]),
        counters,
        k: rng.gen_range(1usize..6).min(counters),
        counter_bits: rng.pick(&[8u32, 16, 32]),
        seed: rng.gen(),
        ..CaesarConfig::default()
    }
}

fn random_workload(rng: &mut StdRng) -> Vec<u64> {
    let population = rng.gen_range(1u64..120);
    let packets = rng.gen_range(1usize..6000);
    (0..packets)
        .map(|_| {
            // Zipf-ish skew: a few flows dominate.
            let f = rng.gen_range(0..population);
            if rng.gen_bool(0.5) {
                f % (population / 4 + 1)
            } else {
                f
            }
        })
        .collect()
}

#[test]
fn allocation_free_kmap_apis_match_alloc_api_over_random_geometries() {
    let mut checked = 0u64;
    for_each_seed_n(8, |rng| {
        let l = rng.gen_range(8usize..5000);
        let k = rng.gen_range(1usize..=8.min(l));
        let seed: u64 = rng.gen();
        let kmap = KCounterMap::new(k, l, seed);
        let mut buf = [0usize; K_MAX];
        for _ in 0..1250 {
            let flow: u64 = rng.gen();
            let reference = kmap.indices(flow);
            let filled = kmap.fill_indices(flow, &mut buf);
            assert_eq!(filled, k);
            assert_eq!(
                &buf[..k],
                &reference[..],
                "fill_indices diverged: k={k} l={l} seed={seed:#x} flow={flow:#x}"
            );
            let iterated: Vec<usize> = kmap.indices_iter(flow).collect();
            assert_eq!(
                iterated, reference,
                "indices_iter diverged: k={k} l={l} seed={seed:#x} flow={flow:#x}"
            );
            checked += 1;
        }
    });
    assert_eq!(checked, 10_000, "geometry sweep must cover 10k flows");
}

#[test]
fn record_batch_builds_byte_identical_sketch() {
    for_each_seed_n(12, |rng| {
        let cfg = random_cfg(rng);
        let workload = random_workload(rng);

        let mut one_by_one = Caesar::new(cfg);
        for &f in &workload {
            one_by_one.record(f);
        }
        one_by_one.finish();

        // Batch path, fed in randomly sized chunks (including size 1).
        let mut batched = Caesar::new(cfg);
        let mut rest = workload.as_slice();
        while !rest.is_empty() {
            let n = rng.gen_range(1usize..=rest.len().min(97));
            let (chunk, tail) = rest.split_at(n);
            batched.record_batch(chunk);
            rest = tail;
        }
        batched.finish();

        assert_eq!(
            one_by_one.sram().as_slice(),
            batched.sram().as_slice(),
            "recorded sketch must be byte-identical ({cfg:?})"
        );
        let (a, b) = (one_by_one.stats(), batched.stats());
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.sram_writes, b.sram_writes);
        for &f in workload.iter().take(32) {
            assert_eq!(
                one_by_one.query(f).to_bits(),
                batched.query(f).to_bits(),
                "query diverged for flow {f}"
            );
        }
    });
}

#[test]
fn parallel_query_bit_identical_to_sequential_caesar() {
    for_each_seed_n(6, |rng| {
        let cfg = random_cfg(rng);
        let workload = random_workload(rng);
        let mut sketch = Caesar::new(cfg);
        sketch.record_all(workload.iter().copied());
        sketch.finish();

        let mut flows: Vec<u64> = workload.clone();
        flows.dedup();
        flows.push(0xFEED_FACE); // unseen flow rides along
        for estimator in [Estimator::Csm, Estimator::Mlm] {
            let reference: Vec<_> = flows
                .iter()
                .map(|&f| sketch.estimate(f, estimator))
                .collect();
            for threads in [1usize, 2, 4] {
                let batch = sketch.estimate_all_threads(&flows, estimator, threads);
                assert_eq!(batch.len(), reference.len());
                for (i, (a, b)) in reference.iter().zip(&batch).enumerate() {
                    assert_eq!(
                        a.value.to_bits(),
                        b.value.to_bits(),
                        "{estimator:?} t={threads} flow#{i} value"
                    );
                    assert_eq!(
                        a.variance.to_bits(),
                        b.variance.to_bits(),
                        "{estimator:?} t={threads} flow#{i} variance"
                    );
                }
            }
        }
    });
}

#[test]
fn parallel_query_bit_identical_to_sequential_concurrent() {
    for_each_seed_n(4, |rng| {
        let cfg = random_cfg(rng);
        let workload = random_workload(rng);
        let shards = rng.gen_range(1usize..4);
        let sketch = ConcurrentCaesar::build(cfg, shards, &workload);

        let mut flows: Vec<u64> = workload.clone();
        flows.dedup();
        for estimator in [Estimator::Csm, Estimator::Mlm] {
            let reference: Vec<_> = flows
                .iter()
                .map(|&f| sketch.estimate(f, estimator))
                .collect();
            for threads in [1usize, 2, 4] {
                let batch = sketch.estimate_all_threads(&flows, estimator, threads);
                for (i, (a, b)) in reference.iter().zip(&batch).enumerate() {
                    assert_eq!(
                        a.value.to_bits(),
                        b.value.to_bits(),
                        "{estimator:?} t={threads} flow#{i}"
                    );
                    assert_eq!(a.variance.to_bits(), b.variance.to_bits());
                }
            }
        }
    });
}

#[test]
fn query_all_is_clamped_default_estimator() {
    let cfg = CaesarConfig {
        cache_entries: 64,
        entry_capacity: 8,
        counters: 1024,
        k: 3,
        ..CaesarConfig::default()
    };
    let mut sketch = Caesar::new(cfg);
    for f in 0..50u64 {
        for _ in 0..=f {
            sketch.record(f);
        }
    }
    sketch.finish();
    let flows: Vec<u64> = (0..60).collect();
    let batch = sketch.query_all(&flows);
    for (&f, &v) in flows.iter().zip(&batch) {
        assert_eq!(v.to_bits(), sketch.query(f).to_bits(), "flow {f}");
        assert!(v >= 0.0);
    }
}
