//! Fault-tolerance acceptance suite for the supervised online engine
//! (`caesar::online::OnlineCaesar`), property-tested with the
//! `support::testkit` harness:
//!
//! * randomized fault schedules (worker panics + ring stalls) across
//!   1/2/4 shards × random geometries must leave the engine serving
//!   queries with **exact** loss accounting:
//!   `recorded + dropped + quarantined == offered` once drained;
//! * a fault-free online run must `finish()` **bit-identical** to the
//!   batch `ConcurrentCaesar::build` over the same stream;
//! * `snapshot → restore → resume` must be byte-identical to the
//!   uninterrupted run, at every snapshot point, including after
//!   survived faults;
//! * drop-policy losses and forced saturation must surface in
//!   [`QueryHealth`] as reduced confidence, never as silent bias.

use caesar::{
    BackpressurePolicy, CaesarConfig, ConcurrentCaesar, FaultKind, OnlineCaesar,
    ThreadedCaesar,
};
use cachesim::CachePolicy;
use support::rand::{rngs::StdRng, Rng};
use support::testkit::{
    for_each_seed_n, FaultEvent, FaultInjector, FaultSite, GenExt, INJECTED_PANIC,
};

/// Supervised-stream cases are costlier than unit properties; each
/// case jointly covers cfg × shards × workload × fault schedule.
const CASES: u32 = 18;

/// Thread-chaos cases pay real wall-clock per injected hang (two
/// missed heartbeat deadlines before the failover verdict), so the
/// property runs fewer of them.
const THREAD_CASES: u32 = 6;

fn random_cfg(rng: &mut StdRng) -> CaesarConfig {
    let counters = rng.gen_range(64usize..1024);
    CaesarConfig {
        cache_entries: rng.gen_range(1usize..120),
        entry_capacity: rng.gen_range(2u64..40),
        policy: rng.pick(&[CachePolicy::Lru, CachePolicy::Random, CachePolicy::Fifo]),
        counters,
        k: rng.gen_range(1usize..6).min(counters),
        counter_bits: rng.pick(&[8u32, 16, 32]),
        seed: rng.gen(),
        ..CaesarConfig::default()
    }
}

fn random_workload(rng: &mut StdRng) -> Vec<u64> {
    let population = rng.gen_range(1u64..60);
    rng.vec_with(0..3000, |r| {
        if r.gen_bool(0.8) {
            hashkit::mix::mix64(r.gen_range(0..population))
        } else {
            r.gen()
        }
    })
}

/// The headline acceptance property: inject a random fault plan
/// (worker panics between packets, sticky ring stalls) while
/// streaming, and the supervised engine must (a) keep serving queries,
/// (b) account for every single offered packet exactly, and (c) keep
/// its fault log coherent with the injector's fired schedule.
#[test]
fn random_fault_plans_keep_accounting_exact_across_shard_counts() {
    for shards in [1usize, 2, 4] {
        for_each_seed_n(CASES, |rng| {
            let cfg = random_cfg(rng);
            let flows = random_workload(rng);
            let horizon = (flows.len() as u64 / shards as u64).max(1);
            let plan = FaultInjector::random_plan(rng, shards, horizon);
            let planned = plan.pending().len();

            let mut online = OnlineCaesar::new(cfg, shards)
                .with_policy(BackpressurePolicy::Block)
                .with_injector(plan);
            for (i, &f) in flows.iter().enumerate() {
                online.offer(f);
                if i == flows.len() / 2 {
                    // Mid-stream the invariant holds with in-flight mass.
                    let st = online.stats();
                    assert_eq!(
                        st.recorded + st.dropped + st.quarantined + st.in_flight,
                        st.offered,
                        "mid-stream mass leak: {cfg:?} shards={shards}"
                    );
                }
            }
            online.merge_now(); // drains every ring dry
            let st = online.stats();
            assert_eq!(st.in_flight, 0);
            assert_eq!(st.offered, flows.len() as u64);
            assert_eq!(
                st.recorded + st.dropped + st.quarantined,
                st.offered,
                "post-drain mass leak: {cfg:?} shards={shards}"
            );
            // Block policy never sheds; only panics lose packets.
            assert_eq!(st.dropped, 0, "Block policy dropped packets");

            // The engine is still serving: estimates are finite and the
            // sketch holds exactly the surviving mass.
            let est = online.query(flows[0]);
            assert!(est.is_finite());
            assert_eq!(
                online.sram().total_added() + online.unmerged_units(),
                st.recorded,
                "surviving mass must equal recorded packets: {cfg:?}"
            );

            // Fault log ↔ injector coherence: every fired WorkerPanic
            // appears in exactly one lane log, tagged exact, carrying
            // the injected payload.
            let fired_panics = online.injector().fired_at(FaultSite::WorkerPanic);
            let logged: usize = (0..shards).map(|s| online.fault_log(s).panics()).sum();
            assert_eq!(fired_panics, logged, "fired vs logged panics");
            assert_eq!(st.respawns as usize, logged, "one respawn per panic");
            for s in 0..shards {
                let log = online.fault_log(s);
                assert!(log.is_exact(), "injected faults fire between packets");
                for r in &log.records {
                    if r.kind == FaultKind::WorkerPanic {
                        assert!(r.payload.contains(INJECTED_PANIC));
                    }
                }
            }
            if fired_panics == 0 && planned == 0 {
                // Fault-free plans must not lose anything at all.
                assert_eq!(st.quarantined, 0);
            }
        });
    }
}

/// The same acceptance property on the detached-thread runtime:
/// random *thread* chaos schedules (panics, heartbeat-supervised
/// hangs, slow drains) across shard counts must leave the engine
/// serving with exact loss accounting and a fault log coherent with
/// what actually fired. Batch boundaries — and therefore *when* a
/// hang/slow tick is consumed — depend on OS scheduling, so this
/// asserts invariants, not byte-identity (the fault-free byte-identity
/// property lives in `tests/threaded_runtime.rs`).
#[test]
fn random_thread_chaos_keeps_accounting_exact_across_shard_counts() {
    // A tight heartbeat keeps each injected hang's two-deadline
    // verdict (and thus the whole suite) fast.
    let heartbeat = std::time::Duration::from_millis(25);
    for shards in [1usize, 2, 4] {
        for_each_seed_n(THREAD_CASES, |rng| {
            let cfg = random_cfg(rng);
            let flows = random_workload(rng);
            let horizon = (flows.len() as u64 / shards as u64).max(1);
            let plan = FaultInjector::random_thread_plan(rng, shards, horizon);

            let mut engine = ThreadedCaesar::new(cfg, shards)
                .with_heartbeat_interval(heartbeat)
                .with_injector(plan);
            engine.offer_batch(&flows);
            engine.merge_now(); // drains every ring dry

            // A hang verdict is wall-clock asynchronous: a worker that
            // consumed its hang tick *after* draining its ring hangs
            // with nothing in flight, and its failover only lands once
            // the monitor sees two missed deadlines AND the supervisor
            // next services the lane. Give every fired hang a bounded
            // window to settle before auditing the ledger.
            let settle = std::time::Instant::now();
            loop {
                let hangs = engine.with_injector_state(|inj| inj.fired_at(FaultSite::WorkerHang));
                let failovers: usize =
                    (0..shards).map(|s| engine.fault_log(s).failovers()).sum();
                if failovers >= hangs || settle.elapsed() > std::time::Duration::from_secs(10) {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
                engine.merge_now(); // services lanes → executes pending verdicts
            }

            let st = engine.stats();
            assert_eq!(st.in_flight, 0);
            assert_eq!(st.offered, flows.len() as u64);
            assert_eq!(
                st.recorded + st.dropped + st.quarantined,
                st.offered,
                "post-drain mass leak: {cfg:?} shards={shards}"
            );
            assert_eq!(st.dropped, 0, "Block policy dropped packets");

            // Still serving, and the sketch holds exactly the
            // surviving mass.
            assert!(engine.query(flows[0]).is_finite());
            assert_eq!(
                engine.sram().total_added() + engine.unmerged_units(),
                st.recorded,
                "surviving mass must equal recorded packets: {cfg:?}"
            );

            // Ledger ↔ injector coherence: every fired panic respawned
            // a worker in place; every fired hang cost one heartbeat
            // failover; slow drains are absorbed without a record.
            let (panics, hangs) = engine.with_injector_state(|inj| {
                (inj.fired_at(FaultSite::WorkerPanic), inj.fired_at(FaultSite::WorkerHang))
            });
            let logged_panics: usize =
                (0..shards).map(|s| engine.fault_log(s).panics()).sum();
            let logged_failovers: usize =
                (0..shards).map(|s| engine.fault_log(s).failovers()).sum();
            assert_eq!(logged_panics, panics, "fired vs logged panics");
            assert_eq!(logged_failovers, hangs, "fired hangs vs heartbeat failovers");
            for s in 0..shards {
                let log = engine.fault_log(s);
                assert!(log.is_exact(), "injected thread faults account exactly");
                for r in &log.records {
                    if r.kind == FaultKind::WorkerPanic {
                        assert!(r.payload.contains(INJECTED_PANIC));
                    }
                }
            }
            if panics == 0 && hangs == 0 {
                assert_eq!(st.quarantined, 0, "no fault, no loss");
            }
            engine.finish();
        });
    }
}

/// With no faults injected, the supervised engine is the batch build:
/// same SRAM bytes, same ingest stats, across shard counts.
#[test]
fn fault_free_online_run_is_bit_identical_to_batch_build() {
    for shards in [1usize, 2, 4] {
        for_each_seed_n(CASES / 2, |rng| {
            let cfg = random_cfg(rng);
            let flows = random_workload(rng);
            let mut online = OnlineCaesar::new(cfg, shards);
            for &f in &flows {
                online.offer(f);
            }
            let finished = online.finish();
            let batch = ConcurrentCaesar::build(cfg, shards, &flows);
            assert_eq!(
                finished.sram().snapshot(),
                batch.sram().snapshot(),
                "online vs batch: {cfg:?} shards={shards}"
            );
            assert_eq!(finished.ingest_stats(), batch.ingest_stats());
        });
    }
}

/// Crash-consistency property: snapshot at a random point mid-stream
/// (pending ring contents and all), restore into a fresh engine,
/// resume the remaining stream — the final SRAM bytes, stats, and
/// estimates must equal the uninterrupted run's.
#[test]
fn snapshot_restore_resume_matches_uninterrupted_run() {
    for shards in [1usize, 2, 4] {
        for_each_seed_n(CASES / 2, |rng| {
            let cfg = random_cfg(rng);
            let flows = random_workload(rng);
            let cut = rng.gen_range(1..flows.len());

            // Uninterrupted run.
            let mut a = OnlineCaesar::new(cfg, shards);
            for &f in &flows {
                a.offer(f);
            }

            // Interrupted run: stream, snapshot at the cut, restore,
            // resume with the remainder.
            let mut b = OnlineCaesar::new(cfg, shards);
            for &f in &flows[..cut] {
                b.offer(f);
            }
            let snap = b.snapshot();
            drop(b);
            let mut b = OnlineCaesar::restore(&snap).expect("restore");
            for &f in &flows[cut..] {
                b.offer(f);
            }

            let (sa, sb) = (a.stats(), b.stats());
            assert_eq!(sa, sb, "stats diverge: {cfg:?} shards={shards} cut={cut}");
            let qa = a.query(flows[0]);
            let qb = b.query(flows[0]);
            assert_eq!(qa.to_bits(), qb.to_bits(), "estimates diverge");
            let (fa, fb) = (a.finish(), b.finish());
            assert_eq!(
                fa.sram().snapshot(),
                fb.sram().snapshot(),
                "SRAM diverges after restore: {cfg:?} shards={shards} cut={cut}"
            );
            assert_eq!(fa.ingest_stats(), fb.ingest_stats());
        });
    }
}

/// Snapshots taken *after a survived worker panic* carry the fault's
/// aftermath (respawned worker, quarantine counters, fault log) and
/// still resume bit-identically. The panic is pinned early and the
/// rings are drained at the cut so it is guaranteed consumed before
/// the snapshot in both runs (the injector itself is deliberately not
/// serialized — a restored engine starts with an inert one).
#[test]
fn snapshot_after_survived_panic_resumes_identically() {
    for_each_seed_n(CASES / 2, |rng| {
        let cfg = random_cfg(rng);
        let flows = random_workload(rng);
        let cut = rng.gen_range(2..flows.len());
        let events = vec![FaultEvent {
            site: FaultSite::WorkerPanic,
            shard: 0,
            at_tick: rng.gen_range(0..cut as u64 / 2).max(1) - 1,
        }];

        // Uninterrupted run, merged at the cut so both runs share the
        // same epoch alignment.
        let mut a = OnlineCaesar::new(cfg, 1)
            .with_injector(FaultInjector::with_events(events.clone()));
        for &f in &flows[..cut] {
            a.offer(f);
        }
        a.merge_now();
        for &f in &flows[cut..] {
            a.offer(f);
        }

        // Interrupted run: drain at the cut (fault fires), snapshot,
        // restore, resume.
        let mut b = OnlineCaesar::new(cfg, 1)
            .with_injector(FaultInjector::with_events(events));
        for &f in &flows[..cut] {
            b.offer(f);
        }
        b.merge_now();
        assert_eq!(b.fault_log(0).panics(), 1, "panic must fire before the cut");
        let pre = b.stats();
        let snap = b.snapshot();
        drop(b);
        let mut b = OnlineCaesar::restore(&snap).expect("restore");
        // The restored engine remembers the fault's aftermath.
        assert_eq!(b.stats(), pre);
        assert_eq!(b.fault_log(0).panics(), 1);
        assert_eq!(b.lane_stats(0).respawns, 1);
        assert!(b.injector().is_inert(), "injector is not serialized");
        for &f in &flows[cut..] {
            b.offer(f);
        }

        assert_eq!(a.stats(), b.stats(), "{cfg:?} cut={cut}");
        let (fa, fb) = (a.finish(), b.finish());
        assert_eq!(fa.sram().snapshot(), fb.sram().snapshot(), "{cfg:?} cut={cut}");
        assert_eq!(fa.ingest_stats(), fb.ingest_stats());
    });
}

/// Degradation must be visible, never silent: a stalled ring under a
/// drop policy sheds packets, and every shed packet shows up both in
/// the exact lane counters and as reduced query confidence.
#[test]
fn shed_packets_surface_as_reduced_confidence() {
    let cfg = CaesarConfig {
        cache_entries: 32,
        entry_capacity: 8,
        counters: 512,
        k: 3,
        seed: 7,
        ..CaesarConfig::default()
    };
    let mut online = OnlineCaesar::new(cfg, 1)
        .with_policy(BackpressurePolicy::DropNewest)
        .with_ring_capacity(64)
        .with_watchdog_deadline(u64::MAX) // never fail over: force shedding
        .with_injector(FaultInjector::with_events(vec![FaultEvent {
            site: FaultSite::RingStall,
            shard: 0,
            at_tick: 0,
        }]));
    for i in 0..4096u64 {
        online.offer(hashkit::mix::mix64(i % 16));
    }
    let st = online.stats();
    assert!(st.dropped > 0, "stalled DropNewest lane must shed");
    assert_eq!(st.recorded + st.dropped + st.quarantined + st.in_flight, st.offered);

    let lane = online.lane_stats(0);
    assert_eq!(lane.dropped, st.dropped, "single lane carries all losses");

    let health = online.query_health(hashkit::mix::mix64(3));
    let expect_loss = st.dropped as f64 / st.offered as f64;
    assert!((health.loss_fraction - expect_loss).abs() < 1e-12);
    assert!(health.is_degraded());
    assert!(health.confidence < 1.0);
    assert!(health.confidence >= 0.0);

    // The tally feeds straight into the metrics aggregation path.
    let mut tally = metrics::HealthTally::new();
    tally.push(health.is_degraded(), health.confidence);
    assert_eq!(tally.queries(), 1);
    assert!(tally.degraded_fraction() > 0.99);
    assert!(tally.mean_confidence() < 1.0);
}
