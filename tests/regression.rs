//! Regression pins: everything in the workspace is seeded, so these
//! exact values are stable across runs and platforms. If a change
//! moves one of them, it changed measurement behaviour — update the
//! pin deliberately and say why in the commit message.

use caesar_repro::prelude::*;

fn tiny_trace() -> (Trace, std::collections::HashMap<FlowId, u64>) {
    TraceGenerator::new(SynthConfig::small()).generate()
}

#[test]
fn trace_generation_pins() {
    let (trace, truth) = tiny_trace();
    assert_eq!(trace.num_packets(), 50_260);
    assert_eq!(trace.num_flows, 2_000);
    assert_eq!(truth.len(), 2_000);
    // Order-sensitive fingerprint of the packet stream.
    let fingerprint = trace.packets.iter().enumerate().fold(0u64, |acc, (i, p)| {
        acc.wrapping_mul(0x100000001B3).wrapping_add(p.flow ^ i as u64)
    });
    assert_eq!(fingerprint, 0xBB22_B2BA_3E04_AE25);
}

#[test]
fn caesar_pipeline_pins() {
    let (trace, _) = tiny_trace();
    let mut sketch = Caesar::new(CaesarConfig {
        cache_entries: 256,
        entry_capacity: 54,
        counters: 2048,
        k: 3,
        ..CaesarConfig::default()
    });
    for p in &trace.packets {
        sketch.record(p.flow);
    }
    sketch.finish();
    let st = sketch.stats();
    assert_eq!(st.sram.total_added, 50_260);
    assert_eq!(st.cache.hits, 44_464);
    assert_eq!(st.evictions, 6_504);
    // PR 5 note: the final-dump drain order became ascending slot-id
    // order (it was hash-map iteration order) so that the dump is a
    // pure function of visible cache state and snapshot/restore can be
    // byte-identical. That reordered the FinalDump remainder-scatter
    // RNG draws, which moved this pin (9_914 → 9_911). Total mass
    // (`total_added`) is order-independent and unchanged, and the
    // query pin below happens to survive as well.
    assert_eq!(st.sram_writes, 9_911);
    // A fixed flow's estimate, bit-exact.
    let first_flow = trace.packets[0].flow;
    assert_eq!(first_flow, 0x847D_2C60_FF22_0DCD);
    assert_eq!(sketch.query(first_flow).to_bits(), 0x408A_1304_0000_0000);
}

#[test]
fn queue_loss_pins() {
    use memsim::IngressQueue;
    let q = IngressQueue { arrival_ns: 1.0, service_ns: 3.0, capacity: 64 };
    let r = q.simulate(1_000_000);
    assert_eq!(r.accepted, 333_397);
    assert_eq!(r.dropped, 666_603);

    let q = IngressQueue { arrival_ns: 1.0, service_ns: 10.0, capacity: 64 };
    let r = q.simulate(1_000_000);
    assert_eq!(r.accepted, 100_063);
}

#[test]
fn hash_pins() {
    use hashkit::{aphash::aphash64, flowid, fnv::fnv1a64, murmur, sha1::Sha1};
    assert_eq!(Sha1::digest64(b"caesar"), 0x5291_5A47_3152_2B93);
    assert_eq!(fnv1a64(b"caesar"), 0x0116_CAD4_5058_6B4A);
    assert_eq!(aphash64(b"caesar"), 0xEC02_2AF3_577C_417B);
    assert_eq!(murmur::murmur3_x64_128(b"caesar", 0).0, 0x8187_7015_20C2_73A2);
    assert_eq!(
        flowid::flow_id(0x0A00_0001, 0x0A00_0002, 1234, 80, 6),
        0x543D_DF81_8A75_F8BC
    );
}
