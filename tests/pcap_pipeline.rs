//! Integration: pcap capture → 5-tuple parsing → flow IDs → CAESAR.

use caesar_repro::prelude::*;
use flowtrace::pcap::{PcapReader, PcapWriter};
use std::io::Cursor;

fn tuple(i: u32) -> FiveTuple {
    FiveTuple {
        src_ip: 0x0A00_0000 + i,
        dst_ip: 0xC0A8_0001,
        src_port: (1024 + i) as u16,
        dst_port: 80,
        proto: FiveTuple::TCP,
    }
}

#[test]
fn pcap_roundtrip_feeds_caesar() {
    // 30 hosts, host i sends 10·(i+1) packets.
    let mut buf = Vec::new();
    {
        let mut w = PcapWriter::new(&mut buf).expect("header");
        for round in 0..300u32 {
            for i in 0..30u32 {
                if round < 10 * (i + 1) {
                    w.write_packet(&tuple(i), round, 100).expect("packet");
                }
            }
        }
        w.finish().expect("flush");
    }

    let (trace, stats) = PcapReader::new(Cursor::new(&buf))
        .expect("valid pcap")
        .read_trace()
        .expect("parse");
    assert_eq!(stats.skipped, 0);
    assert_eq!(trace.num_flows, 30);
    let expected_packets: u32 = (1..=30).map(|i| 10 * i).sum();
    assert_eq!(trace.num_packets(), expected_packets as usize);

    let mut sketch = Caesar::new(CaesarConfig {
        cache_entries: 8, // force churn through the cache
        entry_capacity: 16,
        counters: 1024,
        k: 3,
        ..CaesarConfig::default()
    });
    for p in &trace.packets {
        sketch.record(p.flow);
    }
    sketch.finish();
    assert_eq!(sketch.sram().total_added(), expected_packets as u64);

    // With 30 flows in 1024 counters most flows share no counter and
    // must be recovered within the de-noising slack (≈ k·n/L ≈ 14
    // packets); the occasional pair that does collide can be off by
    // the neighbour's share, so assert on the population.
    let slack = 3.0 * trace.num_packets() as f64 / 1024.0 + 5.0;
    let within = (0..30u32)
        .filter(|&i| {
            let actual = 10.0 * (i + 1) as f64;
            let est = sketch.query(tuple(i).flow_id());
            (est - actual).abs() < 0.1 * actual + slack
        })
        .count();
    assert!(within >= 26, "only {within}/30 flows recovered within slack");
    // The aggregate is conserved regardless of collisions.
    let total_est: f64 = (0..30u32).map(|i| sketch.query(tuple(i).flow_id())).sum();
    assert!(
        (total_est - expected_packets as f64).abs() < 0.1 * expected_packets as f64,
        "total estimated {total_est} vs actual {expected_packets}"
    );
}

#[test]
fn flow_ids_are_direction_sensitive_end_to_end() {
    let fwd = tuple(1);
    let rev = FiveTuple {
        src_ip: fwd.dst_ip,
        dst_ip: fwd.src_ip,
        src_port: fwd.dst_port,
        dst_port: fwd.src_port,
        proto: fwd.proto,
    };
    let mut buf = Vec::new();
    {
        let mut w = PcapWriter::new(&mut buf).expect("header");
        for _ in 0..100 {
            w.write_packet(&fwd, 0, 64).expect("packet");
        }
        for _ in 0..7 {
            w.write_packet(&rev, 0, 64).expect("packet");
        }
        w.finish().expect("flush");
    }
    let (trace, _) = PcapReader::new(Cursor::new(&buf))
        .expect("valid")
        .read_trace()
        .expect("parse");
    assert_eq!(trace.num_flows, 2);

    let counter = ExactCounter::from_trace(&trace);
    assert_eq!(counter.size(fwd.flow_id()), 100);
    assert_eq!(counter.size(rev.flow_id()), 7);
}
