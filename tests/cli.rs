//! End-to-end test of the `caesar-experiments` binary.

use std::path::PathBuf;
use std::process::Command;

fn binary() -> PathBuf {
    // Integration tests live in target/<profile>/deps; the binary is
    // one directory up.
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p.join("caesar-experiments")
}

#[test]
fn cli_regenerates_figures_at_tiny_scale() {
    let bin = binary();
    if !bin.exists() {
        // The experiments binary is only present when the whole
        // workspace was built (cargo test --workspace does this).
        eprintln!("skipping: {} not built", bin.display());
        return;
    }
    let out = tempdir();
    let status = Command::new(&bin)
        .args(["fig3", "fig8", "--scale", "tiny", "--out"])
        .arg(&out)
        .output()
        .expect("binary runs");
    assert!(status.status.success(), "stderr: {}", String::from_utf8_lossy(&status.stderr));
    let stdout = String::from_utf8_lossy(&status.stdout);
    assert!(stdout.contains("Figure 3"), "{stdout}");
    assert!(stdout.contains("Figure 8"), "{stdout}");
    assert!(stdout.contains("crossover"), "{stdout}");

    for artifact in [
        "fig3_histogram.csv",
        "fig3_ccdf.csv",
        "fig3_distribution.svg",
        "fig8_processing_time.csv",
        "fig8_processing_time.svg",
    ] {
        let path = out.join(artifact);
        assert!(path.exists(), "missing {}", path.display());
        assert!(std::fs::metadata(&path).expect("stat").len() > 100);
    }
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn cli_rejects_unknown_arguments() {
    let bin = binary();
    if !bin.exists() {
        eprintln!("skipping: {} not built", bin.display());
        return;
    }
    let out = Command::new(&bin)
        .args(["no-such-figure", "--scale", "tiny", "--out"])
        .arg(tempdir())
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let out = Command::new(&bin)
        .args(["--scale", "bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scale"));
}

fn tempdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "caesar_cli_test_{}_{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}
