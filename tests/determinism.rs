//! Reproducibility: everything in the workspace is seeded, so repeated
//! runs must be bit-identical — the property that makes the paper's
//! figures regenerable.

use caesar_repro::prelude::*;
use baselines::rcs::RcsConfig;
use baselines::LossModel;

#[test]
fn caesar_runs_are_bit_identical() {
    let (trace, truth) = TraceGenerator::new(SynthConfig::small()).generate();
    let run = || {
        let mut c = Caesar::new(CaesarConfig {
            cache_entries: 256,
            entry_capacity: 54,
            counters: 1024,
            k: 3,
            ..CaesarConfig::default()
        });
        for p in &trace.packets {
            c.record(p.flow);
        }
        c.finish();
        truth
            .keys()
            .map(|&f| c.query(f).to_bits())
            .collect::<Vec<u64>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_caesar_seeds_differ() {
    let (trace, truth) = TraceGenerator::new(SynthConfig::small()).generate();
    let run = |seed: u64| {
        let mut c = Caesar::new(CaesarConfig {
            cache_entries: 256,
            entry_capacity: 54,
            counters: 1024,
            k: 3,
            seed,
            ..CaesarConfig::default()
        });
        for p in &trace.packets {
            c.record(p.flow);
        }
        c.finish();
        truth
            .keys()
            .map(|&f| c.query(f).to_bits())
            .collect::<Vec<u64>>()
    };
    assert_ne!(run(1), run(2), "different seeds must produce different sketches");
}

#[test]
fn rcs_lossy_runs_are_bit_identical() {
    let (trace, truth) = TraceGenerator::new(SynthConfig::small()).generate();
    let run = || {
        let mut r = Rcs::new(RcsConfig {
            counters: 1024,
            k: 3,
            loss: LossModel::Uniform(0.5),
            seed: 77,
        });
        for p in &trace.packets {
            r.record(p.flow);
        }
        truth
            .keys()
            .map(|&f| r.query(f).to_bits())
            .collect::<Vec<u64>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn trace_generation_is_stable_across_calls() {
    let a = TraceGenerator::new(SynthConfig::small()).generate();
    let b = TraceGenerator::new(SynthConfig::small()).generate();
    assert_eq!(a.0.packets, b.0.packets);
    assert_eq!(a.1, b.1);
}
