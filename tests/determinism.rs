//! Reproducibility: everything in the workspace is seeded, so repeated
//! runs must be bit-identical — the property that makes the paper's
//! figures regenerable.

use caesar_repro::prelude::*;
use baselines::rcs::RcsConfig;
use baselines::LossModel;

#[test]
fn caesar_runs_are_bit_identical() {
    let (trace, truth) = TraceGenerator::new(SynthConfig::small()).generate();
    let run = || {
        let mut c = Caesar::new(CaesarConfig {
            cache_entries: 256,
            entry_capacity: 54,
            counters: 1024,
            k: 3,
            ..CaesarConfig::default()
        });
        for p in &trace.packets {
            c.record(p.flow);
        }
        c.finish();
        truth
            .keys()
            .map(|&f| c.query(f).to_bits())
            .collect::<Vec<u64>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_caesar_seeds_differ() {
    let (trace, truth) = TraceGenerator::new(SynthConfig::small()).generate();
    let run = |seed: u64| {
        let mut c = Caesar::new(CaesarConfig {
            cache_entries: 256,
            entry_capacity: 54,
            counters: 1024,
            k: 3,
            seed,
            ..CaesarConfig::default()
        });
        for p in &trace.packets {
            c.record(p.flow);
        }
        c.finish();
        truth
            .keys()
            .map(|&f| c.query(f).to_bits())
            .collect::<Vec<u64>>()
    };
    assert_ne!(run(1), run(2), "different seeds must produce different sketches");
}

#[test]
fn rcs_lossy_runs_are_bit_identical() {
    let (trace, truth) = TraceGenerator::new(SynthConfig::small()).generate();
    let run = || {
        let mut r = Rcs::new(RcsConfig {
            counters: 1024,
            k: 3,
            loss: LossModel::Uniform(0.5),
            seed: 77,
        });
        for p in &trace.packets {
            r.record(p.flow);
        }
        truth
            .keys()
            .map(|&f| r.query(f).to_bits())
            .collect::<Vec<u64>>()
    };
    assert_eq!(run(), run());
}

/// Two runs of the full cache → evict → SRAM → estimate pipeline with
/// the same seed must be **byte-identical**: the whole state is
/// serialized (SRAM snapshot, statistics, per-flow estimate bits) and
/// compared as raw bytes. This locks the deterministic parts of the
/// design the estimators depend on — the fixed-`k` collision-free
/// counter mapping and the `e = p·k + q` eviction split — against
/// accidental nondeterminism (hash-map iteration, thread scheduling,
/// uncontrolled RNG draws).
#[test]
fn full_pipeline_runs_are_byte_identical() {
    use support::bytesx::PutBytes;

    let (trace, truth) = TraceGenerator::new(SynthConfig::small()).generate();
    let mut flows: Vec<u64> = truth.keys().copied().collect();
    flows.sort_unstable();

    let run = || {
        let mut c = Caesar::new(CaesarConfig {
            cache_entries: 256,
            entry_capacity: 54,
            counters: 2048,
            k: 3,
            seed: 42,
            ..CaesarConfig::default()
        });
        for p in &trace.packets {
            c.record(p.flow);
        }
        c.finish();

        // Serialize everything observable into one byte string.
        let mut bytes = Vec::new();
        for &v in c.sram().as_slice() {
            bytes.put_u64_le(v);
        }
        let st = c.stats();
        bytes.put_u64_le(st.sram.total_added);
        bytes.put_u64_le(st.cache.hits);
        bytes.put_u64_le(st.evictions);
        bytes.put_u64_le(st.sram_writes);
        for &f in &flows {
            bytes.put_u64_le(c.query(f).to_bits());
        }
        bytes
    };

    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    assert!(a == b, "pipeline state diverged between identical runs");
}

/// The eviction split `e = p·k + q` is deterministic in everything but
/// the placement of the `q` remainder units, and conservation holds
/// exactly: re-running with the same RNG seed reproduces the identical
/// counter layout.
#[test]
fn eviction_split_is_seed_deterministic() {
    use caesar::update::spread_eviction;
    use caesar::CounterArray;
    use support::rand::{rngs::StdRng, SeedableRng};

    let indices = [3usize, 11, 29];
    let k = indices.len() as u64;
    for &e in &[0u64, 1, 3, 7, 54, 1000, 99_991] {
        let run = || {
            let mut sram = CounterArray::new(64, 40);
            let mut rng = StdRng::seed_from_u64(9);
            spread_eviction(&mut sram, &indices, e, &mut rng);
            sram.as_slice().to_vec()
        };
        let a = run();
        assert_eq!(a, run(), "e = {e}");
        // e = p·k + q: every mapped counter holds the aliquot p plus
        // its share of the q independently-placed remainder units
        // (B(q, 1/k) per counter), and the total is conserved.
        let (p, q) = (e / k, e % k);
        assert_eq!(a.iter().sum::<u64>(), e);
        let mut extras = 0;
        for &i in &indices {
            assert!(a[i] >= p && a[i] <= p + q, "counter {i} holds {}", a[i]);
            extras += a[i] - p;
        }
        assert_eq!(extras, q, "the q remainder units all land on mapped counters");
    }
}

#[test]
fn trace_generation_is_stable_across_calls() {
    let a = TraceGenerator::new(SynthConfig::small()).generate();
    let b = TraceGenerator::new(SynthConfig::small()).generate();
    assert_eq!(a.0.packets, b.0.packets);
    assert_eq!(a.1, b.1);
}
