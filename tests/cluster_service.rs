//! Cluster-service acceptance tests over the workload zoo.
//!
//! Two pinned properties from DESIGN.md §4h:
//!
//! * **Saturation monotonicity** — merging shard sketches of the zoo's
//!   `single_elephant` family under its stress geometry (10-bit
//!   counters, the width `experiments::zoo::stress_plan` uses to make
//!   the elephant pin its counters) never *lowers* the merged view's
//!   saturated fraction, and the elephant's query-health confidence
//!   never *rises* as more saturated mass folds in.
//! * **Wire transparency** — for every zoo family, flow estimates
//!   served over a loopback TCP socket are bit-identical to the
//!   in-process query engine on the same service (f64s cross the wire
//!   as raw bits; both paths converge on the same frame handler).

use caesar::{ConcurrentCaesar, Estimator};
use experiments::zoo::{stress_plan, zoo_config};
use flowtrace::zoo::{standard_zoo, ZOO_SEED};
use flowtrace::FlowId;
use service::{InProcess, MeasurementClient, MeasurementService, TcpServer, TcpTransport};
use std::collections::HashMap;
use std::sync::Arc;

/// Target flow count for the zoo traces (small: these tests build
/// every family).
const ZOO_FLOWS: usize = 250;

/// Round-robin stripe a packet stream across `n` tap slices.
fn stripe(flows: &[u64], n: usize) -> Vec<Vec<u64>> {
    let mut slices: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (i, &f) in flows.iter().enumerate() {
        slices[i % n].push(f);
    }
    slices
}

fn largest_flow(truth: &HashMap<FlowId, u64>) -> FlowId {
    truth
        .iter()
        .max_by_key(|&(&f, &x)| (x, f))
        .map(|(&f, _)| f)
        .expect("non-empty truth")
}

/// Satellite: merge linearity under forced saturation. The
/// `single_elephant` family with the stress plan's 10-bit counters
/// drives the elephant's `k` shared counters past the clamp; folding
/// in one saturated shard sketch after another must degrade the merged
/// view monotonically — saturated fraction non-decreasing, elephant
/// confidence non-increasing — and the damage must end up flagged, not
/// silently absorbed.
#[test]
fn elephant_saturation_degrades_merged_view_monotonically() {
    let zoo = standard_zoo(ZOO_FLOWS).expect("standard zoo parameters are valid");
    let elephant_gen = zoo
        .iter()
        .find(|w| w.name() == "single_elephant")
        .expect("zoo has the single_elephant family");
    let (trace, truth) = elephant_gen.generate(ZOO_SEED);
    let elephant = largest_flow(&truth);

    let plan = stress_plan("single_elephant");
    assert_eq!(plan.counter_bits, 10, "the stress plan pins 10-bit counters");
    let cfg = caesar::CaesarConfig {
        counter_bits: plan.counter_bits,
        ..zoo_config(&trace)
    };
    // The whole elephant must overflow the clamp even split k ways,
    // or the test asserts nothing.
    assert!(
        truth[&elephant] / cfg.k as u64 > (1u64 << cfg.counter_bits) - 1,
        "elephant mass must exceed the 10-bit clamp"
    );

    let packets: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    let nodes: Vec<ConcurrentCaesar> = stripe(&packets, 3)
        .iter()
        .map(|slice| ConcurrentCaesar::build(cfg, 2, slice))
        .collect();

    let mut cluster = ConcurrentCaesar::empty(cfg);
    let mut last_fraction = cluster.sram().saturated_fraction();
    let mut last_confidence = cluster.query_health(elephant).confidence;
    assert_eq!(last_fraction, 0.0);
    assert_eq!(last_confidence, 1.0);

    for (i, node) in nodes.iter().enumerate() {
        cluster.merge(node).expect("same fleet config");
        let fraction = cluster.sram().saturated_fraction();
        let confidence = cluster.query_health(elephant).confidence;
        assert!(
            fraction >= last_fraction,
            "merge {i}: saturated fraction fell {last_fraction} -> {fraction}"
        );
        assert!(
            confidence <= last_confidence,
            "merge {i}: confidence rose {last_confidence} -> {confidence}"
        );
        // Folding a sketch in can never report less damage than the
        // sketch carried on its own.
        assert!(fraction >= node.sram().saturated_fraction());
        last_fraction = fraction;
        last_confidence = confidence;
    }

    // The elephant's counters are pinned in the final view and the
    // health surface says so.
    let health = cluster.query_health(elephant);
    assert!(health.is_degraded(), "saturated cluster view must be flagged");
    assert!(health.confidence < 1.0);
    assert_eq!(health.saturated_counters, cfg.k);
    assert!(cluster.sram().saturated_fraction() > 0.0);
    assert!(cluster.sram().saturations() > 0);
    // And the estimate is visibly clamped: it cannot exceed the sum of
    // k pinned counters, which the true mass does.
    let ceiling = (cfg.k as u64 * ((1u64 << cfg.counter_bits) - 1)) as f64;
    let est = cluster.estimate(elephant, Estimator::Csm).clamped();
    assert!(
        est <= ceiling && ceiling < truth[&elephant] as f64,
        "a clamped elephant must under-report: est {est}, ceiling {ceiling}, true {}",
        truth[&elephant]
    );
}

/// Acceptance: for every zoo family, the loopback TCP round trip
/// returns bit-identical estimates to the in-process query engine on
/// the same epoch-consistent view.
#[test]
fn tcp_round_trip_is_bit_identical_for_every_zoo_family() {
    let zoo = standard_zoo(ZOO_FLOWS).expect("standard zoo parameters are valid");
    assert_eq!(zoo.len(), 8, "every zoo family participates");
    for w in &zoo {
        let (trace, truth) = w.generate(ZOO_SEED);
        let cfg = zoo_config(&trace);
        let packets: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();

        let svc = Arc::new(MeasurementService::new(cfg));
        let server = TcpServer::spawn(Arc::clone(&svc), "127.0.0.1:0")
            .unwrap_or_else(|e| panic!("{}: bind loopback: {e}", w.name()));
        let fp = svc.fingerprint();
        let mut tcp =
            MeasurementClient::connect(TcpTransport::connect(server.addr()).unwrap(), &fp)
                .unwrap_or_else(|e| panic!("{}: handshake: {e}", w.name()));

        // Two taps push their halves over the socket.
        for slice in stripe(&packets, 2) {
            let node = ConcurrentCaesar::build(cfg, 2, &slice);
            tcp.push_sketch(&node.export_sketch())
                .unwrap_or_else(|e| panic!("{}: push: {e}", w.name()));
        }

        // Sample present flows plus a few the sketch never saw.
        let mut targets: Vec<u64> = truth.keys().copied().take(48).collect();
        targets.sort_unstable();
        targets.extend([u64::MAX, u64::MAX - 1, 0xDEAD_BEEF_0BAD_F00D]);

        let (tcp_epoch, over_tcp) = tcp.query(&targets).unwrap();
        let mut local = MeasurementClient::connect(InProcess::new(&svc), &fp).unwrap();
        let (local_epoch, in_process) = local.query(&targets).unwrap();
        assert_eq!(tcp_epoch, local_epoch, "{}: same served epoch", w.name());
        assert_eq!(tcp_epoch, 2, "{}: one epoch per push", w.name());
        for (flow, (a, b)) in targets.iter().zip(over_tcp.iter().zip(&in_process)) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: flow {flow:#x} differs across transports",
                w.name()
            );
        }

        // Health reports cross the wire bit-identically too.
        let probe = targets[0];
        let (_, tcp_health) = tcp.query_health(probe).unwrap();
        let (_, local_health) = local.query_health(probe).unwrap();
        assert_eq!(tcp_health.estimate.to_bits(), local_health.estimate.to_bits());
        assert_eq!(tcp_health.confidence.to_bits(), local_health.confidence.to_bits());

        server.stop();
    }
}
