//! Property suite for the sharded ingest pipeline (`support::testkit`
//! harness): over randomized `(cfg, shards, workload)` cases, the
//! partitioned batch-writeback construction must
//!
//! * conserve every packet,
//! * produce **bit-identical** SRAM snapshots across repeated runs and
//!   across `build` / `build_stream` / `build_replay`,
//! * match the sequential `Caesar` total mass with one shard, and
//! * split the on-chip budget exactly (`Σ per-shard entries ==
//!   max(M, shards)`).

use caesar::{per_shard_entries, BuildMode, CaesarConfig, ConcurrentCaesar};
use caesar_repro::prelude::*;
use cachesim::CachePolicy;
use support::rand::{rngs::StdRng, Rng};
use support::testkit::{for_each_seed_n, GenExt};

/// Threaded builds are costlier than the unit-level properties; fewer
/// cases, each covering cfg × shards × workload jointly.
const CASES: u32 = 24;

fn random_cfg(rng: &mut StdRng) -> CaesarConfig {
    let counters = rng.gen_range(64usize..2048);
    CaesarConfig {
        cache_entries: rng.gen_range(1usize..200),
        entry_capacity: rng.gen_range(2u64..40),
        policy: rng.pick(&[CachePolicy::Lru, CachePolicy::Random, CachePolicy::Fifo]),
        counters,
        // k up to 6, never above L; k = 1 exercises the no-sharing edge.
        k: rng.gen_range(1usize..6).min(counters),
        // Narrow widths on purpose: saturating counters must stay
        // order-independent too.
        counter_bits: rng.pick(&[4u32, 8, 16, 32]),
        seed: rng.gen(),
        ..CaesarConfig::default()
    }
}

fn random_workload(rng: &mut StdRng) -> Vec<u64> {
    let population = rng.gen_range(1u64..80);
    rng.vec_with(0..2500, |r| {
        // Mix of heavy-tailed repeats and raw 64-bit IDs.
        if r.gen_bool(0.8) {
            hashkit::mix::mix64(r.gen_range(0..population))
        } else {
            r.gen()
        }
    })
}

#[test]
fn ingest_conserves_packets_and_repeats_bit_exactly() {
    for_each_seed_n(CASES, |rng| {
        let cfg = random_cfg(rng);
        let shards = rng.gen_range(1usize..8);
        let flows = random_workload(rng);
        let a = ConcurrentCaesar::build(cfg, shards, &flows);
        assert_eq!(a.sram().total_added() as usize, flows.len(), "{cfg:?}");
        let b = ConcurrentCaesar::build(cfg, shards, &flows);
        assert_eq!(a.sram().snapshot(), b.sram().snapshot(), "{cfg:?} shards={shards}");
        assert_eq!(a.evictions(), b.evictions());
        assert_eq!(a.ingest_stats(), b.ingest_stats(), "ingest stats must be deterministic");
    });
}

#[test]
fn build_stream_and_replay_are_bit_identical_to_build() {
    for_each_seed_n(CASES, |rng| {
        let cfg = random_cfg(rng);
        let shards = rng.gen_range(1usize..8);
        let flows = random_workload(rng);
        let batch = ConcurrentCaesar::build(cfg, shards, &flows);
        let stream = ConcurrentCaesar::build_stream(cfg, shards, flows.iter().copied());
        let replay = ConcurrentCaesar::build_replay(cfg, shards, &flows);
        // Scheduling must be invisible: every explicit build mode —
        // including the ring-fed Pinned transport — agrees with
        // whatever Auto picked on this host.
        for mode in [BuildMode::Threaded, BuildMode::Inline, BuildMode::Pinned] {
            let m = ConcurrentCaesar::build_with_mode(cfg, shards, &flows, mode);
            assert_eq!(
                batch.sram().snapshot(),
                m.sram().snapshot(),
                "build vs {mode:?}: {cfg:?} shards={shards}"
            );
            assert_eq!(batch.ingest_stats(), m.ingest_stats(), "{mode:?}");
        }
        assert_eq!(
            batch.sram().snapshot(),
            stream.sram().snapshot(),
            "build vs build_stream: {cfg:?} shards={shards}"
        );
        assert_eq!(batch.ingest_stats(), stream.ingest_stats(), "stream stats");
        assert_eq!(
            batch.sram().snapshot(),
            replay.sram().snapshot(),
            "build vs build_replay: {cfg:?} shards={shards}"
        );
        assert_eq!(batch.evictions(), stream.evictions());
        assert_eq!(batch.evictions(), replay.evictions());
        assert_eq!(batch.sram().total_added(), stream.sram().total_added());
        assert_eq!(batch.sram().total_added(), replay.sram().total_added());
    });
}

#[test]
fn one_shard_matches_sequential_byte_for_byte() {
    for_each_seed_n(CASES, |rng| {
        let cfg = random_cfg(rng);
        let flows = random_workload(rng);
        let conc = ConcurrentCaesar::build(cfg, 1, &flows);
        let mut seq = Caesar::new(cfg);
        for &f in &flows {
            seq.record(f);
        }
        seq.finish();
        // Shard 0's seeds (cache — including the Random-replacement
        // victim RNG — and remainder-scatter RNG) are exactly the
        // sequential sketch's, so with one shard the concurrent build
        // IS the sequential oracle: same eviction stream, same RNG
        // draws, same counters, for every replacement policy.
        assert_eq!(
            conc.sram().snapshot(),
            seq.sram().as_slice(),
            "{cfg:?}"
        );
        assert_eq!(conc.sram().total_added(), seq.sram().total_added(), "{cfg:?}");
        assert_eq!(conc.sram().total_added() as usize, flows.len());
        assert_eq!(conc.evictions(), seq.stats().evictions, "{cfg:?}");
    });
}

#[test]
fn shard_budget_is_exact_for_random_geometries() {
    for_each_seed_n(96, |rng| {
        let m = rng.gen_range(1usize..5000);
        let t = rng.gen_range(1usize..64);
        let parts = per_shard_entries(m, t);
        assert_eq!(parts.len(), t);
        assert_eq!(parts.iter().sum::<usize>(), m.max(t), "M={m} T={t}");
        assert!(parts.iter().all(|&e| e >= 1), "M={m} T={t}");
        let lo = parts.iter().min().copied().unwrap_or(0);
        let hi = parts.iter().max().copied().unwrap_or(0);
        assert!(hi - lo <= 1, "M={m} T={t}: {parts:?}");
    });
}
