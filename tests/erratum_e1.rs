//! Golden regression tests for erratum **E1** (DESIGN.md): the noise
//! mass subtracted by both estimators is `k·n/L`, **not** the paper's
//! literal `n/L`.
//!
//! The paper's Eq. 15 multiplies a spurious `1/k` into the selection
//! probability, so its Eq. 20 / Eq. 28 subtract the per-counter noise
//! `n/L` only once from the *sum of k counters*. Each of the flow's
//! `k` counters absorbs `n/L` expected noise independently, so the sum
//! absorbs `k·n/L` — the same mass the RCS scheme CAESAR generalizes
//! subtracts. These tests pin the corrected behaviour numerically: if
//! anyone "fixes" the estimators back to the paper's printed formula,
//! every test in this file fails with an error of exactly
//! `(k−1)·n/L`.

use caesar::estimator::{csm, mlm};
use caesar::EstimateParams;

/// Operating point used by the exact fixtures: noise per counter
/// `n/L = 120`, so the corrected and paper formulas differ by
/// `(k−1)·n/L = 240` — far above every tolerance below.
fn fixture_params() -> EstimateParams {
    EstimateParams { k: 3, y: 54, counters: 1000, total_packets: 120_000 }
}

#[test]
fn csm_subtracts_k_times_the_per_counter_noise() {
    let p = fixture_params();
    let noise = p.noise_per_counter(); // 120
    assert!((noise - 120.0).abs() < 1e-12);

    // True size x = 3000 split evenly, each counter carrying exactly
    // its expected n/L = 120 units of sharing noise.
    let counters = [1120u64, 1120, 1120];
    let e = csm::estimate(&counters, &p);

    // Corrected Eq. 20: Σw − k·n/L = 3360 − 360 = 3000, exact.
    assert!(
        (e.value - 3000.0).abs() < 1e-9,
        "CSM must subtract k·n/L (expected 3000, got {})",
        e.value
    );

    // The paper's literal Eq. 20 (subtract n/L once) would return
    // x + (k−1)·n/L = 3240. Guard the gap explicitly so the failure
    // mode is self-describing.
    let paper_literal = 3360.0 - noise;
    assert!(
        (paper_literal - 3240.0).abs() < 1e-9
            && (e.value - paper_literal).abs() > 200.0,
        "estimate {} is too close to the paper's uncorrected {} — \
         erratum E1 regressed",
        e.value,
        paper_literal
    );
}

#[test]
fn mlm_subtracts_k_times_the_per_counter_noise() {
    let p = fixture_params();
    let noise = p.noise_per_counter(); // 120

    // Same fixture: uniform counters w_i = x/k + n/L with x = 3000.
    // MLM's quadratic root differs from the counter sum only by
    // O(k·c) ≈ 0.2, so the corrected estimate sits within 1 of x.
    let e = mlm::estimate(&[1120, 1120, 1120], &p);
    assert!(
        (e.value - 3000.0).abs() < 1.0,
        "MLM must subtract k·n/L (expected ≈3000, got {})",
        e.value
    );

    // Under the paper's printed μ_X = x/k + n/(Lk) the same closed
    // form subtracts only n/L total, landing at ≈ x + (k−1)·n/L.
    let paper_literal = e.value + (p.k as f64 - 1.0) * noise;
    assert!(
        (paper_literal - 3240.0).abs() < 2.0,
        "sanity: uncorrected MLM would give ≈3240, derived {paper_literal}"
    );
}

/// Exact f64 pins of both estimators on the fixture. Pure arithmetic
/// on fixed inputs — any change to the noise term, the variance
/// expressions, or the MLM closed form moves these bits.
#[test]
fn estimator_outputs_are_bit_pinned() {
    let p = fixture_params();
    let counters = [1120u64, 1120, 1120];

    let c = csm::estimate(&counters, &p);
    let m = mlm::estimate(&counters, &p);

    assert_eq!(c.value.to_bits(), 0x40A7_7000_0000_0000, "CSM value drifted: {}", c.value);
    assert_eq!(m.value.to_bits(), MLM_VALUE_BITS, "MLM value drifted: {}", m.value);
    assert_eq!(
        c.variance.to_bits(),
        CSM_VARIANCE_BITS,
        "CSM variance (Eq. 22) drifted: {}",
        c.variance
    );
    assert_eq!(
        m.variance.to_bits(),
        MLM_VARIANCE_BITS,
        "MLM variance (Eq. 31) drifted: {}",
        m.variance
    );
}

/// MLM on the fixture: 2999.8888907260434 (the quadratic root sits
/// `≈ k·c/2` below the counter sum).
const MLM_VALUE_BITS: u64 = 0x40A7_6FC7_1CAF_6C26;
/// CSM model variance (Eq. 22) at x̂ = 3000: 693.3̅.
const CSM_VARIANCE_BITS: u64 = 0x4085_AAAA_AAAA_AAAA;
/// MLM asymptotic variance (Eq. 31) at its x̂: 693.2839519048624.
const MLM_VARIANCE_BITS: u64 = 0x4085_AA45_8893_882B;

/// Monte-Carlo witness that the corrected CSM is unbiased under the
/// actual forward model: every off-chip unit lands in a specific
/// counter with probability `1/L`, so a flow's k counters each absorb
/// `n/L` expected noise. The trial mean lands on x; the paper's
/// literal formula would land `(k−1)·n/L = 600` higher.
#[test]
fn empirical_mean_matches_corrected_noise_mass() {
    use support::rand::{rngs::StdRng, Rng, SeedableRng};

    const L: usize = 200;
    const K: usize = 3;
    const X: u64 = 9000; // 3000 per counter
    const N_OTHER: u64 = 60_000; // n/L = 300 noise per counter
    const TRIALS: usize = 100;

    let p = EstimateParams {
        k: K,
        y: 54,
        counters: L,
        total_packets: N_OTHER + X,
    };
    let mut rng = StdRng::seed_from_u64(0xE1);
    let mut mean = 0.0f64;
    for _ in 0..TRIALS {
        // The flow's own units, split exactly (x divisible by k).
        let mut w = [X / K as u64; K];
        // Every sharing unit picks one of the L counters uniformly;
        // we only track the flow's three. The flow's own x units also
        // land "somewhere", contributing x/L per counter on average —
        // approximate that mass as other-flow noise too, matching the
        // estimator's n = total_packets bookkeeping.
        for _ in 0..(N_OTHER + X) {
            let c = rng.gen_range(0..L);
            if c < K {
                w[c] += 1;
            }
        }
        mean += csm::estimate(&w, &p).value;
    }
    mean /= TRIALS as f64;

    // Per-trial σ ≈ 30, so the trial mean is within ±10 of its target
    // with overwhelming probability at a fixed seed.
    let bias_if_uncorrected = (K as f64 - 1.0) * p.noise_per_counter(); // 600
    assert!(
        (mean - X as f64).abs() < 60.0,
        "corrected CSM should be unbiased: mean {mean} vs x {X}"
    );
    assert!(
        (mean - (X as f64 + bias_if_uncorrected)).abs() > 400.0,
        "mean {mean} sits near the uncorrected expectation {} — \
         erratum E1 regressed",
        X as f64 + bias_if_uncorrected
    );
}
