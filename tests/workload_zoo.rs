//! Acceptance suite for the workload zoo (`flowtrace::zoo` +
//! `experiments::zoo`):
//!
//! * every family is a pure function of its seed (byte-identical via
//!   the binary codec) and conserves packets exactly;
//! * the CAIDA-shaped fit pins the published backbone parameters
//!   (mean 27.32, 45% single-packet flows) to golden KS / moment
//!   tolerances, and the CDN family carries the heavy tail it claims;
//! * a `CZOO` artifact round-trips any zoo family bit-exactly and
//!   rejects corruption instead of replaying garbage;
//! * each adversarial family, run under its `experiments::zoo`
//!   [`StressPlan`](experiments::zoo::StressPlan), preserves the exact
//!   online accounting invariant
//!   (`offered == recorded + dropped + quarantined + in_flight`) and
//!   drives [`caesar::QueryHealth`] confidence monotonically *down* as
//!   loss or saturation mounts — degradation is visible, never silent.

use caesar::ConcurrentCaesar;
use caesar_repro::prelude::*;
use experiments::zoo::{online_engine, stress_plan, zoo_config, ONLINE_SHARDS};
use flowtrace::binfmt;
use flowtrace::stats::{ks_statistic, top_share};
use flowtrace::zoo::{
    standard_zoo, CaidaParams, CaidaShaped, CdnPopularity, FlatUniform, FlowChurn, MouseFlood,
    SingleElephant, WorkloadGen, WorkloadKind, ZOO_SEED,
};
use support::testkit::FaultSite;

/// Every zoo family is deterministic in its seed — byte-identical
/// trace *and* truth — and distinct seeds actually change the trace
/// (the generators don't ignore their entropy).
#[test]
fn families_are_seed_deterministic_and_seed_sensitive() {
    let zoo = standard_zoo(96).expect("standard zoo params are valid");
    assert_eq!(zoo.len(), 8);
    for w in &zoo {
        let (trace, truth) = w.generate(ZOO_SEED);
        let (again, truth_again) = w.generate(ZOO_SEED);
        assert_eq!(
            binfmt::encode(&trace),
            binfmt::encode(&again),
            "{}: same seed must give byte-identical traces",
            w.name()
        );
        assert_eq!(truth, truth_again, "{}", w.name());
        assert_eq!(
            truth.values().sum::<u64>() as usize,
            trace.num_packets(),
            "{}: truth must sum to packet count",
            w.name()
        );
        assert_eq!(truth.len(), trace.num_flows, "{}", w.name());

        let (other, _) = w.generate(ZOO_SEED ^ 0xFFFF);
        assert_ne!(
            binfmt::encode(&trace),
            binfmt::encode(&other),
            "{}: a different seed must change the trace",
            w.name()
        );
    }

    // The taxonomy is stable: exactly three adversarial shapes, and
    // they are the ones the stress plans key on.
    let adversarial: Vec<&str> = zoo
        .iter()
        .filter(|w| w.kind() == WorkloadKind::Adversarial)
        .map(|w| w.name())
        .collect();
    assert_eq!(adversarial, ["mouse_flood", "single_elephant", "flow_churn"]);
}

/// Golden pins for the CAIDA-shaped fit: the fitted sample bank must
/// sit within tight KS distance of its own target law, reproduce the
/// published backbone moments, and be visibly far from a misfit law.
#[test]
fn caida_fit_pins_published_backbone_shape() {
    let params = CaidaParams::backbone();
    let c = CaidaShaped::fit(params, 500, 0xCA1DA).expect("backbone params fit");
    let samples = c.empirical().samples();
    assert_eq!(samples.len(), 100_000);

    // Self-fit: the empirical bank vs the analytic target CDF. At
    // n = 100 000 the 95% KS bound is ≈ 0.0043; 0.01 leaves margin
    // without admitting a broken fit.
    let ks = ks_statistic(samples, |s| c.target_cdf(s));
    assert!(ks < 0.01, "self-fit KS statistic too large: {ks}");

    // Published backbone moments: mean flow size 27.32 packets, 45%
    // single-packet flows, and a heavy tail (most flows far below the
    // mean — the mean is carried by the elephants).
    let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
    assert!(
        (mean - 27.32).abs() / 27.32 < 0.05,
        "fitted mean {mean} drifts from 27.32"
    );
    // The 45% point mass is a *floor* on single-packet flows (the
    // power-law body adds its own size-1 draws); the realized fraction
    // must match the target law's own P(1) exactly.
    let single = samples.iter().filter(|&&s| s == 1).count() as f64 / samples.len() as f64;
    assert!(
        single >= c.params().frac_single_packet - 0.01,
        "single-packet fraction {single} fell below the injected point mass"
    );
    assert!(
        (single - c.target_cdf(1)).abs() < 0.01,
        "single-packet fraction {single} drifts from the target law's P(1) = {}",
        c.target_cdf(1)
    );
    let below_mean =
        samples.iter().filter(|&&s| (s as f64) < mean).count() as f64 / samples.len() as f64;
    assert!(below_mean > 0.9, "heavy tail: most flows sit below the mean, got {below_mean}");

    // Misfit control: the same bank against a uniform CDF must be far
    // away — the statistic can actually tell shapes apart.
    let ks_uniform = ks_statistic(samples, |s| (s as f64 / 100.0).clamp(0.0, 1.0));
    assert!(ks_uniform > 0.1, "uniform misfit KS too small: {ks_uniform}");
}

/// Tail-mass golden pin for the CDN family: the top 1% of flows carry
/// a disproportionate share of packets (Zipf α = 0.9 over a 5 K
/// catalogue puts ≈ 36% of requests there), while a flat workload's
/// top 1% carries roughly 1%.
#[test]
fn cdn_tail_mass_is_heavy_and_flat_control_is_not() {
    let cdn = CdnPopularity::new(5_000, 135_000, 0.9, 0.3).expect("valid CDN params");
    let (_, truth) = cdn.generate(ZOO_SEED);
    let sizes: Vec<u64> = truth.values().copied().collect();
    let share = top_share(&sizes, 0.01);
    assert!(
        (0.25..0.7).contains(&share),
        "CDN top-1% share {share} outside golden band"
    );

    let flat = FlatUniform::new(5_000, 20, 35).expect("valid flat params");
    let (_, flat_truth) = flat.generate(ZOO_SEED);
    let flat_sizes: Vec<u64> = flat_truth.values().copied().collect();
    let flat_share = top_share(&flat_sizes, 0.01);
    assert!(flat_share < 0.05, "flat top-1% share {flat_share} should be ~1%");
    assert!(share > 10.0 * flat_share, "tail contrast collapsed");
}

/// A zoo workload is a replayable artifact: `CZOO` round-trips every
/// family's trace *and* exact truth bit-identically, encodes
/// deterministically, and refuses corrupted blobs.
#[test]
fn artifacts_round_trip_every_family_and_reject_corruption() {
    let zoo = standard_zoo(96).expect("standard zoo params are valid");
    let mut last_blob = Vec::new();
    for w in &zoo {
        let (trace, truth) = w.generate(ZOO_SEED);
        let blob = binfmt::encode_artifact(&trace, &truth);
        assert_eq!(
            blob,
            binfmt::encode_artifact(&trace, &truth),
            "{}: artifact bytes must be deterministic",
            w.name()
        );
        let (replayed, replayed_truth) =
            binfmt::decode_artifact(&blob).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        assert_eq!(replayed.packets, trace.packets, "{}", w.name());
        assert_eq!(replayed.num_flows, trace.num_flows, "{}", w.name());
        assert_eq!(replayed_truth, truth, "{}", w.name());
        last_blob = blob;
    }

    // Corruption is rejected, not replayed.
    let mut truncated = last_blob.clone();
    truncated.truncate(truncated.len() - 1);
    assert!(binfmt::decode_artifact(&truncated).is_err(), "truncated blob must fail");
    let mut bad_magic = last_blob.clone();
    bad_magic[0] ^= 0xFF;
    assert!(binfmt::decode_artifact(&bad_magic).is_err(), "bad magic must fail");
}

/// Mouse flood vs a stalled tail-drop lane: shard 0's consumer never
/// drains, so its ring fills once and every further packet routed
/// there is shed. The exact invariant must hold at every chunk, and a
/// stalled-shard flow's confidence must fall monotonically as the
/// lane's loss fraction mounts.
#[test]
fn mouse_flood_stalled_lane_confidence_decays_monotonically() {
    let w = MouseFlood::new(2_000, 1).expect("valid mouse flood");
    let (trace, truth) = w.generate(ZOO_SEED);
    let cfg = zoo_config(&trace);
    let plan = stress_plan("mouse_flood");
    let mut engine = online_engine(cfg, &plan, ONLINE_SHARDS);

    // Deterministically pick a flow that routes to the stalled shard.
    let mut keys: Vec<FlowId> = truth.keys().copied().collect();
    keys.sort_unstable();
    let probe = keys
        .into_iter()
        .find(|&f| ConcurrentCaesar::shard_of(f, ONLINE_SHARDS, cfg.seed) == 0)
        .expect("some mouse routes to the stalled shard");

    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    let mut confidences = Vec::new();
    for chunk in flows.chunks(256) {
        engine.offer_batch(chunk);
        let s = engine.stats();
        assert_eq!(
            s.offered,
            s.recorded + s.dropped + s.quarantined + s.in_flight,
            "accounting invariant must hold at every chunk"
        );
        confidences.push(engine.query_health(probe).confidence);
    }

    let s = engine.stats();
    assert!(s.dropped > 0, "stalled DropNewest lane must shed packets");
    assert_eq!(s.quarantined, 0, "no panics were scheduled");
    assert!(engine.injector().fired_at(FaultSite::RingStall) > 0, "the stall must fire");

    // Loss on the stalled lane only mounts, so confidence only falls —
    // and by the end the flood has destroyed most of the lane's trust.
    for pair in confidences.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-12,
            "confidence recovered while loss mounted: {confidences:?}"
        );
    }
    let (first, last) = (confidences[0], *confidences.last().unwrap());
    assert!(last < first - 0.1, "confidence barely moved: {first} -> {last}");
    let health = engine.query_health(probe);
    assert!(health.is_degraded());
    assert!(health.loss_fraction > 0.0);
}

/// Single elephant vs 10-bit counters: the elephant's mass pins its
/// `k` shared counters at the clamp value. Saturation only grows
/// (counters never decrease), so the elephant's saturated-counter
/// count is monotone up and its confidence monotone down — while the
/// run stays completely lossless.
#[test]
fn single_elephant_saturation_drives_confidence_down() {
    // 12 000 elephant packets split ~3 ways across its k = 3 shared
    // counters: ≈ 4 000 per counter, far past the 10-bit clamp (1023).
    let w = SingleElephant::new(12_000, 200, 6.0, 1_000).expect("valid elephant");
    let (trace, truth) = w.generate(ZOO_SEED);
    let elephant = w.elephant_id(ZOO_SEED);
    assert_eq!(truth[&elephant], 12_000, "elephant id must address the elephant");

    let plan = stress_plan("single_elephant");
    assert_eq!(plan.counter_bits, 10);
    let mut engine = online_engine(zoo_config(&trace), &plan, ONLINE_SHARDS);

    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    let mut saturated = Vec::new();
    let mut confidences = Vec::new();
    for chunk in flows.chunks(flows.len().div_ceil(8)) {
        engine.offer_batch(chunk);
        engine.merge_now();
        let s = engine.stats();
        assert_eq!(s.offered, s.recorded + s.dropped + s.quarantined + s.in_flight);
        assert_eq!(s.dropped + s.quarantined, 0, "elephant plan must stay lossless");
        let h = engine.query_health(elephant);
        saturated.push(h.saturated_counters);
        confidences.push(h.confidence);
    }

    for pair in saturated.windows(2) {
        assert!(pair[1] >= pair[0], "saturation cannot heal: {saturated:?}");
    }
    for pair in confidences.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-12,
            "confidence rose under saturation: {confidences:?}"
        );
    }
    // ≥ 2 of 3 counters pinned (exactly 3 in the common case; one may
    // be shared with enough background mass to matter either way).
    assert!(
        *saturated.last().unwrap() >= 2,
        "elephant's counters must end pinned: {saturated:?}"
    );
    assert!(
        *confidences.last().unwrap() < 0.5,
        "pinned counters must gut confidence: {confidences:?}"
    );
    assert!(engine.sram().saturated_fraction() > 0.0);
    let h = engine.query_health(elephant);
    assert!(h.is_degraded());
    assert_eq!(h.loss_fraction, 0.0, "degradation here is bias, not loss");
}

/// Flow churn under three scheduled worker panics: each panic
/// quarantines its in-flight batch remainder, the supervisor respawns
/// the worker, and the final accounting is exact to the packet — the
/// quarantined mass never reaches SRAM and is never silently re-added.
#[test]
fn flow_churn_panic_quarantine_accounting_is_exact() {
    // Big enough that shard 0 drains in several `STREAM_CHUNK`-sized
    // steps — the three panics fire at worker ticks 1, 3 and 5, so the
    // shard needs at least three separate drain chunks to reach them
    // (each panic quarantines its chunk's unprocessed remainder).
    let w = FlowChurn::new(16, 256, 8).expect("valid churn");
    let (trace, _) = w.generate(ZOO_SEED);
    assert_eq!(trace.num_packets(), 16 * 256 * 8);

    let plan = stress_plan("flow_churn");
    assert_eq!(plan.events.len(), 3);
    let mut engine = online_engine(zoo_config(&trace), &plan, ONLINE_SHARDS);

    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    for chunk in flows.chunks(512) {
        engine.offer_batch(chunk);
        let s = engine.stats();
        assert_eq!(
            s.offered,
            s.recorded + s.dropped + s.quarantined + s.in_flight,
            "accounting invariant must hold at every chunk"
        );
    }
    engine.merge_now();

    let stats = engine.stats();
    assert_eq!(stats.in_flight, 0, "merge_now drains every ring");
    assert_eq!(stats.dropped, 0, "Block policy never sheds");
    assert!(stats.quarantined > 0, "panics must quarantine in-flight mass");
    assert_eq!(stats.recorded + stats.quarantined, stats.offered);

    // The fault log agrees with the injector: all three panics fired,
    // on shard 0, one respawn each, and the log claims exactness.
    assert_eq!(engine.injector().fired_at(FaultSite::WorkerPanic), 3);
    assert_eq!(engine.fault_log(0).panics(), 3);
    assert!(engine.fault_log(0).is_exact());
    assert_eq!(engine.lane_stats(0).respawns, 3);
    for shard in 1..ONLINE_SHARDS {
        assert_eq!(engine.fault_log(shard).panics(), 0, "panics were pinned to shard 0");
    }

    // Quarantined packets are really gone: the finished sketch holds
    // exactly the recorded mass.
    let recorded = stats.recorded;
    let finished = engine.finish();
    assert_eq!(finished.sram().total_added(), recorded);
}
