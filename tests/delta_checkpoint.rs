//! Acceptance suite for epoch-delta checkpoints (DESIGN.md §4j).
//!
//! The contract under test: a full [`OnlineCaesar::snapshot`] anchors
//! a checkpoint chain, every [`OnlineCaesar::checkpoint_delta`] link
//! carries exactly the counter blocks dirtied since the previous
//! link (plus the lane tail), and replaying `base + deltas` — link by
//! link with [`OnlineCaesar::apply_delta`] or wholesale with
//! [`OnlineCaesar::restore_chain`] — reconstructs the live engine
//! **byte-for-byte**, across random geometries × 1/2/4 shards ×
//! random fault plans. Broken chains (gaps, replays, corruption,
//! foreign chains, foreign fleets) must be refused with typed errors,
//! never half-applied.

use std::collections::HashSet;

use caesar::{
    AtomicCounterArray, BackpressurePolicy, CaesarConfig, ChainError, CounterArray, DeltaError,
    OnlineCaesar, PackedCounterArray, ThreadedCaesar, DIRTY_BLOCK_COUNTERS,
};
use cachesim::CachePolicy;
use support::rand::{rngs::StdRng, Rng};
use support::testkit::{for_each_seed_n, FaultEvent, FaultInjector, FaultSite, GenExt};

/// Chain cases are costlier than unit properties; each case jointly
/// covers cfg × shards × epoch boundaries × fault schedule.
const CASES: u32 = 12;

fn random_cfg(rng: &mut StdRng) -> CaesarConfig {
    let counters = rng.gen_range(64usize..1024);
    CaesarConfig {
        cache_entries: rng.gen_range(1usize..120),
        entry_capacity: rng.gen_range(2u64..40),
        policy: rng.pick(&[CachePolicy::Lru, CachePolicy::Random, CachePolicy::Fifo]),
        counters,
        k: rng.gen_range(1usize..6).min(counters),
        counter_bits: rng.pick(&[8u32, 16, 32]),
        seed: rng.gen(),
        ..CaesarConfig::default()
    }
}

fn random_workload(rng: &mut StdRng) -> Vec<u64> {
    let population = rng.gen_range(1u64..60);
    rng.vec_with(200..3000, |r| {
        if r.gen_bool(0.8) {
            hashkit::mix::mix64(r.gen_range(0..population))
        } else {
            r.gen()
        }
    })
}

/// The headline acceptance property: stream under a random fault plan,
/// anchor a chain at a random point, cut 2–4 delta links at random
/// epoch boundaries, and replay every link into a restored replica.
/// Per link the replica must conserve mass exactly and its counter
/// array must equal the live engine's; at the end the live engine, the
/// link-by-link replica, and a wholesale [`OnlineCaesar::restore_chain`]
/// must all serialize to the same bytes.
#[test]
fn delta_chain_replays_byte_identical_across_geometries_and_faults() {
    for shards in [1usize, 2, 4] {
        for_each_seed_n(CASES, |rng| {
            let cfg = random_cfg(rng);
            let flows = random_workload(rng);
            let horizon = (flows.len() as u64 / shards as u64).max(1);
            let plan = FaultInjector::random_plan(rng, shards, horizon);

            let mut live = OnlineCaesar::new(cfg, shards)
                .with_policy(BackpressurePolicy::Block)
                .with_injector(plan);

            // Random epoch boundaries: the first cut anchors the
            // chain, each later cut seals one delta link (possibly
            // empty — a quiet epoch is a legal link).
            let links = rng.gen_range(2usize..5);
            let mut cuts: Vec<usize> =
                (0..links).map(|_| rng.gen_range(0..flows.len())).collect();
            cuts.push(flows.len());
            cuts.sort_unstable();

            for &f in &flows[..cuts[0]] {
                live.offer(f);
            }
            let base = live.snapshot();
            let mut replica = OnlineCaesar::restore(&base).expect("restore anchor");
            let mut prev_counters = replica.sram().snapshot();
            let mut deltas: Vec<Vec<u8>> = Vec::new();

            for pair in cuts.windows(2) {
                for &f in &flows[pair[0]..pair[1]] {
                    live.offer(f);
                }
                let delta = live.checkpoint_delta().expect("anchored chain");
                replica.apply_delta(&delta).expect("in-order link applies");
                deltas.push(delta);

                // Mass conservation per link: nothing offered to the
                // live engine leaks out of the replayed accounting.
                let st = replica.stats();
                assert_eq!(
                    st.recorded + st.dropped + st.quarantined + st.in_flight,
                    st.offered,
                    "link {}: mass leak after replay: {cfg:?} shards={shards}",
                    deltas.len()
                );
                assert_eq!(live.stats(), st, "link {}: stats diverge", deltas.len());

                // Dirty-bitmap soundness, observed end to end: the
                // replica only stores the blocks each link reported,
                // so every counter that moved since the previous epoch
                // must have been inside a reported dirty block — or it
                // could not match here.
                let now = live.sram().snapshot();
                let rep = replica.sram().snapshot();
                for (i, (&want, &got)) in now.iter().zip(&rep).enumerate() {
                    if want != prev_counters[i] {
                        assert_eq!(
                            got, want,
                            "link {}: counter {i} changed this epoch but was not \
                             covered by a dirty block: {cfg:?} shards={shards}",
                            deltas.len()
                        );
                    }
                }
                assert_eq!(rep, now, "link {}: counter arrays diverge", deltas.len());
                prev_counters = now;
            }

            // Byte-identity of the full serialized state, three ways.
            let final_live = live.snapshot();
            assert_eq!(
                final_live,
                replica.snapshot(),
                "link-by-link replay diverges: {cfg:?} shards={shards}"
            );
            let mut chained =
                OnlineCaesar::restore_chain(&base, &deltas).expect("wholesale chain restore");
            assert_eq!(
                final_live,
                chained.snapshot(),
                "restore_chain diverges: {cfg:?} shards={shards}"
            );
        });
    }
}

/// Delta chains are emitter-agnostic: links cut alternately by the
/// deterministic pump and by the detached-thread runtime splice into
/// one chain that replays byte-identical into a pump replica. The
/// live runtime handoffs mid-chain ([`ThreadedCaesar::from_online`]
/// and [`ThreadedCaesar::into_online`]) are invisible on the wire.
#[test]
fn chain_links_from_pump_and_threaded_emitters_splice() {
    for shards in [1usize, 2] {
        for_each_seed_n(CASES / 2, |rng| {
            let cfg = random_cfg(rng);
            let flows = random_workload(rng);
            let q = (flows.len() / 4).max(1);

            let mut pump = OnlineCaesar::new(cfg, shards);
            for &f in &flows[..q] {
                pump.offer(f);
            }
            pump.merge_now();
            let base = pump.snapshot();
            let mut replica = OnlineCaesar::restore(&base).expect("restore anchor");
            let mut deltas: Vec<Vec<u8>> = Vec::new();

            // Link 1: cut by the pump.
            for &f in &flows[q..2 * q] {
                pump.offer(f);
            }
            deltas.push(pump.checkpoint_delta().expect("anchored chain"));

            // Link 2: cut by the threaded runtime after a live handoff.
            let mut threaded = ThreadedCaesar::from_online(pump);
            threaded.offer_batch(&flows[2 * q..3 * q]);
            deltas.push(threaded.checkpoint_delta().expect("chain survives handoff"));

            // Link 3: cut by the pump again, handed back.
            let mut pump = threaded.into_online();
            for &f in &flows[3 * q..] {
                pump.offer(f);
            }
            pump.merge_now();
            deltas.push(pump.checkpoint_delta().expect("still anchored"));

            for (i, d) in deltas.iter().enumerate() {
                replica.apply_delta(d).unwrap_or_else(|e| {
                    panic!("mixed-emitter link {i} must apply: {e:?}")
                });
            }
            assert_eq!(
                pump.snapshot(),
                replica.snapshot(),
                "mixed-emitter replay diverges: {cfg:?} shards={shards}"
            );
            assert_eq!(pump.stats(), replica.stats());
            let mut chained =
                OnlineCaesar::restore_chain(&base, &deltas).expect("wholesale chain restore");
            assert_eq!(
                pump.snapshot(),
                chained.snapshot(),
                "restore_chain over mixed emitters diverges: {cfg:?} shards={shards}"
            );
        });
    }
}

/// A chain that carries a survived worker panic mid-link replays the
/// fault's aftermath (quarantine counters, respawn, fault log) and the
/// chain-restored engine resumes bit-identically to the live one.
#[test]
fn survived_panic_mid_chain_replays_and_resumes_identically() {
    for_each_seed_n(CASES / 2, |rng| {
        let cfg = random_cfg(rng);
        let flows = random_workload(rng);
        let cut = flows.len() / 3;
        // Pinned to fire after the anchor (cut packets) but before the
        // first delta link seals, so the panic's aftermath travels in
        // a delta, not in the base snapshot.
        let events = vec![FaultEvent {
            site: FaultSite::WorkerPanic,
            shard: 0,
            at_tick: cut as u64 + rng.gen_range(0..cut as u64 / 2),
        }];

        let mut live =
            OnlineCaesar::new(cfg, 1).with_injector(FaultInjector::with_events(events));
        for &f in &flows[..cut] {
            live.offer(f);
        }
        let base = live.snapshot();

        // The panic fires inside the first delta epoch.
        for &f in &flows[cut..2 * cut] {
            live.offer(f);
        }
        live.merge_now();
        assert_eq!(live.fault_log(0).panics(), 1, "panic must fire mid-chain");
        let d1 = live.checkpoint_delta().expect("anchored");
        for &f in &flows[2 * cut..] {
            live.offer(f);
        }
        let d2 = live.checkpoint_delta().expect("anchored");

        let mut chained =
            OnlineCaesar::restore_chain(&base, &[&d1, &d2]).expect("chain with a panic link");
        assert_eq!(chained.stats(), live.stats());
        assert_eq!(chained.fault_log(0).panics(), 1, "fault log survives the chain");
        assert_eq!(chained.lane_stats(0).respawns, 1);

        // Both engines keep running; the injector fired its only
        // event, so the resumed streams stay in lockstep.
        for i in 0..500u64 {
            let f = hashkit::mix::mix64(i ^ cfg.seed);
            live.offer(f);
            chained.offer(f);
        }
        assert_eq!(live.stats(), chained.stats());
        let (fa, fb) = (live.finish(), chained.finish());
        assert_eq!(fa.sram().snapshot(), fb.sram().snapshot(), "{cfg:?}");
        assert_eq!(fa.ingest_stats(), fb.ingest_stats());
    });
}

/// The size claim behind the whole feature, pinned at the acceptance
/// geometry: at `L = 32768`, a low-churn epoch (one hot flow) seals
/// into a delta several times smaller than the full snapshot it
/// replaces — and still replays byte-identically.
#[test]
fn low_churn_delta_is_many_times_smaller_than_a_full_snapshot() {
    let cfg = CaesarConfig {
        cache_entries: 64,
        entry_capacity: 16,
        counters: 32_768,
        k: 3,
        seed: 0xD17A,
        ..CaesarConfig::default()
    };
    let mut live = OnlineCaesar::new(cfg, 2);
    // Broad warm-up churns counters across the whole array.
    for i in 0..60_000u64 {
        live.offer(hashkit::mix::mix64(i));
    }
    live.merge_now();
    let base = live.snapshot();

    // Low-churn epoch: one hot flow dirties only a handful of blocks.
    for _ in 0..1_000 {
        live.offer(hashkit::mix::mix64(7));
    }
    live.merge_now();
    let delta = live.checkpoint_delta().expect("anchored");
    assert!(
        delta.len() * 5 <= base.len(),
        "low-churn delta must be >= 5x smaller: delta {} B vs snapshot {} B",
        delta.len(),
        base.len()
    );

    let mut replica = OnlineCaesar::restore(&base).expect("restore");
    replica.apply_delta(&delta).expect("apply");
    assert_eq!(live.snapshot(), replica.snapshot(), "small delta still replays exactly");
}

/// Broken chains are refused with typed errors and the replica stays
/// intact: gaps, replays, bit flips, frames from a different chain or
/// a different fleet, and frame-type confusion all name their reason,
/// and the chain completes after every rejection.
#[test]
fn misordered_foreign_and_corrupt_deltas_are_rejected_typed() {
    let cfg = CaesarConfig {
        cache_entries: 32,
        entry_capacity: 8,
        counters: 512,
        k: 3,
        seed: 0xCAFE,
        ..CaesarConfig::default()
    };
    let stream = |salt: u64, n: u64| (0..n).map(move |i| hashkit::mix::mix64(i ^ salt));

    let mut live = OnlineCaesar::new(cfg, 2);
    for f in stream(1, 600) {
        live.offer(f);
    }
    let base = live.snapshot();
    let mut deltas = Vec::new();
    for round in 2..5u64 {
        for f in stream(round, 400) {
            live.offer(f);
        }
        deltas.push(live.checkpoint_delta().expect("anchored"));
    }
    let (d1, d2, d3) = (&deltas[0], &deltas[1], &deltas[2]);

    let mut replica = OnlineCaesar::restore(&base).expect("restore");
    // Gap: link 2 before link 1.
    assert!(matches!(
        replica.apply_delta(d2),
        Err(DeltaError::Sequence { expected: 1, found: 2 })
    ));
    replica.apply_delta(d1).expect("in-order link");
    // Replay of an already-applied link.
    assert!(matches!(
        replica.apply_delta(d1),
        Err(DeltaError::Sequence { expected: 2, found: 1 })
    ));
    // Bit flip inside the sealed frame.
    let mut bent = d2.clone();
    let last = bent.len() - 1;
    bent[last] ^= 0x40;
    assert!(matches!(replica.apply_delta(&bent), Err(DeltaError::Seal(_))));
    // A delta cut from a different engine of the *same* fleet config:
    // right fingerprint, wrong chain.
    let mut stranger = OnlineCaesar::new(cfg, 2);
    for f in stream(77, 600) {
        stranger.offer(f);
    }
    stranger.snapshot();
    for f in stream(78, 100) {
        stranger.offer(f);
    }
    let foreign = stranger.checkpoint_delta().expect("anchored");
    assert!(matches!(
        replica.apply_delta(&foreign),
        Err(DeltaError::ForeignChain { .. })
    ));
    // A delta from a different fleet entirely: fingerprint mismatch.
    let mut alien = OnlineCaesar::new(CaesarConfig { seed: 0xBAD, ..cfg }, 2);
    for f in stream(9, 600) {
        alien.offer(f);
    }
    alien.snapshot();
    for f in stream(10, 100) {
        alien.offer(f);
    }
    let alien_delta = alien.checkpoint_delta().expect("anchored");
    assert!(matches!(
        replica.apply_delta(&alien_delta),
        Err(DeltaError::Incompatible(_))
    ));
    // Frame-type confusion, both directions.
    assert!(matches!(replica.apply_delta(&base), Err(DeltaError::BadMagic)));
    assert!(OnlineCaesar::restore(d1).is_err(), "a delta is not a snapshot");

    // Every rejection left the replica untouched: the chain completes
    // and the final bytes still match the live engine's.
    replica.apply_delta(d2).expect("in-order link");
    replica.apply_delta(d3).expect("in-order link");
    assert_eq!(live.snapshot(), replica.snapshot());

    // Wholesale restore names the offending link.
    assert!(matches!(
        OnlineCaesar::restore_chain(&base, &[d2]),
        Err(ChainError::Delta { index: 0, .. })
    ));
    assert!(matches!(
        OnlineCaesar::restore_chain(&base, &[d1, d3]),
        Err(ChainError::Delta { index: 1, .. })
    ));
    assert!(matches!(
        OnlineCaesar::restore_chain(d1, &[] as &[Vec<u8>]),
        Err(ChainError::Base(_))
    ));
}

/// The layer below the chain: every SRAM flavor's dirty-block bitmap
/// over-approximates change and never misses it — every counter whose
/// value moved since the last drain lies in a reported block, a drain
/// clears the bitmap, and later writes re-mark it.
#[test]
fn dirty_block_bitmaps_cover_every_changed_counter() {
    for_each_seed_n(CASES, |rng| {
        let len = rng.gen_range(1usize..2000);
        let bits = rng.pick(&[8u32, 16, 32]);
        let n_ops = rng.gen_range(1usize..200);
        let ops: Vec<(usize, u64)> =
            (0..n_ops).map(|_| (rng.gen_range(0..len), rng.gen_range(0..2000))).collect();

        let check = |name: &str, before: &[u64], after: &[u64], dirty: &[usize]| {
            assert!(dirty.windows(2).all(|w| w[0] < w[1]), "{name}: blocks ascending");
            let dirty: HashSet<usize> = dirty.iter().copied().collect();
            for (i, (&b, &a)) in before.iter().zip(after).enumerate() {
                if b != a {
                    assert!(
                        dirty.contains(&(i / DIRTY_BLOCK_COUNTERS)),
                        "{name}: counter {i} changed outside any dirty block (len={len})"
                    );
                }
            }
        };

        let mut plain = CounterArray::new(len, bits);
        let mut packed = PackedCounterArray::new(len, bits);
        let atomic = AtomicCounterArray::new(len, bits);
        // Drain construction-time state so the observed window is
        // exactly the ops below.
        plain.take_dirty_blocks();
        packed.take_dirty_blocks();
        atomic.take_dirty_blocks();

        let before: Vec<u64> = (0..len).map(|i| plain.get(i)).collect();
        for (i, &(idx, v)) in ops.iter().enumerate() {
            if i % 3 == 0 {
                plain.add_batch(&[(idx, v)]);
                packed.add_batch(&[(idx, v)]);
                atomic.add_batch(&[(idx, v)]);
            } else {
                plain.add(idx, v);
                packed.add(idx, v);
                atomic.add(idx, v);
            }
        }

        let after_plain: Vec<u64> = (0..len).map(|i| plain.get(i)).collect();
        let after_packed: Vec<u64> = (0..len).map(|i| packed.get(i)).collect();
        let after_atomic = atomic.snapshot();
        check("CounterArray", &before, &after_plain, &plain.take_dirty_blocks());
        check("PackedCounterArray", &before, &after_packed, &packed.take_dirty_blocks());
        check("AtomicCounterArray", &before, &after_atomic, &atomic.take_dirty_blocks());

        // A drain means *drained*: nothing reported twice, and the
        // next write re-marks its block.
        assert!(plain.take_dirty_blocks().is_empty());
        assert!(packed.take_dirty_blocks().is_empty());
        assert!(atomic.take_dirty_blocks().is_empty());
        let idx = ops[0].0;
        plain.add(idx, 1);
        packed.add(idx, 1);
        atomic.add(idx, 1);
        let block = idx / DIRTY_BLOCK_COUNTERS;
        assert_eq!(plain.take_dirty_blocks(), vec![block]);
        assert_eq!(packed.take_dirty_blocks(), vec![block]);
        assert_eq!(atomic.take_dirty_blocks(), vec![block]);
    });
}
