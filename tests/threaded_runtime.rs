//! Acceptance suite for the detached-thread online runtime
//! (`caesar::threaded::ThreadedCaesar`) against its deterministic
//! oracle (`caesar::online::OnlineCaesar`, the single-owner pump):
//!
//! * a **fault-free** threaded run must be bit-identical to the pump at
//!   every epoch boundary (snapshot bytes equal) and `finish()`
//!   bit-identical to the batch build, at 1/2/4 shards;
//! * an injected worker-thread **hang** must be detected by the
//!   wall-clock heartbeat monitor (two missed deadlines) and failed
//!   over with the exact-loss invariant
//!   `offered == recorded + dropped + quarantined` intact;
//! * an injected worker-thread **panic** must respawn the worker in
//!   place with exact accounting and **no** failover;
//! * a **slow** worker (one heartbeat-interval stall) must ride out the
//!   two-deadline budget without tripping failover;
//! * `snapshot → restore → resume` while detached workers are live
//!   (quiesce-then-checkpoint) must be byte-identical to the
//!   uninterrupted run, including across the pump/threaded boundary
//!   and after a survived hang failover.
//!
//! Wall-clock discipline: fault-free cases run with a deliberately
//! enormous heartbeat interval (the monitor must never fire on an
//! oversubscribed CI host); hang cases run with a small one so the
//! two-deadline verdict lands in milliseconds, and every waiting loop
//! in the engine is verdict-bounded, so nothing here can wedge.

use std::time::Duration;

use caesar::{
    CaesarConfig, ConcurrentCaesar, FaultKind, OnlineCaesar, ThreadedCaesar,
};
use support::testkit::{FaultEvent, FaultInjector, FaultSite, INJECTED_PANIC};

/// Heartbeat for fault-free runs: long enough that the monitor can
/// never legitimately fire, however starved the host.
const QUIET: Duration = Duration::from_secs(5);

/// Heartbeat for hang-detection runs: short enough that the
/// two-deadline verdict lands quickly.
const JUMPY: Duration = Duration::from_millis(25);

fn cfg() -> CaesarConfig {
    CaesarConfig {
        cache_entries: 96,
        entry_capacity: 8,
        counters: 2048,
        k: 3,
        ..CaesarConfig::default()
    }
}

fn workload(n: usize) -> Vec<u64> {
    (0..n).map(|i| hashkit::mix::mix64((i % 257) as u64)).collect()
}

fn assert_conserved(st: &caesar::OnlineStats) {
    assert_eq!(
        st.recorded + st.dropped + st.quarantined + st.in_flight,
        st.offered,
        "mass leak: {st:?}"
    );
}

/// The headline bit-identity oracle: the same stream through the pump
/// and through real detached worker threads must serialize to the very
/// same bytes at an interior epoch boundary and at the end, and finish
/// to the very same sketch — at every shard count.
#[test]
fn fault_free_threaded_matches_pump_oracle_bitwise() {
    const EPOCH: u64 = 2048;
    let flows = workload(4 * EPOCH as usize);
    let half = 2 * EPOCH as usize; // an interior epoch boundary
    for shards in [1usize, 2, 4] {
        let mut pump = OnlineCaesar::new(cfg(), shards).with_epoch_len(EPOCH);
        let mut threaded = ThreadedCaesar::new(cfg(), shards)
            .with_epoch_len(EPOCH)
            .with_heartbeat_interval(QUIET);

        for &f in &flows[..half] {
            pump.offer(f);
            threaded.offer(f);
        }
        assert_eq!(
            pump.snapshot(),
            threaded.snapshot(),
            "snapshot divergence at interior epoch boundary, shards={shards}"
        );

        for &f in &flows[half..] {
            pump.offer(f);
            threaded.offer(f);
        }
        assert_eq!(pump.stats(), threaded.stats(), "stats divergence, shards={shards}");
        assert_eq!(
            pump.snapshot(),
            threaded.snapshot(),
            "final snapshot divergence, shards={shards}"
        );

        let from_pump = pump.finish();
        let from_threads = threaded.finish();
        let batch = ConcurrentCaesar::build(cfg(), shards, &flows);
        assert_eq!(
            from_threads.sram().snapshot(),
            batch.sram().snapshot(),
            "threaded finish diverged from batch build, shards={shards}"
        );
        assert_eq!(
            from_threads.sram().snapshot(),
            from_pump.sram().snapshot(),
            "threaded finish diverged from pump finish, shards={shards}"
        );
        assert_eq!(from_threads.sram().total_added(), flows.len() as u64);
        for &f in &flows[..16] {
            assert_eq!(from_threads.query(f), batch.query(f));
        }
    }
}

/// A worker thread that stops heartbeating entirely must be declared
/// hung by the monitor after two missed wall-clock deadlines and
/// failed over: ring sealed, in-flight quarantined exactly, salvaged
/// mass preserved, fresh worker serving the lane afterwards.
#[test]
fn injected_hang_triggers_heartbeat_failover_with_exact_loss() {
    let shards = 2;
    let flows = workload(40_000);
    let plan = FaultInjector::with_events(vec![FaultEvent {
        site: FaultSite::WorkerHang,
        shard: 0,
        at_tick: 3,
    }]);
    let mut online = ThreadedCaesar::new(cfg(), shards)
        .with_heartbeat_interval(JUMPY)
        .with_injector(plan);
    for &f in &flows {
        online.offer(f);
    }
    online.merge_now(); // drains every lane dry (failover included)

    let st = online.stats();
    assert_eq!(st.offered, flows.len() as u64);
    assert_eq!(st.in_flight, 0);
    assert_eq!(st.dropped, 0, "Block policy never sheds");
    assert_eq!(
        st.recorded + st.quarantined,
        st.offered,
        "post-failover mass leak: {st:?}"
    );
    assert!(st.failovers >= 1, "heartbeat monitor never fired: {st:?}");
    assert!(
        st.quarantined > 0,
        "a hung lane under sustained offered load must quarantine its in-flight mass"
    );

    // The hang fired at a batch boundary, so the accounting is exact
    // and the record says what happened in wall-clock terms.
    let log = online.fault_log(0);
    assert!(log.failovers() >= 1);
    assert!(log.is_exact(), "batch-boundary hang must keep exact accounting");
    let rec = log
        .records
        .iter()
        .find(|r| r.kind == FaultKind::WatchdogFailover)
        .expect("failover record");
    assert!(
        rec.payload.contains("heartbeat") && rec.payload.contains("deadline"),
        "failover record should speak wall-clock: {:?}",
        rec.payload
    );
    // The untouched lane saw no faults.
    assert_eq!(online.fault_log(1).records.len(), 0);

    // Still serving, and the sketch holds exactly the surviving mass.
    assert!(online.query(flows[0]).is_finite());
    assert_eq!(
        online.sram().total_added() + online.unmerged_units(),
        st.recorded,
        "surviving mass must equal recorded packets"
    );
    let health = online.query_health(flows[0]);
    assert!(health.confidence < 1.0, "quarantine loss must dent confidence");
}

/// A worker panic on the worker's own thread is a *wound*, not a hang:
/// the engine salvages, respawns the state machine in place (same
/// thread), accounts the batch remainder exactly — and the heartbeat
/// monitor must not confuse it with a hang.
#[test]
fn injected_thread_panic_respawns_in_place_exactly() {
    let shards = 2;
    let flows = workload(20_000);
    let plan = FaultInjector::with_events(vec![
        FaultEvent { site: FaultSite::WorkerPanic, shard: 0, at_tick: 100 },
        FaultEvent { site: FaultSite::WorkerPanic, shard: 1, at_tick: 900 },
    ]);
    let mut online = ThreadedCaesar::new(cfg(), shards)
        .with_heartbeat_interval(QUIET)
        .with_injector(plan);
    for &f in &flows {
        online.offer(f);
    }
    online.merge_now();

    let st = online.stats();
    assert_eq!(st.offered, flows.len() as u64);
    assert_eq!(st.in_flight, 0);
    assert_eq!(st.recorded + st.quarantined, st.offered);
    assert_eq!(st.failovers, 0, "a panic is serviced in place, not failed over");
    assert_eq!(st.respawns, 2, "one respawn per injected panic");
    for s in 0..shards {
        let log = online.fault_log(s);
        assert_eq!(log.panics(), 1);
        assert!(log.is_exact(), "injected panics fire between packets");
        assert!(log.records[0].payload.contains(INJECTED_PANIC));
    }
    assert_eq!(
        online.sram().total_added() + online.unmerged_units(),
        st.recorded
    );
    let sketch = online.finish();
    assert_eq!(sketch.sram().total_added(), st.recorded);
}

/// A worker that is merely *slow* — one whole heartbeat interval late —
/// is inside the two-deadline budget and must not be failed over:
/// degraded is not dead, and a false verdict would quarantine real
/// traffic.
#[test]
fn slow_drain_stays_within_deadline_budget() {
    let flows = workload(6_000);
    let plan = FaultInjector::with_events(vec![FaultEvent {
        site: FaultSite::SlowDrain,
        shard: 0,
        at_tick: 2,
    }]);
    let mut online = ThreadedCaesar::new(cfg(), 1)
        .with_heartbeat_interval(Duration::from_millis(150))
        .with_injector(plan);
    for &f in &flows {
        online.offer(f);
    }
    online.merge_now();

    let st = online.stats();
    assert_eq!(st.failovers, 0, "a slow worker must not trip failover: {st:?}");
    assert_eq!(st.quarantined, 0);
    assert_eq!(st.respawns, 0);
    assert_eq!(st.recorded, st.offered, "every packet lands despite the stall");
    assert!(online.fault_log(0).records.is_empty());
}

/// Quiesce-then-checkpoint while detached workers are live: a snapshot
/// taken mid-stream (workers parked, rings drained) must restore —
/// into a threaded engine *or* the pump — and resume to a byte-
/// identical end state versus the uninterrupted run.
#[test]
fn live_snapshot_restore_resumes_identically() {
    const EPOCH: u64 = 1024;
    let flows = workload(5_000); // snapshot point is NOT an epoch boundary
    let cut = 2_300;
    let mut original = ThreadedCaesar::new(cfg(), 2)
        .with_epoch_len(EPOCH)
        .with_heartbeat_interval(QUIET);
    for &f in &flows[..cut] {
        original.offer(f);
    }
    let snap = original.snapshot(); // quiesces, encodes, resumes

    let mut restored_threaded = ThreadedCaesar::restore(&snap).expect("restore threaded");
    let mut restored_pump = OnlineCaesar::restore(&snap).expect("restore pump");
    assert_eq!(restored_threaded.stats(), original.stats());

    for &f in &flows[cut..] {
        original.offer(f);
        restored_threaded.offer(f);
        restored_pump.offer(f);
    }
    // The pump's rings are only guaranteed dry at a merge point, and
    // the byte-identity contract is stated at boundaries — drain all
    // three engines before comparing.
    original.merge_now();
    restored_threaded.merge_now();
    restored_pump.merge_now();
    let a = original.snapshot();
    let b = restored_threaded.snapshot();
    let c = restored_pump.snapshot();
    assert_eq!(a, b, "threaded restore diverged from uninterrupted run");
    assert_eq!(a, c, "pump restore of a threaded snapshot diverged");

    let done = original.finish();
    let batch = ConcurrentCaesar::build(cfg(), 2, &flows);
    assert_eq!(done.sram().snapshot(), batch.sram().snapshot());
}

/// Delta-checkpoint chains emitted by a live threaded engine
/// (quiesce → `CDLT` frame → resume) must restore through
/// `restore_chain` to the same bytes as the engine that emitted them.
#[test]
fn restore_chain_from_live_threaded_engine() {
    const EPOCH: u64 = 1024;
    let flows = workload(6_000);
    let mut online = ThreadedCaesar::new(cfg(), 2)
        .with_epoch_len(EPOCH)
        .with_heartbeat_interval(QUIET);

    for &f in &flows[..2_000] {
        online.offer(f);
    }
    let base = online.snapshot();
    assert!(online.chain_position().is_some());

    let mut deltas = Vec::new();
    for chunk in [2_000..3_500, 3_500..6_000] {
        for &f in &flows[chunk] {
            online.offer(f);
        }
        deltas.push(online.checkpoint_delta().expect("anchored chain"));
    }
    assert_eq!(online.chain_position().map(|(_, seq)| seq), Some(2));

    let mut revived =
        ThreadedCaesar::restore_chain(&base, &deltas).expect("chain restores");
    assert_eq!(revived.stats(), online.stats());
    assert_eq!(
        revived.snapshot(),
        online.snapshot(),
        "chain-restored engine diverged from the emitter"
    );
}

/// The full robustness story end to end: a hang failover, then a
/// snapshot of the survivor, then restore — the fault history, the
/// quarantine accounting and the surviving mass all cross the
/// checkpoint intact, and the revived engine keeps serving.
#[test]
fn snapshot_after_hang_failover_preserves_fault_history() {
    let flows = workload(30_000);
    let plan = FaultInjector::with_events(vec![FaultEvent {
        site: FaultSite::WorkerHang,
        shard: 0,
        at_tick: 2,
    }]);
    let mut online = ThreadedCaesar::new(cfg(), 1)
        .with_heartbeat_interval(JUMPY)
        .with_injector(plan);
    for &f in &flows {
        online.offer(f);
    }
    online.merge_now();
    let st = online.stats();
    assert!(st.failovers >= 1 && st.quarantined > 0, "precondition: {st:?}");

    let snap = online.snapshot();
    let mut revived = ThreadedCaesar::restore(&snap).expect("restore survivor");
    let rst = revived.stats();
    assert_eq!(rst, st, "accounting must cross the checkpoint intact");
    let log = revived.fault_log(0);
    assert!(log.failovers() >= 1, "fault history lost in restore");
    assert!(log.records.iter().any(|r| r.payload.contains("heartbeat")));

    // The revived engine is healthy: offer more, stay conserved, finish.
    for &f in &flows[..5_000] {
        revived.offer(f);
    }
    let mid = revived.stats();
    assert_conserved(&mid);
    assert_eq!(mid.offered, st.offered + 5_000);
    // finish() drains what was still in flight at `mid`, so the final
    // sketch holds everything offered minus the quarantined loss.
    let sketch = revived.finish();
    assert_eq!(
        sketch.sram().total_added(),
        mid.offered - mid.dropped - mid.quarantined
    );
}

/// Handoff both ways without a codec round trip: a pump engine picked
/// up mid-stream by real threads (`from_online`), then handed back
/// (`into_online`), must end bit-identical to a pump that ran the
/// whole stream itself.
#[test]
fn pump_to_threads_and_back_is_bit_preserving() {
    const EPOCH: u64 = 1024;
    let flows = workload(5_000);
    let mut oracle = OnlineCaesar::new(cfg(), 2).with_epoch_len(EPOCH);
    let mut pump = OnlineCaesar::new(cfg(), 2).with_epoch_len(EPOCH);
    for &f in &flows[..1_700] {
        oracle.offer(f);
        pump.offer(f);
    }
    let mut threaded = ThreadedCaesar::from_online(pump);
    for &f in &flows[1_700..3_400] {
        oracle.offer(f);
        threaded.offer(f);
    }
    let mut pump_again = threaded.into_online();
    for &f in &flows[3_400..] {
        oracle.offer(f);
        pump_again.offer(f);
    }
    assert_eq!(oracle.stats(), pump_again.stats());
    assert_eq!(
        oracle.snapshot(),
        pump_again.snapshot(),
        "pump→threads→pump handoff must be bit-preserving"
    );
}
