//! Integration tests for the systems built beyond the paper's core:
//! concurrent construction, epochs + trace transforms, flow-volume
//! mode, and the full §2.1 scheme family on one trace.

use baselines::{AnlsCounter, CedarScale, SacCounter, Vhc, VhcConfig};
use caesar::epochs::EpochedCaesar;
use caesar::ConcurrentCaesar;
use caesar_repro::prelude::*;
use flowtrace::transform;
use support::rand::{rngs::StdRng, SeedableRng};

fn trace() -> (Trace, std::collections::HashMap<FlowId, u64>) {
    TraceGenerator::new(SynthConfig {
        num_flows: 8_000,
        seed: 0xE27,
        ..SynthConfig::default()
    })
    .generate()
}

#[test]
fn concurrent_matches_sequential_accuracy_at_scale() {
    let (trace, truth) = trace();
    let flows: Vec<u64> = trace.packets.iter().map(|p| p.flow).collect();
    let cfg = CaesarConfig {
        cache_entries: 1024,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 8192,
        k: 3,
        ..CaesarConfig::default()
    };
    let conc = ConcurrentCaesar::build(cfg, 4, &flows);
    let mut seq = Caesar::new(cfg);
    for &f in &flows {
        seq.record(f);
    }
    seq.finish();
    assert_eq!(conc.sram().total_added(), seq.sram().total_added());

    // Large flows: both pipelines within a few percent of truth.
    let mut large: Vec<(u64, u64)> = truth
        .iter()
        .filter(|(_, &x)| x >= 2000)
        .map(|(&f, &x)| (f, x))
        .collect();
    large.sort_unstable();
    assert!(!large.is_empty());
    for (f, x) in large {
        let a = conc.query(f);
        let b = seq.query(f);
        assert!((a - x as f64).abs() / (x as f64) < 0.5, "concurrent flow {f}: {a} vs {x}");
        assert!((b - x as f64).abs() / (x as f64) < 0.5, "sequential flow {f}: {b} vs {x}");
    }
}

#[test]
fn epoch_rotation_over_split_trace_matches_per_epoch_truth() {
    let (trace, _) = trace();
    let epochs = transform::split_epochs(&trace, 4);
    let cfg = CaesarConfig {
        cache_entries: 1024,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 8192,
        k: 3,
        ..CaesarConfig::default()
    };
    let mut monitor = EpochedCaesar::new(cfg, 4);
    for epoch in &epochs {
        for p in &epoch.packets {
            monitor.record(p.flow);
        }
        monitor.rotate();
    }
    // The biggest flow of epoch 2, measured against epoch-2 truth.
    let sizes = transform::flow_sizes(&epochs[2]);
    let &(big, actual) = sizes.iter().max_by_key(|&&(_, x)| x).expect("flows");
    let est = monitor.query_epoch(2, big).expect("epoch retained");
    assert!(
        (est - actual as f64).abs() / (actual as f64) < 0.3,
        "epoch 2 flow {big:x}: est {est} vs actual {actual}"
    );
}

#[test]
fn volume_mode_tracks_exact_byte_counts() {
    let (trace, _) = trace();
    let exact = ExactCounter::from_trace(&trace);
    let mean_bytes = trace
        .packets
        .iter()
        .map(|p| p.byte_len as u64)
        .sum::<u64>() as f64
        / trace.num_packets() as f64;
    let mut sketch = Caesar::new(CaesarConfig {
        cache_entries: 1024,
        entry_capacity: (2.0 * trace.mean_flow_size() * mean_bytes) as u64,
        counters: 8192,
        k: 3,
        counter_bits: 40,
        ..CaesarConfig::default()
    });
    for p in &trace.packets {
        sketch.record_weighted(p.flow, p.byte_len as u64);
    }
    sketch.finish();

    // Total conservation in byte units.
    let total_bytes: u64 = trace.packets.iter().map(|p| p.byte_len as u64).sum();
    assert_eq!(sketch.sram().total_added(), total_bytes);

    // The biggest flow by volume is recovered within a few percent.
    let (big, vol) = exact
        .iter()
        .map(|(f, _)| (f, exact.volume(f)))
        .max_by_key(|&(_, v)| v)
        .expect("flows");
    let est = sketch.query(big);
    assert!(
        (est - vol as f64).abs() / (vol as f64) < 0.1,
        "flow {big:x}: est {est} vs volume {vol}"
    );
}

#[test]
fn all_single_counter_schemes_agree_on_one_workload() {
    // One elephant counted by every §2.1 single-counter compressor.
    let n = 40_000u64;
    let mut rng = StdRng::seed_from_u64(0xFA0);

    let mut sac = SacCounter::new(10, 4, 1);
    sac.add(n, &mut rng);

    let mut anls = AnlsCounter::for_range(14, 1e6);
    anls.add(n, &mut rng);

    let cedar = CedarScale::new(12, 0.1);
    let cedar_est = cedar.estimate(cedar.add(0, n, &mut rng));

    let disco = baselines::DiscoScale::for_bits(14, 1e6);
    let mut c = 0u64;
    for _ in 0..(n / 50) {
        c = disco.apply_bulk(c, 50, &mut rng);
    }
    let disco_est = disco.decompress(c);

    for (name, est) in [
        ("SAC", sac.estimate()),
        ("ANLS", anls.estimate()),
        ("CEDAR", cedar_est),
        ("DISCO", disco_est),
    ] {
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.35, "{name}: {est} vs {n}");
    }
}

#[test]
fn vhc_measures_the_trace_with_one_access_per_packet() {
    let (trace, truth) = trace();
    let mut vhc = Vhc::new(VhcConfig {
        registers: 1 << 15,
        virtual_registers: 128,
        seed: 0x77,
    });
    for p in &trace.packets {
        vhc.record(p.flow);
    }
    let total = vhc.total_estimate();
    // Biggest flows recovered within HLL noise + sharing.
    let mut flows: Vec<(u64, u64)> = truth.iter().map(|(&f, &x)| (f, x)).collect();
    flows.sort_by_key(|&(_, x)| std::cmp::Reverse(x));
    for &(f, x) in flows.iter().take(5) {
        let est = vhc.query_with_total(f, total);
        assert!(
            (est - x as f64).abs() / (x as f64) < 0.5,
            "flow {f:x}: est {est} vs {x}"
        );
    }
}

#[test]
fn anonymized_trace_measures_identically() {
    let (trace, _) = trace();
    let anon = transform::anonymize(&trace, 0xAE4);
    let cfg = CaesarConfig {
        cache_entries: 512,
        entry_capacity: trace.recommended_entry_capacity(),
        counters: 4096,
        k: 3,
        ..CaesarConfig::default()
    };
    let run = |t: &Trace| {
        let mut c = Caesar::new(cfg);
        for p in &t.packets {
            c.record(p.flow);
        }
        c.finish();
        c.sram().total_added()
    };
    assert_eq!(run(&trace), run(&anon));
    assert_eq!(anon.num_flows, trace.num_flows);
}
