//! Acceptance properties for mergeable sketches (DESIGN.md §4h).
//!
//! The pinned property: `merge(build(A), build(B))` equals
//! `build(A ∥ B)` **byte-for-byte** whenever no counter clamps, and is
//! clamped-and-flagged (never silently wrong) when counters saturate —
//! across random geometries and every combination of 1/2/4 ingest
//! shards on either side.
//!
//! Exact linearity needs the builds to be RNG-free and eviction-order
//! free, which the regime below guarantees by construction:
//!
//! * every per-flow packet count is a multiple of `k`, so each
//!   eviction splits `e = p·k + 0` — no remainder units, no RNG draw,
//!   and each of the flow's `k` counters receives exactly `count/k`
//!   regardless of when the eviction happens;
//! * `entry_capacity` exceeds the largest combined per-flow count and
//!   the cache holds every flow on every shard, so the only evictions
//!   are the final dump — no mid-stream overflow or replacement can
//!   split a count into non-multiple-of-`k` pieces.
//!
//! Under that regime the final SRAM is a pure function of the
//! per-flow totals, so separate builds compose exactly. Saturating
//! adds commute with the composition (`min(a+b, cap)` either way), so
//! counter *values* stay byte-equal even above the clamp; only the
//! saturation-event tallies legitimately differ (one crossing per
//! merge vs. one per offending add), which is why the clamped case
//! asserts values-equal + flagged rather than tally-equal.

use caesar::{CaesarConfig, ConcurrentCaesar, SketchPayload};
use support::rand::Rng;
use support::testkit::for_each_seed;

const SHARD_GRID: [usize; 3] = [1, 2, 4];

/// Emit `counts[i].1` packets for flow `counts[i].0`, round-robin
/// interleaved so cache entries stay concurrently live.
fn interleave(counts: &[(u64, u64)]) -> Vec<u64> {
    let mut out = Vec::new();
    let mut round = 0;
    loop {
        let mut emitted = false;
        for &(flow, count) in counts {
            if round < count {
                out.push(flow);
                emitted = true;
            }
        }
        if !emitted {
            return out;
        }
        round += 1;
    }
}

/// Random per-flow counts, each a multiple of `k` (possibly zero).
fn multiples_of_k(
    rng: &mut support::rand::rngs::StdRng,
    flows: &[u64],
    k: usize,
    max_multiple: u64,
) -> Vec<(u64, u64)> {
    flows
        .iter()
        .map(|&f| (f, k as u64 * rng.gen_range(0..=max_multiple)))
        .collect()
}

fn build(cfg: &CaesarConfig, shards: usize, flows: &[u64]) -> ConcurrentCaesar {
    ConcurrentCaesar::build(*cfg, shards, flows)
}

/// Below the clamp: merged view is bit-identical to the single-box
/// build of the concatenated stream, for every shard combination.
#[test]
fn merge_equals_combined_build_byte_for_byte() {
    for_each_seed(|rng| {
        let k = rng.gen_range(1usize..=4);
        let num_flows = rng.gen_range(4usize..=24);
        let flows: Vec<u64> = (0..num_flows).map(|_| rng.gen()).collect();
        let a_counts = multiples_of_k(rng, &flows, k, 8);
        let b_counts = multiples_of_k(rng, &flows, k, 8);
        let combined_max: u64 = a_counts
            .iter()
            .zip(&b_counts)
            .map(|(a, b)| a.1 + b.1)
            .max()
            .unwrap();
        let cfg = CaesarConfig {
            // Every shard's cache slice holds every flow even at 4
            // shards (per_shard_entries divides cache_entries).
            cache_entries: 4 * num_flows.max(1),
            entry_capacity: combined_max + k as u64 + 1,
            counters: rng.gen_range(64usize..512),
            k,
            counter_bits: 40, // far above any reachable sum: no clamps
            seed: rng.gen(),
            ..CaesarConfig::default()
        };
        let trace_a = interleave(&a_counts);
        let trace_b = interleave(&b_counts);
        let mut trace_ab = trace_a.clone();
        trace_ab.extend_from_slice(&trace_b);

        for i in 0..SHARD_GRID.len() {
            let (sa, sb, sab) = (
                SHARD_GRID[i],
                SHARD_GRID[(i + 1) % 3],
                SHARD_GRID[(i + 2) % 3],
            );
            let a = build(&cfg, sa, &trace_a);
            let b = build(&cfg, sb, &trace_b);
            let ab = build(&cfg, sab, &trace_ab);

            let mut merged = ConcurrentCaesar::empty(cfg);
            merged.merge(&a).expect("fingerprints match");
            merged.merge(&b).expect("fingerprints match");

            assert_eq!(
                merged.sram().snapshot(),
                ab.sram().snapshot(),
                "shards = ({sa},{sb},{sab}), k = {k}"
            );
            assert_eq!(merged.sram().total_added(), ab.sram().total_added());
            assert_eq!(merged.sram().saturations(), 0);
            assert_eq!(ab.sram().saturations(), 0);
            // Estimates over the merged view are bit-identical too:
            // same counters, same totals, same estimator inputs.
            for &(flow, _) in &a_counts {
                assert_eq!(
                    merged.query(flow).to_bits(),
                    ab.query(flow).to_bits(),
                    "flow {flow:#x}"
                );
            }

            // The wire path (export → encode → decode → merge_sketch)
            // lands on the identical cluster view.
            let mut wired = ConcurrentCaesar::empty(cfg);
            for node in [&a, &b] {
                let payload =
                    SketchPayload::decode(&node.export_sketch().encode()).expect("payload");
                wired.merge_sketch(&payload).expect("fingerprints match");
            }
            assert_eq!(wired.sram().snapshot(), ab.sram().snapshot());
            assert_eq!(wired.sram().total_added(), ab.sram().total_added());
        }
    });
}

/// Above the clamp: counter values still agree byte-for-byte (both
/// paths pin at `max_value`), and the merged view *flags* the damage —
/// saturation events recorded, query health degraded — instead of
/// silently under-counting.
#[test]
fn merge_above_clamp_is_clamped_and_flagged() {
    for_each_seed(|rng| {
        let k = rng.gen_range(1usize..=4);
        let num_flows = rng.gen_range(4usize..=12);
        let flows: Vec<u64> = (0..num_flows).map(|_| rng.gen()).collect();
        // Large counts into few, narrow counters: per-counter share is
        // count/k ≥ 100 against a cap of at most 63, so every flow's
        // counters pin with certainty.
        let a_counts = multiples_of_k(rng, &flows, k, 200);
        let b_counts: Vec<(u64, u64)> = flows
            .iter()
            .map(|&f| (f, k as u64 * rng.gen_range(100..=200)))
            .collect();
        let combined_max: u64 = a_counts
            .iter()
            .zip(&b_counts)
            .map(|(a, b)| a.1 + b.1)
            .max()
            .unwrap();
        let cfg = CaesarConfig {
            cache_entries: 4 * num_flows,
            entry_capacity: combined_max + k as u64 + 1,
            counters: rng.gen_range(16usize..64),
            k,
            counter_bits: rng.gen_range(4u32..=6), // cap 15..=63
            seed: rng.gen(),
            ..CaesarConfig::default()
        };
        let trace_a = interleave(&a_counts);
        let trace_b = interleave(&b_counts);
        let mut trace_ab = trace_a.clone();
        trace_ab.extend_from_slice(&trace_b);

        let a = build(&cfg, 2, &trace_a);
        let b = build(&cfg, 4, &trace_b);
        let ab = build(&cfg, 1, &trace_ab);

        let mut merged = ConcurrentCaesar::empty(cfg);
        merged.merge(&a).unwrap();
        merged.merge(&b).unwrap();

        // Values agree (saturating add composes), tallies flag damage.
        assert_eq!(merged.sram().snapshot(), ab.sram().snapshot());
        assert_eq!(merged.sram().total_added(), ab.sram().total_added());
        assert!(merged.sram().saturations() > 0, "clamps must be recorded");
        assert!(ab.sram().saturations() > 0);
        assert!(merged.sram().saturated_fraction() > 0.0);

        // Every flow was driven past the cap, so its k counters are
        // pinned and health must report a degraded, low-confidence
        // estimate.
        let (flow, _) = b_counts[0];
        let health = merged.query_health(flow);
        assert!(health.is_degraded(), "saturated view must be flagged");
        assert!(health.confidence < 1.0);
        assert_eq!(health.saturated_counters, k);
    });
}

/// Sum conservation needs no special regime: for *arbitrary* traces
/// below the clamp, merged mass equals the sum of the parts (eviction
/// split and remainder scattering conserve units exactly).
#[test]
fn merge_conserves_mass_for_arbitrary_traces() {
    for_each_seed(|rng| {
        let cfg = CaesarConfig {
            cache_entries: rng.gen_range(4usize..64),
            entry_capacity: rng.gen_range(2u64..32),
            counters: rng.gen_range(32usize..512),
            k: rng.gen_range(1usize..=4),
            counter_bits: 40,
            seed: rng.gen(),
            ..CaesarConfig::default()
        };
        let trace_a: Vec<u64> =
            (0..rng.gen_range(0usize..1500)).map(|_| rng.gen_range(0u64..100)).collect();
        let trace_b: Vec<u64> =
            (0..rng.gen_range(0usize..1500)).map(|_| rng.gen_range(0u64..100)).collect();
        let a = build(&cfg, 2, &trace_a);
        let b = build(&cfg, 1, &trace_b);
        let mut merged = ConcurrentCaesar::empty(cfg);
        merged.merge(&a).unwrap();
        merged.merge(&b).unwrap();
        let total = (trace_a.len() + trace_b.len()) as u64;
        assert_eq!(merged.sram().total_added(), total);
        assert_eq!(merged.sram().sum(), total);
    });
}
