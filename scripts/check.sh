#!/usr/bin/env bash
# Canonical tier-1 entrypoint: build + test the whole workspace fully
# offline. The workspace has zero crates.io dependencies (see
# CONTRIBUTING.md, "Vendored-shim policy"), so `--offline` must never
# be the reason a step fails — if it is, a crates.io dependency snuck
# back in and that is the bug.
#
# Usage: scripts/check.sh
# Environment:
#   CHECK_WORKSPACE=0   restrict tests to the root package (the seed's
#                       tier-1 definition); default runs --workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline

if [ "${CHECK_WORKSPACE:-1}" = "1" ]; then
    run cargo test -q --offline --workspace
else
    run cargo test -q --offline
fi

# Benches and examples are not exercised by `cargo test`; keep them
# compiling so the figure/bench harnesses never rot. Build them in
# release too: the bench trajectory (scripts/bench_trajectory.sh) runs
# release binaries, and an -O-only codegen error must fail CI, not the
# first perf run.
run cargo build --offline --benches --examples --workspace
run cargo build --release --offline --benches --examples --workspace

# Clippy with -D warnings is part of tier-1 wherever the component is
# installed; it is skipped (loudly) only when the toolchain ships
# without it, so its absence must not fail the offline sandbox.
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint step"
fi

echo "check.sh: all green"
