#!/usr/bin/env bash
# Canonical tier-1 entrypoint: build + test the whole workspace fully
# offline. The workspace has zero crates.io dependencies (see
# CONTRIBUTING.md, "Vendored-shim policy"), so `--offline` must never
# be the reason a step fails — if it is, a crates.io dependency snuck
# back in and that is the bug.
#
# Usage: scripts/check.sh [--quick-bench | --fault-smoke | --zoo-smoke | --service-smoke | --simd-smoke | --delta-smoke | --thread-smoke]
#   --thread-smoke      threaded-runtime smoke mode: run the
#                       detached-thread acceptance suite
#                       (tests/threaded_runtime.rs — fault-free
#                       byte-identity to the pump oracle at 1/2/4
#                       shards, heartbeat failover on an injected hang
#                       with exact loss accounting, in-place panic
#                       respawn, live quiesce-snapshot/restore, delta
#                       chains, pump↔threads handoff) plus the thread
#                       chaos property in tests/fault_tolerance.rs, in
#                       release, under a hard wall-clock timeout — a
#                       supervision bug whose symptom is "a drain wait
#                       never returns" must fail the smoke, not wedge
#                       it.
#   --delta-smoke       delta-checkpoint smoke mode: run the epoch-delta
#                       acceptance suite (tests/delta_checkpoint.rs —
#                       base+deltas replays byte-identical across random
#                       geometries × shard counts × fault plans, per-link
#                       mass conservation, typed rejection of broken
#                       chains, dirty-bitmap soundness on every SRAM
#                       flavor) in release, plus the delta-push unit
#                       tests in the caesar and service crates, then the
#                       tiny-scale cluster-view sweep whose rows now
#                       carry measured full-vs-delta wire bytes.
#   --simd-smoke        lane-kernel smoke mode: run the lane bit-identity
#                       suites (tests/lane_kernels.rs — chunked CSM/MLM
#                       sweeps ≡ scalar prepared kernels bit for bit —
#                       and tests/packed_parity.rs — packed-SRAM builds
#                       byte-identical to word builds) in release, then
#                       the asm-shape guard: re-emit the caesar crate
#                       with --emit=asm and require packed vector
#                       instructions inside the named probe kernels
#                       (asm_probe_csm_lanes, asm_probe_mlm_lanes,
#                       asm_probe_fill_lanes_k3), so a toolchain bump
#                       that silently de-vectorizes the lane kernels
#                       fails here instead of shipping as a perf
#                       regression. On hosts without AVX the asm guard
#                       is SKIPPED loudly (the lane loops still run —
#                       scalar codegen is correct, just slower).
#   --service-smoke     cluster-service smoke mode: run the service
#                       crate's unit tests plus the merge/service
#                       acceptance suites (tests/mergeable.rs — the
#                       byte-for-byte merge property — and
#                       tests/cluster_service.rs — saturation
#                       monotonicity + the per-zoo-family loopback TCP
#                       bit-identity check) in release, then the
#                       tiny-scale cluster-view sweep asserting its
#                       CSV/JSON artifacts land, then the cluster_view
#                       example end-to-end over a real socket.
#   --zoo-smoke         workload-zoo smoke mode: run the zoo acceptance
#                       suite (tests/workload_zoo.rs — determinism,
#                       CAIDA-fit goldens, CZOO artifact round-trips,
#                       and the three adversarial OnlineCaesar
#                       regressions) in release, then the tiny-scale
#                       per-workload sweep (caesar-experiments zoo)
#                       asserting its CSV/JSON artifacts land, then the
#                       workload_zoo example end-to-end.
#   --fault-smoke       robustness smoke mode: run the fault-tolerance
#                       acceptance suite (tests/fault_tolerance.rs) in
#                       release — injected worker panics, sticky ring
#                       stalls, drop-policy loss accounting, and the
#                       snapshot → restore → resume byte-identity
#                       round-trip — then run the resilient_monitor
#                       example end-to-end. Release, not debug, on
#                       purpose: catch_unwind + supervised respawn must
#                       survive optimized codegen, and the smoke stays
#                       fast enough for pre-push hooks.
#   --quick-bench       smoke-bench mode: instead of the full tier-1
#                       sweep, time just the two canary kernels
#                       (estimator_kernels/csm_kernel and
#                       cache/cache_record_hit, via CAESAR_BENCH_FILTER)
#                       and FAIL if either regresses more than 1.5x
#                       against the newest committed BENCH_*.json.
#                       Compares min_ns, not median_ns, and retries up
#                       to 3 times: these kernels sit at single-digit
#                       ns where one loaded window inflates any
#                       statistic ~2x. A genuine regression fails every
#                       attempt; transient host steal does not.
#                       Also runs the thread-scaling canary: the
#                       4-shard concurrent build must be meaningfully
#                       faster than the 1-shard build (median t4 <
#                       0.8x t1) — FAIL otherwise. The scaling canary
#                       needs real cores: on hosts with fewer than 2
#                       (nproc) it is SKIPPED loudly, because the
#                       worker-per-shard build cannot beat sequential
#                       on a single hardware thread by construction.
# Environment:
#   CHECK_WORKSPACE=0   restrict tests to the root package (the seed's
#                       tier-1 definition); default runs --workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

json_median() { # json_median GROUP NAME FILE -> median_ns ("" if absent)
    grep -F "\"group\":\"$1\"" "$3" 2>/dev/null \
        | grep -F "\"name\":\"$2\"" | head -1 \
        | sed -n 's/.*"median_ns":\([0-9.eE+-]*\),.*/\1/p'
}

json_min() { # json_min GROUP NAME FILE -> min_ns ("" if absent)
    grep -F "\"group\":\"$1\"" "$3" 2>/dev/null \
        | grep -F "\"name\":\"$2\"" | head -1 \
        | sed -n 's/.*"min_ns":\([0-9.eE+-]*\),.*/\1/p'
}

if [ "${1:-}" = "--thread-smoke" ]; then
    echo "==> thread smoke: detached-thread runtime + heartbeat supervision, release build"
    # `timeout` turns a wedged drain/failover wait into a failure
    # instead of a hung CI job; 300s is ~100x the healthy runtime.
    run timeout 300 cargo test --release --offline -q --test threaded_runtime
    run timeout 300 cargo test --release --offline -q --test fault_tolerance random_thread_chaos
    run timeout 120 cargo test --release --offline -q -p caesar --lib threaded
    echo "check.sh --thread-smoke: all green"
    exit 0
fi

if [ "${1:-}" = "--fault-smoke" ]; then
    echo "==> fault smoke: supervised recovery + crash-consistency, release build"
    run cargo test --release --offline -q --test fault_tolerance
    # The demo streams with a live fault plan (panic + stall + forced
    # saturation) and asserts the mass invariant and the checkpoint
    # round-trip internally; any violation aborts it.
    echo "==> cargo run --release --example resilient_monitor (output suppressed)"
    cargo run -q --release --offline --example resilient_monitor >/dev/null
    echo "check.sh --fault-smoke: all green"
    exit 0
fi

if [ "${1:-}" = "--delta-smoke" ]; then
    echo "==> delta smoke: epoch-delta checkpoints + delta pushes, release build"
    run cargo test --release --offline -q --test delta_checkpoint
    run cargo test --release --offline -q -p caesar --lib -- delta
    run cargo test --release --offline -q -p service
    OUT="$(mktemp -d)"
    trap 'rm -rf "$OUT"' EXIT
    echo "==> caesar-experiments cluster --scale tiny --out $OUT (output suppressed)"
    cargo run -q --release --offline -p experiments --bin caesar-experiments -- \
        cluster --scale tiny --out "$OUT" >/dev/null
    if ! head -1 "$OUT/cluster_view.csv" | grep -q "bytes_delta"; then
        echo "check.sh --delta-smoke: cluster_view.csv lacks the bytes_delta column"
        exit 1
    fi
    # Every family row must report nonzero measured wire bytes for both
    # the full and the delta pushes (last two CSV columns).
    bad="$(awk -F, 'NR > 1 && ($(NF-1) + 0 <= 0 || $NF + 0 <= 0)' "$OUT/cluster_view.csv" | wc -l)"
    if [ "$bad" -ne 0 ]; then
        echo "check.sh --delta-smoke: $bad cluster_view.csv rows lack measured push bytes"
        exit 1
    fi
    echo "check.sh --delta-smoke: all green"
    exit 0
fi

if [ "${1:-}" = "--service-smoke" ]; then
    echo "==> service smoke: mergeable sketches + query service, release build"
    run cargo test --release --offline -q -p service
    run cargo test --release --offline -q --test mergeable
    run cargo test --release --offline -q --test cluster_service
    OUT="$(mktemp -d)"
    trap 'rm -rf "$OUT"' EXIT
    echo "==> caesar-experiments cluster --scale tiny --out $OUT (output suppressed)"
    cargo run -q --release --offline -p experiments --bin caesar-experiments -- \
        cluster --scale tiny --out "$OUT" >/dev/null
    for artifact in cluster_view.csv cluster_view.json; do
        if [ ! -s "$OUT/$artifact" ]; then
            echo "check.sh --service-smoke: sweep did not write $artifact"
            exit 1
        fi
    done
    # Header + one row per family.
    rows="$(wc -l < "$OUT/cluster_view.csv")"
    if [ "$rows" -lt 9 ]; then
        echo "check.sh --service-smoke: cluster_view.csv has $rows lines, want >= 9"
        exit 1
    fi
    # The example pushes 3 taps over a live loopback socket and asserts
    # mass conservation internally; any violation aborts it.
    echo "==> cargo run --release --example cluster_view (output suppressed)"
    cargo run -q --release --offline --example cluster_view >/dev/null
    echo "check.sh --service-smoke: all green"
    exit 0
fi

if [ "${1:-}" = "--zoo-smoke" ]; then
    echo "==> zoo smoke: workload families + adversarial regressions, release build"
    run cargo test --release --offline -q --test workload_zoo
    OUT="$(mktemp -d)"
    trap 'rm -rf "$OUT"' EXIT
    echo "==> caesar-experiments zoo --scale tiny --out $OUT (output suppressed)"
    cargo run -q --release --offline -p experiments --bin caesar-experiments -- \
        zoo --scale tiny --out "$OUT" >/dev/null
    for artifact in zoo_sweep.csv zoo_sweep.json; do
        if [ ! -s "$OUT/$artifact" ]; then
            echo "check.sh --zoo-smoke: sweep did not write $artifact"
            exit 1
        fi
    done
    # Header + one row per family.
    rows="$(wc -l < "$OUT/zoo_sweep.csv")"
    if [ "$rows" -lt 9 ]; then
        echo "check.sh --zoo-smoke: zoo_sweep.csv has $rows lines, want >= 9"
        exit 1
    fi
    echo "==> cargo run --release --example workload_zoo (output suppressed)"
    cargo run -q --release --offline --example workload_zoo >/dev/null
    echo "check.sh --zoo-smoke: all green"
    exit 0
fi

if [ "${1:-}" = "--simd-smoke" ]; then
    echo "==> simd smoke: lane-kernel bit-identity + asm vector-shape guard"
    run cargo test --release --offline -q -p caesar --test lane_kernels
    run cargo test --release --offline -q -p caesar --test packed_parity
    if ! grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
        echo "simd-smoke: asm guard SKIPPED — host CPU advertises no AVX2;"
        echo "simd-smoke: lane kernels verified bit-identical under scalar codegen only"
        echo "check.sh --simd-smoke: all green (asm guard skipped)"
        exit 0
    fi
    # Emit asm for the caesar crate alone. codegen-units=1 keeps every
    # probe in one .s file; the flag change means a one-off rebuild of
    # the crate, which is the price of a readable disassembly.
    echo "==> cargo rustc -p caesar --release -- --emit=asm -C codegen-units=1"
    cargo rustc -p caesar --release --offline -- --emit=asm -C codegen-units=1 >/dev/null 2>&1
    ASM="$(ls -t target/release/deps/caesar-*.s 2>/dev/null | head -1 || true)"
    if [ -z "$ASM" ]; then
        echo "check.sh --simd-smoke: --emit=asm produced no caesar-*.s"
        exit 1
    fi
    echo "==> asm guard over $ASM"
    probe_body() { # probe_body SYMBOL -> the instructions of that function
        awk -v p="$1" '
            index($0, p) && /:$/ { on = 1 }
            on { print }
            on && /cfi_endproc/ { exit }
        ' "$ASM"
    }
    guard_fail=0
    # Float lane kernels must use packed-double arithmetic; the k-map
    # candidate pass is integer lane math, so its signature is packed
    # 64-bit adds/shifts/multiplies instead.
    for spec in \
        "asm_probe_csm_lanes v(add|mul|sub|div|max)pd|vfm(add|sub)" \
        "asm_probe_mlm_lanes v(sqrt|add|mul|sub|div|max)pd|vfm(add|sub)" \
        "asm_probe_fill_lanes_k3 vp(add|sll|srl|mul|xor)q|vpmuludq"; do
        probe="${spec%% *}"
        pattern="${spec#* }"
        body="$(probe_body "$probe")"
        if [ -z "$body" ]; then
            echo "simd-smoke: probe $probe not found in $ASM"
            guard_fail=1
            continue
        fi
        hits="$(printf '%s\n' "$body" | grep -cE "$pattern" || true)"
        if [ "$hits" -gt 0 ]; then
            echo "simd-smoke: $probe vectorized ($hits packed-vector instructions)"
        else
            echo "simd-smoke: $probe has NO packed-vector instructions — lane kernel de-vectorized"
            guard_fail=1
        fi
    done
    if [ "$guard_fail" -ne 0 ]; then
        echo "check.sh --simd-smoke: asm vector-shape guard failed"
        exit 1
    fi
    echo "check.sh --simd-smoke: all green"
    exit 0
fi

if [ "${1:-}" = "--quick-bench" ]; then
    BASE="$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)"
    if [ -z "$BASE" ]; then
        echo "check.sh --quick-bench: no BENCH_*.json baseline; skipping"
        exit 0
    fi
    echo "==> quick-bench smoke vs $BASE (fail on >1.5x regression, 3 attempts)"
    run cargo build --release --offline -p bench --benches >/dev/null
    SMOKE="$(mktemp)"
    trap 'rm -f "$SMOKE"' EXIT
    kernels_ok=0
    for attempt in 1 2 3; do
        CAESAR_BENCH_FILTER="estimator_kernels/csm_kernel,cache/cache_record_hit" \
            CAESAR_BENCH_SAMPLES=9 \
            cargo bench --offline -p bench --bench micro 2>/dev/null \
            | grep '^{' > "$SMOKE"
        fail=0
        for key in "estimator_kernels csm_kernel" "cache cache_record_hit"; do
            set -- $key
            prev="$(json_min "$1" "$2" "$BASE")"
            new="$(json_min "$1" "$2" "$SMOKE")"
            if [ -z "$prev" ] || [ -z "$new" ]; then
                echo "quick-bench: $1/$2 missing (prev='$prev' new='$new')"
                fail=1
                continue
            fi
            verdict="$(awk -v a="$prev" -v b="$new" \
                'BEGIN { r = (a > 0) ? b / a : 0; printf "%.2f %s", r, (r > 1.5) ? "FAIL" : "ok" }')"
            echo "quick-bench[$attempt]: $1/$2 ${prev}ns -> ${new}ns (ratio ${verdict})"
            case "$verdict" in *FAIL*) fail=1 ;; esac
        done
        if [ "$fail" -eq 0 ]; then
            kernels_ok=1
            break
        fi
        [ "$attempt" -lt 3 ] && echo "quick-bench: attempt $attempt noisy; retrying" && sleep 2
    done
    if [ "$kernels_ok" -ne 1 ]; then
        echo "check.sh --quick-bench: canary kernel regressed on all attempts"
        exit 1
    fi

    # --- thread-scaling canary ---------------------------------------
    # The point of the sharded ingest is that more shards are faster.
    # Pin that property: the 4-shard concurrent build median must be
    # < 0.8x the 1-shard median. It is a *host* property as much as a
    # code property, so it is only meaningful with real parallelism —
    # on a single-core host the worker threads time-slice one hardware
    # thread and 4 shards cannot beat 1 by construction. Skip loudly
    # there instead of producing a vacuous failure.
    CORES="$(nproc 2>/dev/null || echo 1)"
    if [ "$CORES" -lt 2 ]; then
        echo "quick-bench: thread-scaling canary SKIPPED — host has $CORES core(s);"
        echo "quick-bench: t4 < 0.8x t1 is unobservable without >=2 hardware threads"
        echo "check.sh --quick-bench: all green (scaling canary skipped)"
        exit 0
    fi
    scaling_ok=0
    for attempt in 1 2; do
        CAESAR_BENCH_FILTER="concurrent_build/1,concurrent_build/4" \
            cargo bench --offline -p bench --bench extensions 2>/dev/null \
            | grep '^{' > "$SMOKE"
        t1="$(json_median concurrent_build 1 "$SMOKE")"
        t4="$(json_median concurrent_build 4 "$SMOKE")"
        if [ -z "$t1" ] || [ -z "$t4" ]; then
            echo "quick-bench: concurrent_build medians missing (t1='$t1' t4='$t4')"
            break
        fi
        verdict="$(awk -v a="$t1" -v b="$t4" \
            'BEGIN { r = (a > 0) ? b / a : 0; printf "%.2f %s", r, (r < 0.8) ? "ok" : "FAIL" }')"
        echo "quick-bench[$attempt]: scaling t1=${t1}ns t4=${t4}ns (t4/t1 ${verdict}, need < 0.80)"
        case "$verdict" in
            *ok*) scaling_ok=1 ;;
        esac
        [ "$scaling_ok" -eq 1 ] && break
        [ "$attempt" -lt 2 ] && echo "quick-bench: scaling attempt $attempt noisy; retrying" && sleep 2
    done
    if [ "$scaling_ok" -ne 1 ]; then
        echo "check.sh --quick-bench: thread-scaling canary failed (t4 not < 0.8x t1 on $CORES cores)"
        exit 1
    fi
    echo "check.sh --quick-bench: all green"
    exit 0
fi

run cargo build --release --offline

# The threaded-runtime suite runs under a hard wall-clock timeout even
# in the default flow: its characteristic failure mode is a drain or
# failover wait that never returns, which must fail tier-1 loudly
# instead of wedging it. The workspace sweep below re-runs the suite
# in debug — by then this release pass has already bounded it.
run timeout 300 cargo test --release --offline -q --test threaded_runtime

if [ "${CHECK_WORKSPACE:-1}" = "1" ]; then
    run cargo test -q --offline --workspace
else
    run cargo test -q --offline
fi

# Benches and examples are not exercised by `cargo test`; keep them
# compiling so the figure/bench harnesses never rot. Build them in
# release too: the bench trajectory (scripts/bench_trajectory.sh) runs
# release binaries, and an -O-only codegen error must fail CI, not the
# first perf run.
run cargo build --offline --benches --examples --workspace
run cargo build --release --offline --benches --examples --workspace

# Clippy with -D warnings is part of tier-1 wherever the component is
# installed; it is skipped (loudly) only when the toolchain ships
# without it, so its absence must not fail the offline sandbox.
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint step"
fi

echo "check.sh: all green"
