#!/usr/bin/env bash
# Run the support::timing bench harnesses and collect their JSON lines
# into one trajectory file, so every PR's perf numbers accumulate next
# to the code that produced them.
#
# Usage: scripts/bench_trajectory.sh [OUT] [BENCH...]
#   OUT      output file (default BENCH_PR9.json)
#   BENCH... bench targets to run (default: micro extensions, plus the
#            ingest_backing group from the ablations bench)
#
# Environment:
#   CAESAR_BENCH_SAMPLES  samples per benchmark (harness default 5)
#   CAESAR_BENCH_WARMUP   warmup invocations (harness default 1)
#
# Each emitted line is one benchmark:
#   {"group":…,"name":…,"median_ns":…,"min_ns":…,"max_ns":…,"samples":…}
# plus one leading meta line recording when/what produced the file.
# Compare trajectories across PRs by joining on (group, name) — names
# are stable by contract (see support::timing docs). The before/after
# for PR 2's ingest pipeline lives inside one file: group
# "concurrent_build", headline pair "linerate_4" (partitioned pipeline)
# vs "linerate_replay_4" (the seed's O(T·n) scan-and-filter), plus the
# cache-thrash-regime pair "4" vs "replay_4". PR 3's pairs live in
# groups "record" ("caesar_trace" vs "caesar_trace_batch"),
# "estimators" ("caesar_query_*_all_flows" vs the "*_batch"/"*_par4"
# batch-engine sweeps) and "hashing" ("kmap_indices_k3" vs
# "kmap_fill_indices_k3"). PR 4's pairs: group "concurrent_build"
# "stream_4"/"pinned_4" (SPSC-ring transport + striped writeback) vs
# "replay_4", "linerate_stream_4" vs "linerate_replay_4", and the raw
# ring hand-off in group "spsc". PR 5's pair prices the supervised
# online engine's fault-tolerance tax: group "online"
# "steady_state_4" (single-owner supervised offer loop, epoch merges,
# watchdog ticks) vs group "concurrent_build" "stream_4" (the same
# transport without supervision), plus "online/snapshot_roundtrip_4"
# for the cost of a mid-stream checkpoint + restore. PR 6 adds group
# "zoo_ingest": one sequential-ingest bench per workload-zoo family
# (cdn … caida_fit), pricing how each traffic shape loads the
# cache/SRAM pipeline, plus "mouse_flood_online_stressed" for the
# supervised online path under the stalled-lane tail-drop stress plan.
# PR 7 adds groups "zoo_merge" and "service": "zoo_merge" prices
# folding three taps' frozen sketches into an empty cluster view, one
# bench per zoo family ("merge_3_taps_<family>" — O(L) counter adds,
# with L set per family by zoo_config); "service" prices the wire
# ("payload_encode_decode" for the SketchPayload codec,
# "inprocess_push3_query64" for the full frame path without sockets,
# and "tcp_query64_round_trip" for the same query over a live loopback
# socket — the bench that caught the Nagle/delayed-ACK stall
# TCP_NODELAY now prevents). PR 8's pairs: the lane-kernel query
# sweeps in group "estimators" ("caesar_query_*_all_flows_batch" now
# runs the chunked [f64;4]/[u64;4] lane kernels — compare against the
# same names in BENCH_PR7.json), the batched-ingest headline
# "record/caesar_trace_batch" (FlowSlotMap cache index + base-hash
# batching), and group "ingest_backing" — the packed-vs-word SRAM
# ablation ("word_small_l"/"packed_small_l" at L=2048,
# "word_large_l"/"packed_large_l" at L=32768) whose keep/drop verdict
# lives in EXPERIMENTS.md. PR 9 adds groups "checkpoint" and
# "service_delta": "checkpoint" prices a low-churn epoch's checkpoint
# both ways ("snapshot_full_{small,large}_l" re-seals every counter,
# "delta_low_churn_{small,large}_l" seals only the dirtied blocks; the
# headline pair is the two large_l names at L=32768), and
# "service_delta" prices refreshing the cluster view after a full push
# ("inprocess_refresh_full_push" vs "inprocess_refresh_delta_push",
# plus the SketchDelta codec in "delta_between_encode_decode"). Both
# groups also emit "*_bytes*" pseudo-results whose ns fields carry
# **frame sizes in bytes**, so the size win rides the same diff table
# as the time win.
#
# After writing OUT, the script prints a median diff table against the
# most recent other BENCH_*.json (joined on group/name), so every run
# shows its trajectory against the previous PR.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR9.json}"
shift || true
BENCHES=("$@")
ABLATION_RIDEALONG=0
if [ "${#BENCHES[@]}" -eq 0 ]; then
    BENCHES=(micro extensions)
    # The packed-vs-word ingest ablation rides along under a filter so
    # the (slow) full ablation suite does not run on every refresh.
    ABLATION_RIDEALONG=1
fi

echo "==> building release benches (offline)"
cargo build --release --offline --benches --workspace >/dev/null

TMP="$(mktemp "${OUT}.XXXXXX")"
trap 'rm -f "$TMP"' EXIT
printf '{"meta":"bench_trajectory","date":"%s","benches":"%s"}\n' \
    "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "${BENCHES[*]}" > "$TMP"

for b in "${BENCHES[@]}"; do
    echo "==> cargo bench --bench $b"
    # The harness prints one JSON object per line on stdout and its
    # human-readable summary on stderr; keep only the JSON.
    cargo bench --offline -p bench --bench "$b" 2>/dev/null \
        | grep '^{' >> "$TMP"
done

if [ "$ABLATION_RIDEALONG" -eq 1 ]; then
    echo "==> cargo bench --bench ablations (ingest_backing only)"
    CAESAR_BENCH_FILTER=ingest_backing \
        cargo bench --offline -p bench --bench ablations 2>/dev/null \
        | grep '^{' >> "$TMP"
fi

mv "$TMP" "$OUT"
trap - EXIT
echo "==> wrote $(grep -c '^{' "$OUT") JSON lines to $OUT"

# --- median diff vs the previous trajectory file ---------------------
# The harness emits keys in a pinned alphabetical order (see
# support::timing tests), so sed extraction is reliable.
json_key() { # json_key LINE -> "group/name" ("" for meta lines)
    printf '%s\n' "$1" \
        | sed -n 's/.*"group":"\([^"]*\)".*"name":"\([^"]*\)".*/\1\/\2/p'
}
json_median() {
    printf '%s\n' "$1" \
        | sed -n 's/.*"median_ns":\([0-9.eE+-]*\),.*/\1/p'
}

PREV="$(ls BENCH_*.json 2>/dev/null | grep -vx "$OUT" | sort -V | tail -1 || true)"
if [ -z "$PREV" ]; then
    echo "==> no previous BENCH_*.json to diff against"
    exit 0
fi

echo "==> median diff: $PREV -> $OUT (ratio < 1 is faster)"
printf '%-50s %14s %14s %8s\n' "group/name" "prev_ns" "new_ns" "ratio"
while IFS= read -r line; do
    key="$(json_key "$line")"
    [ -n "$key" ] || continue
    new="$(json_median "$line")"
    group="${key%%/*}"
    name="${key#*/}"
    prev_line="$(grep -F "\"group\":\"$group\"" "$PREV" \
        | grep -F "\"name\":\"$name\"" | head -1 || true)"
    if [ -z "$prev_line" ]; then
        printf '%-50s %14s %14s %8s\n' "$key" "-" "$new" "new"
        continue
    fi
    prev="$(json_median "$prev_line")"
    ratio="$(awk -v a="$prev" -v b="$new" 'BEGIN { if (a > 0) printf "%.2f", b / a; else print "-" }')"
    printf '%-50s %14s %14s %8s\n' "$key" "$prev" "$new" "$ratio"
done < <(grep '^{' "$OUT")
