#!/usr/bin/env bash
# Run the support::timing bench harnesses and collect their JSON lines
# into one trajectory file, so every PR's perf numbers accumulate next
# to the code that produced them.
#
# Usage: scripts/bench_trajectory.sh [OUT] [BENCH...]
#   OUT      output file (default BENCH_PR2.json)
#   BENCH... bench targets to run (default: micro extensions)
#
# Environment:
#   CAESAR_BENCH_SAMPLES  samples per benchmark (harness default 5)
#   CAESAR_BENCH_WARMUP   warmup invocations (harness default 1)
#
# Each emitted line is one benchmark:
#   {"group":…,"name":…,"median_ns":…,"min_ns":…,"max_ns":…,"samples":…}
# plus one leading meta line recording when/what produced the file.
# Compare trajectories across PRs by joining on (group, name) — names
# are stable by contract (see support::timing docs). The before/after
# for PR 2's ingest pipeline lives inside one file: group
# "concurrent_build", headline pair "linerate_4" (partitioned pipeline)
# vs "linerate_replay_4" (the seed's O(T·n) scan-and-filter), plus the
# cache-thrash-regime pair "4" vs "replay_4".
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR2.json}"
shift || true
BENCHES=("$@")
if [ "${#BENCHES[@]}" -eq 0 ]; then
    BENCHES=(micro extensions)
fi

echo "==> building release benches (offline)"
cargo build --release --offline --benches --workspace >/dev/null

TMP="$(mktemp "${OUT}.XXXXXX")"
trap 'rm -f "$TMP"' EXIT
printf '{"meta":"bench_trajectory","date":"%s","benches":"%s"}\n' \
    "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "${BENCHES[*]}" > "$TMP"

for b in "${BENCHES[@]}"; do
    echo "==> cargo bench --bench $b"
    # The harness prints one JSON object per line on stdout and its
    # human-readable summary on stderr; keep only the JSON.
    cargo bench --offline -p bench --bench "$b" 2>/dev/null \
        | grep '^{' >> "$TMP"
done

mv "$TMP" "$OUT"
trap - EXIT
echo "==> wrote $(grep -c '^{' "$OUT") JSON lines to $OUT"
